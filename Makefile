PYTHON ?= python

.PHONY: install test bench examples results clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/traffic_fleet.py
	$(PYTHON) examples/suffix_knn_search.py
	$(PYTHON) examples/uncertainty_monitoring.py
	$(PYTHON) examples/custom_data.py
	$(PYTHON) examples/prediction_service.py

results:
	$(PYTHON) -m repro.cli run-all --preset small --out-dir results/

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
