"""DTW substrate: banded distance, envelopes, lower bounds, CPU scans."""

from .distance import (
    dtw_batch,
    dtw_batch_pruned,
    dtw_distance,
    dtw_distance_compressed,
    dtw_distance_early_abandon,
)
from .envelope import (
    Envelope,
    compute_envelope,
    compute_envelope_batch,
    envelope_extend,
    envelope_shift,
)
from .knn import KnnResult, ScanStats, fast_cpu_scan, knn_bruteforce
from .lower_bounds import (
    lb_ec,
    lb_en,
    lb_eq,
    lb_improved,
    lb_improved_profile,
    lb_keogh,
    lb_kim,
    lb_kim_profile,
    lb_keogh_terms,
    lb_profile,
    window_pair_lb_matrices,
)
from .measures import (
    edr_distance,
    erp_distance,
    euclidean_distance,
    lcss_distance,
    lcss_similarity,
)

__all__ = [
    "dtw_batch",
    "dtw_batch_pruned",
    "dtw_distance",
    "dtw_distance_compressed",
    "dtw_distance_early_abandon",
    "Envelope",
    "compute_envelope",
    "compute_envelope_batch",
    "envelope_extend",
    "envelope_shift",
    "KnnResult",
    "ScanStats",
    "fast_cpu_scan",
    "knn_bruteforce",
    "lb_ec",
    "lb_en",
    "lb_eq",
    "lb_improved",
    "lb_improved_profile",
    "lb_keogh",
    "lb_kim",
    "lb_kim_profile",
    "lb_keogh_terms",
    "lb_profile",
    "window_pair_lb_matrices",
    "edr_distance",
    "erp_distance",
    "euclidean_distance",
    "lcss_distance",
    "lcss_similarity",
]
