"""Exact kNN search over all segments — reference + CPU scan baseline.

Two entry points:

* :func:`knn_bruteforce` — vectorised exact search used as ground truth in
  tests and as the verification backend elsewhere.
* :func:`fast_cpu_scan` — the paper's **FastCPUScan** baseline
  (Section 6.2.1): a serial scan with LB_Keogh pruning and row-minimum
  early abandoning in the style of [41, 54].  It returns operation counts
  (LB positions touched, DTW cells expanded) that the GPU cost model
  converts into simulated running time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .distance import dtw_batch, dtw_distance_early_abandon
from .envelope import compute_envelope
from .lower_bounds import lb_kim, lb_profile

__all__ = ["KnnResult", "ScanStats", "knn_bruteforce", "fast_cpu_scan"]


@dataclass
class ScanStats:
    """Operation counts for a search, consumed by the cost model."""

    lb_positions: int = 0
    dtw_cells: int = 0
    candidates_total: int = 0
    candidates_verified: int = 0

    def merge(self, other: "ScanStats") -> None:
        """Accumulate another stats object into this one."""
        self.lb_positions += other.lb_positions
        self.dtw_cells += other.dtw_cells
        self.candidates_total += other.candidates_total
        self.candidates_verified += other.candidates_verified


@dataclass
class KnnResult:
    """kNN answer: segment start indices with their DTW distances."""

    starts: np.ndarray
    distances: np.ndarray
    stats: ScanStats = field(default_factory=ScanStats)

    def __len__(self) -> int:
        return self.starts.size


def _candidate_starts(
    series_length: int, d: int, exclude: tuple[int, int] | None
) -> np.ndarray:
    starts = np.arange(series_length - d + 1)
    if exclude is not None:
        lo, hi = exclude
        overlap = (starts < hi) & (starts + d > lo)
        starts = starts[~overlap]
    return starts


def knn_bruteforce(
    query,
    series,
    k: int,
    rho: int | None,
    exclude: tuple[int, int] | None = None,
    backend=None,
) -> KnnResult:
    """Exact kNN by computing banded DTW on every candidate segment.

    ``exclude`` removes self-matching segments overlapping ``[lo, hi)``
    (standard practice when the query is a suffix of the series itself).
    When ``backend`` is given, the DTW batch is dispatched through it so
    its time/ops ledgers see the work; otherwise the distances are
    computed directly (pure ground truth, no accounting).
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    d = query.size
    starts = _candidate_starts(series.size, d, exclude)
    if starts.size == 0:
        raise ValueError("no candidate segments to search")
    k = min(k, starts.size)
    segments = sliding_window_view(series, d)[starts]
    if backend is not None:
        # Lazy import: ``repro.backend`` itself imports this module's
        # siblings, so a top-level import would be circular.
        from ..backend.base import as_backend

        dispatch = as_backend(backend)
        if rho is None:
            distances = dispatch.full_dtw(query, segments)
        else:
            distances = dispatch.dtw_verification(query, segments, rho)
    else:
        distances = dtw_batch(query, segments, rho)
    order = np.argsort(distances, kind="stable")[:k]
    band = d if rho is None else min(rho, d)
    stats = ScanStats(
        dtw_cells=int(starts.size * d * min(d, 2 * band + 1)),
        candidates_total=int(starts.size),
        candidates_verified=int(starts.size),
    )
    return KnnResult(starts[order], distances[order], stats)


def fast_cpu_scan(
    query,
    series,
    k: int,
    rho: int,
    exclude: tuple[int, int] | None = None,
) -> KnnResult:
    """FastCPUScan: LB_Keogh-pruned, early-abandoning serial scan.

    Maintains a max-heap of the best k distances; a candidate is verified
    only when its enhanced lower bound beats the current k-th best, and
    verification abandons as soon as a DP row exceeds it.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    d = query.size
    starts = _candidate_starts(series.size, d, exclude)
    if starts.size == 0:
        raise ValueError("no candidate segments to search")
    k = min(k, starts.size)

    query_env = compute_envelope(query, rho)
    series_env = compute_envelope(series, rho)
    lbeq, lbec = lb_profile(
        query, series, rho, query_envelope=query_env, series_envelope=series_env
    )
    bounds = np.maximum(lbeq, lbec)[starts]
    stats = ScanStats(
        lb_positions=int(2 * d * (series.size - d + 1)),
        candidates_total=int(starts.size),
    )

    # Visit candidates in lower-bound order so the heap tightens fast
    # (the serial analogue of the paper's filtering threshold).
    order = np.argsort(bounds, kind="stable")
    heap: list[tuple[float, int]] = []  # max-heap via negated distance
    segments = sliding_window_view(series, d)
    for idx in order:
        start = int(starts[idx])
        best = -heap[0][0] if len(heap) == k else np.inf
        if bounds[idx] > best:
            break  # all remaining bounds are larger; nothing can improve
        if lb_kim(query, segments[start]) > best:
            # O(1) first/last-point bound beats the k-th best: the true
            # distance can only be larger, skip the DTW entirely.
            stats.lb_positions += 2
            continue
        stats.lb_positions += 2
        distance = dtw_distance_early_abandon(query, segments[start], rho, best)
        stats.candidates_verified += 1
        stats.dtw_cells += d * min(d, 2 * rho + 1)
        if distance < best:
            entry = (-distance, start)
            if len(heap) == k:
                heapq.heapreplace(heap, entry)
            else:
                heapq.heappush(heap, entry)

    found = sorted(((-neg, start) for neg, start in heap))
    distances = np.array([dist for dist, _ in found])
    result_starts = np.array([start for _, start in found], dtype=int)
    return KnnResult(result_starts, distances, stats)
