"""Warping envelopes (Definition B.1), vectorised + streaming maintenance.

``U_i = max(c_{i-rho} .. c_{i+rho})`` and ``L_i`` the analogous minimum,
with the window clipped at sequence boundaries.  Three construction
paths, all producing bit-identical envelopes:

* :func:`compute_envelope` — one sequence, vectorised: pad with
  ``±inf`` sentinels and reduce a ``(n, 2*rho + 1)`` sliding-window
  *view* (no materialised copy) along its last axis,
* :func:`compute_envelope_batch` — the same reduction broadcast over a
  whole ``(n_candidates, d)`` batch at once; this is what lets the
  search cascade evaluate Lemire's ``LB_Improved`` second pass for every
  surviving candidate in one NumPy expression,
* :func:`envelope_extend` / :func:`envelope_shift` — streaming reuse for
  continuous queries: appending a point only changes the trailing
  ``rho`` positions; sliding a fixed-length query by one point only
  changes the first ``rho`` and last ``rho + 1`` positions, everything
  in between is the old envelope shifted left by one.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "Envelope",
    "compute_envelope",
    "compute_envelope_batch",
    "envelope_extend",
    "envelope_shift",
]


class Envelope:
    """Upper/lower envelope pair of one sequence for a given warping width."""

    __slots__ = ("upper", "lower", "rho")

    def __init__(self, upper: np.ndarray, lower: np.ndarray, rho: int) -> None:
        self.upper = upper
        self.lower = lower
        self.rho = rho

    def __len__(self) -> int:
        return self.upper.size

    def slice(self, start: int, stop: int) -> "Envelope":
        """Envelope restricted to positions ``[start, stop)`` (view)."""
        return Envelope(self.upper[start:stop], self.lower[start:stop], self.rho)


def _check_rho(rho: int) -> int:
    if rho < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    return int(rho)


def compute_envelope(values, rho: int) -> Envelope:
    """Build the envelope of ``values`` with warping width ``rho``.

    Vectorised: the ``±inf`` padding reproduces the boundary clipping
    (``max(values[max(0, i-rho) : i+rho+1])``) exactly, and the sliding
    window is a stride view, so the whole construction is two NumPy
    reductions instead of a per-point Python loop.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("envelope expects a 1-D sequence")
    rho = _check_rho(rho)
    if rho == 0 or values.size == 0:
        return Envelope(values.copy(), values.copy(), rho)
    pad_hi = np.full(rho, -np.inf)
    pad_lo = np.full(rho, np.inf)
    upper = sliding_window_view(
        np.concatenate([pad_hi, values, pad_hi]), 2 * rho + 1
    ).max(axis=1)
    lower = sliding_window_view(
        np.concatenate([pad_lo, values, pad_lo]), 2 * rho + 1
    ).min(axis=1)
    return Envelope(upper, lower, rho)


def compute_envelope_batch(
    values: np.ndarray, rho: int
) -> tuple[np.ndarray, np.ndarray]:
    """Envelopes of many equal-length sequences at once.

    ``values`` has shape ``(n, d)``; returns ``(upper, lower)`` of the
    same shape where row ``i`` is the envelope of ``values[i]``.  One
    broadcast reduction serves the whole batch — the shape the cascade's
    ``LB_Improved`` tier computes per filter pass.
    """
    values = np.atleast_2d(np.asarray(values, dtype=np.float64))
    rho = _check_rho(rho)
    n, d = values.shape
    if rho == 0 or d == 0 or n == 0:
        return values.copy(), values.copy()
    pad_hi = np.full((n, rho), -np.inf)
    pad_lo = np.full((n, rho), np.inf)
    upper = sliding_window_view(
        np.concatenate([pad_hi, values, pad_hi], axis=1), 2 * rho + 1, axis=1
    ).max(axis=2)
    lower = sliding_window_view(
        np.concatenate([pad_lo, values, pad_lo], axis=1), 2 * rho + 1, axis=1
    ).min(axis=2)
    return upper, lower


def envelope_extend(values, old: Envelope, n_new: int) -> Envelope:
    """Envelope of ``values`` given the envelope of its prefix.

    ``values`` is the full sequence after ``n_new`` points were appended;
    ``old`` is the envelope of ``values[:-n_new]``.  Only the trailing
    ``rho + n_new`` positions can differ from ``old``, so the update is
    O(rho + n_new) amortised instead of O(n).
    """
    values = np.asarray(values, dtype=np.float64)
    rho = old.rho
    n = values.size
    n_old = n - n_new
    if n_old != len(old):
        raise ValueError(
            f"old envelope covers {len(old)} points but values imply {n_old}"
        )
    upper = np.empty(n)
    lower = np.empty(n)
    stable = max(0, n_old - rho)
    upper[:stable] = old.upper[:stable]
    lower[:stable] = old.lower[:stable]
    # Recompute the affected tail via the vectorised path: the envelope
    # of the slice starting rho before the first affected centre agrees
    # with the full envelope on every affected position.
    tail_lo = max(0, stable - rho)
    tail_env = compute_envelope(values[tail_lo:], rho)
    upper[stable:] = tail_env.upper[stable - tail_lo :]
    lower[stable:] = tail_env.lower[stable - tail_lo :]
    return Envelope(upper, lower, rho)


def envelope_shift(values, old: Envelope) -> Envelope:
    """Envelope of a query slid one step forward, reusing the old one.

    ``values`` is the new query; the caller guarantees
    ``values[:-1] == old_values[1:]`` (the continuous-search slide:
    drop the oldest point, append the newest).  Every interior centre
    ``rho <= i <= n - 2 - rho`` sees exactly the window the old envelope
    saw at ``i + 1``, so only the first ``rho`` positions (whose old
    windows included the dropped point) and the last ``rho + 1``
    positions (whose windows include the appended point) are recomputed.
    The result is the *exact* envelope, not a conservative widening.
    """
    values = np.asarray(values, dtype=np.float64)
    rho = old.rho
    n = values.size
    if n != len(old):
        raise ValueError(
            f"old envelope covers {len(old)} points but the slid query has {n}"
        )
    head = min(rho, n)          # recompute [0, head)
    tail = max(n - 1 - rho, 0)  # recompute [tail, n)
    if head >= tail:
        return compute_envelope(values, rho)
    upper = np.empty(n)
    lower = np.empty(n)
    upper[head:tail] = old.upper[head + 1 : tail + 1]
    lower[head:tail] = old.lower[head + 1 : tail + 1]
    # Head: centres [0, head) only see values[0 : head + rho).
    head_env = compute_envelope(values[: head + rho], rho)
    upper[:head] = head_env.upper[:head]
    lower[:head] = head_env.lower[:head]
    # Tail: centres [tail, n) only see values[tail - rho :).
    tail_env = compute_envelope(values[tail - rho :], rho)
    upper[tail:] = tail_env.upper[rho:]
    lower[tail:] = tail_env.lower[rho:]
    return Envelope(upper, lower, rho)
