"""Warping envelopes (Definition B.1) with O(n) construction.

``U_i = max(c_{i-rho} .. c_{i+rho})`` and ``L_i`` the analogous minimum,
with the window clipped at sequence boundaries.  Built with the monotonic
deque (Lemire) algorithm so envelope maintenance is linear, plus a
streaming helper used by the continuous-query reuse path: appending one
point to a series only changes the envelope of the trailing ``rho``
positions.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Envelope", "compute_envelope", "envelope_extend"]


class Envelope:
    """Upper/lower envelope pair of one sequence for a given warping width."""

    __slots__ = ("upper", "lower", "rho")

    def __init__(self, upper: np.ndarray, lower: np.ndarray, rho: int) -> None:
        self.upper = upper
        self.lower = lower
        self.rho = rho

    def __len__(self) -> int:
        return self.upper.size

    def slice(self, start: int, stop: int) -> "Envelope":
        """Envelope restricted to positions ``[start, stop)`` (view)."""
        return Envelope(self.upper[start:stop], self.lower[start:stop], self.rho)


def compute_envelope(values, rho: int) -> Envelope:
    """Build the envelope of ``values`` with warping width ``rho``.

    Runs in O(n) using two monotonic deques (one for max, one for min).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("envelope expects a 1-D sequence")
    if rho < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    n = values.size
    upper = np.empty(n)
    lower = np.empty(n)
    max_q: deque[int] = deque()
    min_q: deque[int] = deque()

    for j in range(n + rho):
        if j < n:
            while max_q and values[max_q[-1]] <= values[j]:
                max_q.pop()
            max_q.append(j)
            while min_q and values[min_q[-1]] >= values[j]:
                min_q.pop()
            min_q.append(j)
        center = j - rho
        if center >= 0:
            while max_q and max_q[0] < center - rho:
                max_q.popleft()
            while min_q and min_q[0] < center - rho:
                min_q.popleft()
            upper[center] = values[max_q[0]]
            lower[center] = values[min_q[0]]
    return Envelope(upper, lower, rho)


def envelope_extend(values, old: Envelope, n_new: int) -> Envelope:
    """Envelope of ``values`` given the envelope of its prefix.

    ``values`` is the full sequence after ``n_new`` points were appended;
    ``old`` is the envelope of ``values[:-n_new]``.  Only the trailing
    ``rho + n_new`` positions can differ from ``old``, so the update is
    O(rho + n_new) amortised instead of O(n).
    """
    values = np.asarray(values, dtype=np.float64)
    rho = old.rho
    n = values.size
    n_old = n - n_new
    if n_old != len(old):
        raise ValueError(
            f"old envelope covers {len(old)} points but values imply {n_old}"
        )
    upper = np.empty(n)
    lower = np.empty(n)
    stable = max(0, n_old - rho)
    upper[:stable] = old.upper[:stable]
    lower[:stable] = old.lower[:stable]
    # Recompute the affected tail directly; it is short.
    for center in range(stable, n):
        lo = max(0, center - rho)
        hi = min(n, center + rho + 1)
        window = values[lo:hi]
        upper[center] = window.max()
        lower[center] = window.min()
    return Envelope(upper, lower, rho)
