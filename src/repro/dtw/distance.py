"""Dynamic Time Warping under the Sakoe-Chiba band (Appendix B.1).

Conventions (shared by every lower bound in :mod:`repro.dtw.lower_bounds`
so that ``LB <= DTW`` holds exactly):

* point distance is the squared difference ``(q_i - c_j)**2``,
* the DTW distance is the raw accumulated sum ``gamma(d, d)`` — no square
  root, matching the paper's Eqns. (21)-(24),
* the warping path is restricted to ``|i - j| <= rho`` (warping width).

Four implementations are provided:

* :func:`dtw_distance` — reference banded DP with a rolling row,
* :func:`dtw_distance_compressed` — the paper's Algorithm 2 verbatim: the
  ``2 x (2*rho + 2)`` compressed warping matrix designed for GPU shared
  memory (cross-checked against the reference in tests),
* :func:`dtw_distance_early_abandon` — row-minimum early abandoning used
  by the FastCPUScan baseline,
* :func:`dtw_batch` — band DP vectorised across many candidate segments
  (the shape a GPU block would compute in parallel).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dtw_distance",
    "dtw_distance_compressed",
    "dtw_distance_early_abandon",
    "dtw_batch",
]

_INF = np.inf


def _check_inputs(query: np.ndarray, candidate: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.ndim != 1 or candidate.ndim != 1:
        raise ValueError("DTW expects 1-D sequences")
    if query.size != candidate.size:
        raise ValueError(
            f"equal-length DTW expected, got {query.size} vs {candidate.size}"
        )
    if query.size == 0:
        raise ValueError("DTW of empty sequences is undefined")
    return query, candidate


def dtw_distance(query, candidate, rho: int | None = None) -> float:
    """Banded DTW distance between equal-length sequences.

    ``rho=None`` removes the band (full DTW, the paper's GPUScan setting).
    """
    query, candidate = _check_inputs(query, candidate)
    d = query.size
    band = d if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")

    prev = np.full(d + 1, _INF)
    prev[0] = 0.0
    cur = np.empty(d + 1)
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - band)
        hi = min(d, i + band)
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            cost = (qi - candidate[j - 1]) ** 2
            cur[j] = cost + min(prev[j], prev[j - 1], cur[j - 1])
        prev, cur = cur, prev
    return float(prev[d])


def dtw_distance_compressed(query, candidate, rho: int) -> float:
    """Algorithm 2: banded DTW with the ``2 x (2*rho + 2)`` rolling buffer.

    This mirrors the paper's GPU shared-memory kernel: the warping matrix
    is stored modulo ``m = 2*rho + 2`` along the band and modulo 2 across
    rows, reusing memory along the warp path.

    One boundary correction over the printed pseudo-code: Algorithm 2
    clears ``gamma[(j - rho - 1) % m, j % 2]`` each column, but for
    ``2 <= j <= rho + 1`` the cell actually read below the band is
    ``gamma[0, j % 2]`` (the boundary ``gamma(0, j) = inf`` of Eqn. 22),
    which still holds the stale ``gamma(0, 0) = 0`` and lets warping paths
    teleport.  Clamping the cleared index at 0 restores Eqn. 22 (and
    subsumes the pseudo-code's line 5 at ``j = 1``).
    """
    query, candidate = _check_inputs(query, candidate)
    if rho < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    d = query.size
    m = 2 * rho + 2
    # gamma[i % m][j % 2] stores the DP cell (i, j); the modulus reuses the
    # buffer exactly as Algorithm 2 does in shared memory.
    gamma = np.full((m, 2), _INF)
    gamma[0, 0] = 0.0

    for j in range(1, d + 1):
        gamma[max(0, j - rho - 1) % m, j % 2] = _INF
        gamma[(j + rho) % m, (j - 1) % 2] = _INF
        cj = candidate[j - 1]
        for i in range(max(1, j - rho), min(d, j + rho) + 1):
            cost = (query[i - 1] - cj) ** 2
            gamma[i % m, j % 2] = cost + min(
                gamma[(i - 1) % m, j % 2],
                gamma[i % m, (j - 1) % 2],
                gamma[(i - 1) % m, (j - 1) % 2],
            )
    return float(gamma[d % m, d % 2])


def dtw_distance_early_abandon(
    query, candidate, rho: int, best_so_far: float
) -> float:
    """Banded DTW that abandons once every band cell exceeds ``best_so_far``.

    Returns ``inf`` when abandoned — the candidate cannot be a kNN.  This is
    the pruning used by the FastCPUScan baseline (Section 6.2.1, [41, 54]).
    """
    query, candidate = _check_inputs(query, candidate)
    if rho < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    d = query.size
    prev = np.full(d + 1, _INF)
    prev[0] = 0.0
    cur = np.empty(d + 1)
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - rho)
        hi = min(d, i + rho)
        qi = query[i - 1]
        row_min = _INF
        for j in range(lo, hi + 1):
            cost = (qi - candidate[j - 1]) ** 2
            value = cost + min(prev[j], prev[j - 1], cur[j - 1])
            cur[j] = value
            if value < row_min:
                row_min = value
        if row_min > best_so_far:
            return _INF
        prev, cur = cur, prev
    return float(prev[d])


def dtw_batch(query, candidates, rho: int | None = None) -> np.ndarray:
    """Banded DTW between one query and many candidates, vectorised.

    ``candidates`` has shape ``(n, d)``; the DP loops over matrix cells in
    Python but evaluates each cell for *all* candidates at once — the same
    data-parallel shape a GPU block computes with one candidate per thread.
    """
    query = np.asarray(query, dtype=np.float64)
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    d = query.size
    if candidates.shape[1] != d:
        raise ValueError(
            f"candidates of length {candidates.shape[1]} do not match query "
            f"of length {d}"
        )
    n = candidates.shape[0]
    if n == 0:
        return np.empty(0)
    band = d if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")

    prev = np.full((n, d + 1), _INF)
    prev[:, 0] = 0.0
    cur = np.empty((n, d + 1))
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - band)
        hi = min(d, i + band)
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            cost = (qi - candidates[:, j - 1]) ** 2
            best = np.minimum(prev[:, j], prev[:, j - 1])
            np.minimum(best, cur[:, j - 1], out=best)
            cur[:, j] = cost + best
        prev, cur = cur, prev
    return prev[:, d].copy()
