"""Dynamic Time Warping under the Sakoe-Chiba band (Appendix B.1).

Conventions (shared by every lower bound in :mod:`repro.dtw.lower_bounds`
so that ``LB <= DTW`` holds exactly):

* point distance is the squared difference ``(q_i - c_j)**2``,
* the DTW distance is the raw accumulated sum ``gamma(d, d)`` — no square
  root, matching the paper's Eqns. (21)-(24),
* the warping path is restricted to ``|i - j| <= rho`` (warping width).

Four implementations are provided:

* :func:`dtw_distance` — reference banded DP with a rolling row,
* :func:`dtw_distance_compressed` — the paper's Algorithm 2 verbatim: the
  ``2 x (2*rho + 2)`` compressed warping matrix designed for GPU shared
  memory (cross-checked against the reference in tests),
* :func:`dtw_distance_early_abandon` — row-minimum early abandoning used
  by the FastCPUScan baseline,
* :func:`dtw_batch` — band DP vectorised across many candidate segments
  (the shape a GPU block would compute in parallel),
* :func:`dtw_batch_pruned` — the same batched DP with cumulative-bound
  early abandoning: candidates whose partial path cost plus an
  admissible tail bound exceeds the cutoff are dropped from the active
  set mid-DP.  Survivors' distances are bit-identical to
  :func:`dtw_batch`; abandoned candidates report ``inf``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dtw_distance",
    "dtw_distance_compressed",
    "dtw_distance_early_abandon",
    "dtw_batch",
    "dtw_batch_pruned",
]

_INF = np.inf

#: Absolute slack added to the abandon cutoff so float rounding in the
#: partial-cost + tail-bound sum can never abandon a candidate whose true
#: distance is exactly at the threshold (extra slack only costs a little
#: wasted verification, never exactness).
ABANDON_SLACK = 1e-9


def _check_inputs(query: np.ndarray, candidate: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.ndim != 1 or candidate.ndim != 1:
        raise ValueError("DTW expects 1-D sequences")
    if query.size != candidate.size:
        raise ValueError(
            f"equal-length DTW expected, got {query.size} vs {candidate.size}"
        )
    if query.size == 0:
        raise ValueError("DTW of empty sequences is undefined")
    return query, candidate


def dtw_distance(query, candidate, rho: int | None = None) -> float:
    """Banded DTW distance between equal-length sequences.

    ``rho=None`` removes the band (full DTW, the paper's GPUScan setting).
    """
    query, candidate = _check_inputs(query, candidate)
    d = query.size
    band = d if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")

    prev = np.full(d + 1, _INF)
    prev[0] = 0.0
    cur = np.empty(d + 1)
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - band)
        hi = min(d, i + band)
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            cost = (qi - candidate[j - 1]) ** 2
            cur[j] = cost + min(prev[j], prev[j - 1], cur[j - 1])
        prev, cur = cur, prev
    return float(prev[d])


def dtw_distance_compressed(query, candidate, rho: int) -> float:
    """Algorithm 2: banded DTW with the ``2 x (2*rho + 2)`` rolling buffer.

    This mirrors the paper's GPU shared-memory kernel: the warping matrix
    is stored modulo ``m = 2*rho + 2`` along the band and modulo 2 across
    rows, reusing memory along the warp path.

    One boundary correction over the printed pseudo-code: Algorithm 2
    clears ``gamma[(j - rho - 1) % m, j % 2]`` each column, but for
    ``2 <= j <= rho + 1`` the cell actually read below the band is
    ``gamma[0, j % 2]`` (the boundary ``gamma(0, j) = inf`` of Eqn. 22),
    which still holds the stale ``gamma(0, 0) = 0`` and lets warping paths
    teleport.  Clamping the cleared index at 0 restores Eqn. 22 (and
    subsumes the pseudo-code's line 5 at ``j = 1``).
    """
    query, candidate = _check_inputs(query, candidate)
    if rho < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    d = query.size
    m = 2 * rho + 2
    # gamma[i % m][j % 2] stores the DP cell (i, j); the modulus reuses the
    # buffer exactly as Algorithm 2 does in shared memory.
    gamma = np.full((m, 2), _INF)
    gamma[0, 0] = 0.0

    for j in range(1, d + 1):
        gamma[max(0, j - rho - 1) % m, j % 2] = _INF
        gamma[(j + rho) % m, (j - 1) % 2] = _INF
        cj = candidate[j - 1]
        for i in range(max(1, j - rho), min(d, j + rho) + 1):
            cost = (query[i - 1] - cj) ** 2
            gamma[i % m, j % 2] = cost + min(
                gamma[(i - 1) % m, j % 2],
                gamma[i % m, (j - 1) % 2],
                gamma[(i - 1) % m, (j - 1) % 2],
            )
    return float(gamma[d % m, d % 2])


def dtw_distance_early_abandon(
    query, candidate, rho: int, best_so_far: float
) -> float:
    """Banded DTW that abandons once every band cell exceeds ``best_so_far``.

    Returns ``inf`` when abandoned — the candidate cannot be a kNN.  This is
    the pruning used by the FastCPUScan baseline (Section 6.2.1, [41, 54]).
    """
    query, candidate = _check_inputs(query, candidate)
    if rho < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    d = query.size
    prev = np.full(d + 1, _INF)
    prev[0] = 0.0
    cur = np.empty(d + 1)
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - rho)
        hi = min(d, i + rho)
        qi = query[i - 1]
        row_min = _INF
        for j in range(lo, hi + 1):
            cost = (qi - candidate[j - 1]) ** 2
            value = cost + min(prev[j], prev[j - 1], cur[j - 1])
            cur[j] = value
            if value < row_min:
                row_min = value
        if row_min > best_so_far:
            return _INF
        prev, cur = cur, prev
    return float(prev[d])


def dtw_batch(query, candidates, rho: int | None = None) -> np.ndarray:
    """Banded DTW between one query and many candidates, vectorised.

    ``candidates`` has shape ``(n, d)``; the DP loops over matrix cells in
    Python but evaluates each cell for *all* candidates at once — the same
    data-parallel shape a GPU block computes with one candidate per thread.
    """
    query = np.asarray(query, dtype=np.float64)
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    d = query.size
    if candidates.shape[1] != d:
        raise ValueError(
            f"candidates of length {candidates.shape[1]} do not match query "
            f"of length {d}"
        )
    n = candidates.shape[0]
    if n == 0:
        return np.empty(0)
    band = d if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")

    prev = np.full((n, d + 1), _INF)
    prev[:, 0] = 0.0
    cur = np.empty((n, d + 1))
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - band)
        hi = min(d, i + band)
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            cost = (qi - candidates[:, j - 1]) ** 2
            best = np.minimum(prev[:, j], prev[:, j - 1])
            np.minimum(best, cur[:, j - 1], out=best)
            cur[:, j] = cost + best
        prev, cur = cur, prev
    return prev[:, d].copy()


def dtw_batch_pruned(
    query,
    candidates,
    rho: int,
    cutoff: float = _INF,
    lb_terms: np.ndarray | None = None,
    return_cells: bool = False,
) -> np.ndarray | tuple[np.ndarray, int]:
    """Batched banded DTW with cumulative-bound early abandoning.

    Like :func:`dtw_batch`, but after each DP row the per-candidate
    abandon criterion

        ``min(band cells of row i)  +  sum(lb_terms[i + rho :])``

    is tested against ``cutoff``.  The first addend lower-bounds the cost
    any warping path has accumulated through row ``i``; the second is an
    admissible tail: candidate position ``j >= i + rho`` (0-based) can
    only be matched by a query row ``> i`` under the band, so its
    LB_Keogh term (squared distance to the query envelope, as produced by
    :func:`~repro.dtw.lower_bounds.lb_improved_profile` pass 1) is still
    entirely in the future.  A candidate is abandoned only when the
    criterion *strictly* exceeds ``cutoff + ABANDON_SLACK``, so every
    candidate whose true distance is ``<= cutoff`` survives and its
    distance is **bit-identical** to :func:`dtw_batch` (the per-candidate
    arithmetic is unchanged; shrinking the active set never reorders it).
    Abandoned candidates report ``inf`` — their true distance is
    guaranteed ``> cutoff``.

    ``lb_terms=None`` disables the tail (row minima still abandon).
    ``return_cells=True`` additionally returns the number of DP cells
    actually expanded, for cost-model attribution.
    """
    query = np.asarray(query, dtype=np.float64)
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    d = query.size
    if candidates.shape[1] != d:
        raise ValueError(
            f"candidates of length {candidates.shape[1]} do not match query "
            f"of length {d}"
        )
    n = candidates.shape[0]
    if n == 0:
        empty = np.empty(0)
        return (empty, 0) if return_cells else empty
    band = int(rho)
    if band < 0:
        raise ValueError(f"warping width must be non-negative, got {rho}")
    threshold = cutoff + ABANDON_SLACK

    if lb_terms is not None:
        lb_terms = np.asarray(lb_terms, dtype=np.float64)
        if lb_terms.shape != (n, d):
            raise ValueError(
                f"lb_terms of shape {lb_terms.shape} do not match "
                f"{n} candidates of length {d}"
            )
        # tails[:, j] = lb_terms[:, j:].sum() — the admissible tail when
        # candidate positions >= j are still unmatched.
        tails = np.zeros((n, d + 1))
        tails[:, :d] = np.cumsum(lb_terms[:, ::-1], axis=1)[:, ::-1]
    else:
        tails = None

    active = np.arange(n)
    out = np.full(n, _INF)
    # prev/cur always hold one row per *active* candidate, in active order;
    # abandoning compacts them so later rows never touch dead candidates.
    prev = np.full((active.size, d + 1), _INF)
    prev[:, 0] = 0.0
    cur = np.empty((active.size, d + 1))
    cells = 0
    for i in range(1, d + 1):
        cur[:] = _INF
        lo = max(1, i - band)
        hi = min(d, i + band)
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            cost = (qi - candidates[active, j - 1]) ** 2
            best = np.minimum(prev[:, j], prev[:, j - 1])
            np.minimum(best, cur[:, j - 1], out=best)
            cur[:, j] = cost + best
        cells += active.size * (hi - lo + 1)
        if i < d and threshold < _INF:
            bound = cur[:, lo : hi + 1].min(axis=1)
            if tails is not None:
                bound = bound + tails[active, min(i + band, d)]
            keep = bound <= threshold
            if not keep.all():
                active = active[keep]
                if active.size == 0:
                    break
                survivors = cur[keep]
                cur = np.empty_like(survivors)
                prev = survivors
                continue
        prev, cur = cur, prev
    if active.size:
        out[active] = prev[:, d]
    if return_cells:
        return out, cells
    return out
