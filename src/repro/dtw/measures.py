"""Alternative time-series similarity measures (Section 4's survey).

The paper picks DTW after weighing the alternatives; a reusable library
should ship them, both for completeness and so the "DTW is the most
effective" claim can be checked (see ``benchmarks`` ablations):

* :func:`euclidean_distance` — simple, noise-sensitive [32],
* :func:`lcss_similarity` / :func:`lcss_distance` — Longest Common
  SubSequence with a matching threshold epsilon [66],
* :func:`erp_distance` — Edit distance with Real Penalty: an L1-style
  metric with a gap constant [21],
* :func:`edr_distance` — Edit Distance on Real sequences [22].

All support the Sakoe-Chiba band for comparability with the banded DTW.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean_distance",
    "lcss_similarity",
    "lcss_distance",
    "erp_distance",
    "edr_distance",
]

_INF = np.inf


def _check(query, candidate, equal_length=True):
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.ndim != 1 or candidate.ndim != 1:
        raise ValueError("similarity measures expect 1-D sequences")
    if query.size == 0 or candidate.size == 0:
        raise ValueError("empty sequences are not comparable")
    if equal_length and query.size != candidate.size:
        raise ValueError(
            f"equal lengths expected, got {query.size} vs {candidate.size}"
        )
    return query, candidate


def euclidean_distance(query, candidate) -> float:
    """Sum of squared differences (the rho=0 limit of our DTW)."""
    query, candidate = _check(query, candidate)
    return float(np.sum((query - candidate) ** 2))


def lcss_similarity(query, candidate, epsilon: float, rho: int | None = None) -> int:
    """Length of the longest common subsequence under threshold epsilon.

    Two points match when ``|q_i - c_j| <= epsilon`` and (if banded)
    ``|i - j| <= rho``.
    """
    query, candidate = _check(query, candidate, equal_length=False)
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    n, m = query.size, candidate.size
    band = max(n, m) if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    prev = np.zeros(m + 1, dtype=np.int64)
    cur = np.zeros(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        cur[:] = 0
        lo = max(1, i - band)
        hi = min(m, i + band)
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            if abs(qi - candidate[j - 1]) <= epsilon:
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev, cur = cur, prev
    return int(prev[m])

def lcss_distance(query, candidate, epsilon: float, rho: int | None = None) -> float:
    """``1 - LCSS / min(n, m)`` — the usual normalised dissimilarity."""
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    sim = lcss_similarity(query, candidate, epsilon, rho)
    return 1.0 - sim / min(query.size, candidate.size)


def erp_distance(query, candidate, gap: float = 0.0, rho: int | None = None) -> float:
    """Edit distance with Real Penalty [21] (a true metric).

    Unmatched points pay ``|x - gap|``; matched pairs pay ``|q_i - c_j|``.
    """
    query, candidate = _check(query, candidate, equal_length=False)
    n, m = query.size, candidate.size
    band = max(n, m) if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    prev = np.full(m + 1, _INF)
    cur = np.empty(m + 1)
    prev[0] = 0.0
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + abs(candidate[j - 1] - gap)
    for i in range(1, n + 1):
        cur[:] = _INF
        lo = max(1, i - band)
        hi = min(m, i + band)
        qi = query[i - 1]
        gap_q = abs(qi - gap)
        if lo == 1:
            cur[0] = prev[0] + gap_q
        for j in range(lo, hi + 1):
            cur[j] = min(
                prev[j - 1] + abs(qi - candidate[j - 1]),  # match
                prev[j] + gap_q,                           # gap in candidate
                cur[j - 1] + abs(candidate[j - 1] - gap),  # gap in query
            )
        prev, cur = cur, prev
    return float(prev[m])


def edr_distance(query, candidate, epsilon: float, rho: int | None = None) -> int:
    """Edit Distance on Real sequences [22]: edit count with matches free."""
    query, candidate = _check(query, candidate, equal_length=False)
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    n, m = query.size, candidate.size
    band = max(n, m) if rho is None else int(rho)
    if band < 0:
        raise ValueError(f"rho must be non-negative, got {rho}")
    big = n + m + 1
    prev = np.full(m + 1, big, dtype=np.int64)
    cur = np.empty(m + 1, dtype=np.int64)
    prev[: m + 1] = np.arange(m + 1)
    for i in range(1, n + 1):
        cur[:] = big
        lo = max(1, i - band)
        hi = min(m, i + band)
        if lo == 1:
            cur[0] = i
        qi = query[i - 1]
        for j in range(lo, hi + 1):
            match_cost = 0 if abs(qi - candidate[j - 1]) <= epsilon else 1
            cur[j] = min(
                prev[j - 1] + match_cost,
                prev[j] + 1,
                cur[j - 1] + 1,
            )
        prev, cur = cur, prev
    return int(prev[m])
