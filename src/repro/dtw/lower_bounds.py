"""DTW lower bounds: LB_Keogh, LB_EQ, LB_EC and the enhanced LB_en.

Notation follows Section 4.2:

* ``LB_EQ(Q, C) = LB_keogh(E(Q), C)`` — envelope of the *query* against the
  candidate's raw values,
* ``LB_EC(Q, C) = LB_keogh(E(C), Q)`` — envelope of the *candidate* against
  the query's raw values,
* ``LB_en(Q, C) = max(LB_EQ, LB_EC)`` — the paper's enhanced bound
  (Theorem 4.1), tighter than either side and free on a parallel device
  because both sides share the same memory scans.

All bounds accumulate squared differences, matching
:mod:`repro.dtw.distance`, so ``LB <= DTW`` holds exactly (tested with
hypothesis).

For subsequence search the candidate-side envelope is computed once over
the *whole* series: the global envelope at absolute position ``t + j``
covers every value a banded warping path could match ``q_j`` against for
the segment starting at ``t``, so one envelope serves all segments (and is
only looser near segment boundaries — still a valid bound).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .envelope import Envelope, compute_envelope

__all__ = [
    "lb_kim",
    "lb_keogh",
    "lb_keogh_terms",
    "lb_eq",
    "lb_ec",
    "lb_en",
    "lb_profile",
    "window_pair_lb_matrices",
]


def lb_kim(query, candidate) -> float:
    """LB_Kim (first/last-point bound), the O(1) prefilter of [54].

    Any warping path must align the first points together and the last
    points together, so their squared distances sum to a lower bound.
    """
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.size == 0 or candidate.size == 0:
        raise ValueError("LB_Kim of empty sequences is undefined")
    return float(
        (query[0] - candidate[0]) ** 2 + (query[-1] - candidate[-1]) ** 2
    )


def lb_keogh_terms(envelope: Envelope, values: np.ndarray) -> np.ndarray:
    """Per-position LB_Keogh terms: squared distance of value to envelope."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape[-1] != len(envelope):
        raise ValueError(
            f"values of length {values.shape[-1]} do not match envelope of "
            f"length {len(envelope)}"
        )
    above = np.clip(values - envelope.upper, 0.0, None)
    below = np.clip(envelope.lower - values, 0.0, None)
    return above**2 + below**2


def lb_keogh(envelope: Envelope, values: np.ndarray) -> float:
    """``LB_keogh(E(X), Y)``: how far ``Y`` strays outside ``X``'s envelope."""
    return float(lb_keogh_terms(envelope, values).sum())


def lb_eq(query, candidate, rho: int) -> float:
    """``LB_EQ(Q, C)`` — query-envelope bound (Section 4.2)."""
    query = np.asarray(query, dtype=np.float64)
    return lb_keogh(compute_envelope(query, rho), candidate)


def lb_ec(query, candidate, rho: int) -> float:
    """``LB_EC(Q, C)`` — candidate-envelope bound (Section 4.2)."""
    candidate = np.asarray(candidate, dtype=np.float64)
    return lb_keogh(compute_envelope(candidate, rho), query)


def lb_en(query, candidate, rho: int) -> float:
    """Enhanced lower bound ``max(LB_EQ, LB_EC)`` (Theorem 4.1)."""
    return max(lb_eq(query, candidate, rho), lb_ec(query, candidate, rho))


def lb_profile(
    query: np.ndarray,
    series: np.ndarray,
    rho: int,
    query_envelope: Envelope | None = None,
    series_envelope: Envelope | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """LB_EQ/LB_EC of one query against *every* segment of ``series``.

    Returns ``(lbeq, lbec)`` arrays of length ``len(series) - d + 1`` where
    entry ``t`` bounds ``DTW(query, series[t:t+d])``.  This is the
    "SMiLer-Dir" direct computation the two-level index is benchmarked
    against in Fig. 8; it is also the ground truth the group-level index's
    partial sums are validated under (index bound <= profile bound).
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    d = query.size
    if d > series.size:
        raise ValueError(
            f"query of length {d} longer than series of length {series.size}"
        )
    if query_envelope is None:
        query_envelope = compute_envelope(query, rho)
    if series_envelope is None:
        series_envelope = compute_envelope(series, rho)

    segments = sliding_window_view(series, d)
    lbeq = lb_keogh_terms(query_envelope, segments).sum(axis=1)

    # LB_EC: per-position terms of q_j against the global series envelope at
    # absolute position t + j, summed along each diagonal t.
    upper = sliding_window_view(series_envelope.upper, d)
    lower = sliding_window_view(series_envelope.lower, d)
    above = np.clip(query[None, :] - upper, 0.0, None)
    below = np.clip(lower - query[None, :], 0.0, None)
    lbec = (above**2 + below**2).sum(axis=1)
    return lbeq, lbec


def window_pair_lb_matrices(
    sw_values: np.ndarray,
    sw_upper: np.ndarray,
    sw_lower: np.ndarray,
    dw_values: np.ndarray,
    dw_upper: np.ndarray,
    dw_lower: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Window-level posting lists: LB_EQ/LB_EC between all (SW, DW) pairs.

    Inputs are ``(n_sw, omega)`` sliding-window slices (raw values plus the
    master-query envelope restricted to the window) and ``(n_dw, omega)``
    disjoint-window slices (raw values plus the *global* series envelope).
    Output matrices have shape ``(n_sw, n_dw)``; entry ``(b, r)`` is the
    omega-point partial bound the group level later shift-sums (Eqn. 5).

    This is exactly the computation the paper assigns one GPU block per
    sliding window; here it is one broadcast expression.
    """
    sw_values = np.asarray(sw_values, dtype=np.float64)
    if sw_values.size == 0 or dw_values.size == 0:
        n_sw = sw_values.shape[0] if sw_values.ndim == 2 else 0
        n_dw = dw_values.shape[0] if np.asarray(dw_values).ndim == 2 else 0
        return np.zeros((n_sw, n_dw)), np.zeros((n_sw, n_dw))

    dwv = dw_values[None, :, :]  # (1, n_dw, omega)
    # LB_EQ: candidate (DW) values against the query-window envelope.
    above = np.clip(dwv - sw_upper[:, None, :], 0.0, None)
    below = np.clip(sw_lower[:, None, :] - dwv, 0.0, None)
    lbeq = (above**2 + below**2).sum(axis=2)

    # LB_EC: query-window values against the series envelope at the DW.
    swv = sw_values[:, None, :]
    above = np.clip(swv - dw_upper[None, :, :], 0.0, None)
    below = np.clip(dw_lower[None, :, :] - swv, 0.0, None)
    lbec = (above**2 + below**2).sum(axis=2)
    return lbeq, lbec
