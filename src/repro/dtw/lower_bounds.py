"""DTW lower bounds: LB_Kim, LB_Keogh, LB_EQ/LB_EC/LB_en, LB_Improved.

Notation follows Section 4.2:

* ``LB_EQ(Q, C) = LB_keogh(E(Q), C)`` — envelope of the *query* against the
  candidate's raw values,
* ``LB_EC(Q, C) = LB_keogh(E(C), Q)`` — envelope of the *candidate* against
  the query's raw values,
* ``LB_en(Q, C) = max(LB_EQ, LB_EC)`` — the paper's enhanced bound
  (Theorem 4.1), tighter than either side and free on a parallel device
  because both sides share the same memory scans,
* ``LB_Improved(Q, C)`` — Lemire's two-pass bound (arxiv 0811.3301):
  the first pass is plain ``LB_EQ``; the second projects the candidate
  onto the query's envelope tube (``H = clip(C, L(Q), U(Q))``) and adds
  ``LB_keogh(E(H), Q)``.  Always ``>= LB_EQ`` and still ``<= DTW``.

All bounds accumulate squared differences, matching
:mod:`repro.dtw.distance`, so ``LB <= DTW`` holds exactly (tested with
hypothesis).  The bounds are *not* mutually ordered — ``LB_Kim`` can
exceed ``LB_en`` and vice versa (e.g. ``rho=1``, ``q=[0,5]``,
``c=[5,0]``: Kim is 50 while the envelopes overlap completely) — which
is exactly why the search cascade runs them cheapest-first and each
tier prunes independently against the same threshold.

For subsequence search the candidate-side envelope is computed once over
the *whole* series: the global envelope at absolute position ``t + j``
covers every value a banded warping path could match ``q_j`` against for
the segment starting at ``t``, so one envelope serves all segments (and is
only looser near segment boundaries — still a valid bound).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .envelope import Envelope, compute_envelope, compute_envelope_batch

__all__ = [
    "lb_kim",
    "lb_kim_profile",
    "lb_keogh",
    "lb_keogh_terms",
    "lb_eq",
    "lb_ec",
    "lb_en",
    "lb_improved",
    "lb_improved_profile",
    "lb_profile",
    "window_pair_lb_matrices",
]


def lb_kim(query, candidate) -> float:
    """LB_Kim (first/last-point bound), the O(1) prefilter of [54].

    Any warping path must align the first points together and the last
    points together, so their squared distances sum to a lower bound.
    When both sequences are single points those two alignments are the
    *same* DP cell, so only one term may be counted (otherwise the
    "bound" would be twice the DTW distance).
    """
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.size == 0 or candidate.size == 0:
        raise ValueError("LB_Kim of empty sequences is undefined")
    first = (query[0] - candidate[0]) ** 2
    if query.size == 1 and candidate.size == 1:
        return float(first)
    return float(first + (query[-1] - candidate[-1]) ** 2)


def lb_kim_profile(
    query: np.ndarray, series: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """``LB_Kim`` of one query against many series segments, vectorised.

    Entry ``i`` bounds ``DTW(query, series[starts[i] : starts[i] + d])``
    touching only two series values per candidate — the cascade's O(1)
    tier 0.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.intp)
    d = query.size
    if d == 0:
        raise ValueError("LB_Kim of empty sequences is undefined")
    first = (query[0] - series[starts]) ** 2
    if d == 1:
        return first
    return first + (query[-1] - series[starts + d - 1]) ** 2


def lb_keogh_terms(envelope: Envelope, values: np.ndarray) -> np.ndarray:
    """Per-position LB_Keogh terms: squared distance of value to envelope."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape[-1] != len(envelope):
        raise ValueError(
            f"values of length {values.shape[-1]} do not match envelope of "
            f"length {len(envelope)}"
        )
    above = np.clip(values - envelope.upper, 0.0, None)
    below = np.clip(envelope.lower - values, 0.0, None)
    return above**2 + below**2


def lb_keogh(envelope: Envelope, values: np.ndarray) -> float:
    """``LB_keogh(E(X), Y)``: how far ``Y`` strays outside ``X``'s envelope."""
    return float(lb_keogh_terms(envelope, values).sum())


def lb_eq(query, candidate, rho: int) -> float:
    """``LB_EQ(Q, C)`` — query-envelope bound (Section 4.2)."""
    query = np.asarray(query, dtype=np.float64)
    return lb_keogh(compute_envelope(query, rho), candidate)


def lb_ec(query, candidate, rho: int) -> float:
    """``LB_EC(Q, C)`` — candidate-envelope bound (Section 4.2)."""
    candidate = np.asarray(candidate, dtype=np.float64)
    return lb_keogh(compute_envelope(candidate, rho), query)


def lb_en(query, candidate, rho: int) -> float:
    """Enhanced lower bound ``max(LB_EQ, LB_EC)`` (Theorem 4.1)."""
    return max(lb_eq(query, candidate, rho), lb_ec(query, candidate, rho))


def lb_improved_profile(
    query: np.ndarray,
    candidates: np.ndarray,
    rho: int,
    query_envelope: Envelope | None = None,
    return_terms: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Lemire's two-pass ``LB_Improved`` of one query vs many candidates.

    ``candidates`` has shape ``(n, d)``.  Pass 1 is the ordinary
    ``LB_EQ`` terms of each candidate against the query envelope; pass 2
    projects each candidate onto the envelope tube,
    ``H = clip(C, L(Q), U(Q))``, and adds ``LB_keogh(E(H), Q)``.

    Admissibility with squared point costs: for any warping pair
    ``(q_i, c_j)`` with ``c_j`` above the tube, ``q_i <= U_j`` implies
    ``(q_i - c_j)^2 >= (c_j - U_j)^2 + (U_j - q_i)^2`` (and symmetrically
    below), so ``DTW(Q, C) >= LB_EQ(Q, C) + DTW(Q, H) >=
    LB_EQ(Q, C) + LB_keogh(E(H), Q)``.  In particular
    ``LB_Improved >= LB_EQ`` always.

    ``return_terms=True`` additionally returns the per-position pass-1
    terms (shape ``(n, d)``) so the verification kernel can reuse them
    as cumulative-bound tails for early abandoning.
    """
    query = np.asarray(query, dtype=np.float64)
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    d = query.size
    if candidates.shape[1] != d:
        raise ValueError(
            f"candidates of length {candidates.shape[1]} do not match query "
            f"of length {d}"
        )
    if query_envelope is None:
        query_envelope = compute_envelope(query, rho)
    n = candidates.shape[0]
    if n == 0:
        empty = np.empty(0)
        return (empty, np.empty((0, d))) if return_terms else empty
    terms1 = lb_keogh_terms(query_envelope, candidates)
    # Pass 2: project each candidate into the query tube and bound the
    # query's distance to the projection's envelope.
    projected = np.clip(
        candidates, query_envelope.lower, query_envelope.upper
    )
    h_upper, h_lower = compute_envelope_batch(projected, rho)
    above = np.clip(query[None, :] - h_upper, 0.0, None)
    below = np.clip(h_lower - query[None, :], 0.0, None)
    bound = terms1.sum(axis=1) + (above**2 + below**2).sum(axis=1)
    if return_terms:
        return bound, terms1
    return bound


def lb_improved(query, candidate, rho: int) -> float:
    """``LB_Improved(Q, C)`` — Lemire's two-pass bound for one pair."""
    candidate = np.asarray(candidate, dtype=np.float64)
    result = lb_improved_profile(query, candidate[None, :], rho)
    assert isinstance(result, np.ndarray)
    return float(result[0])


def lb_profile(
    query: np.ndarray,
    series: np.ndarray,
    rho: int,
    query_envelope: Envelope | None = None,
    series_envelope: Envelope | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """LB_EQ/LB_EC of one query against *every* segment of ``series``.

    Returns ``(lbeq, lbec)`` arrays of length ``len(series) - d + 1`` where
    entry ``t`` bounds ``DTW(query, series[t:t+d])``.  This is the
    "SMiLer-Dir" direct computation the two-level index is benchmarked
    against in Fig. 8; it is also the ground truth the group-level index's
    partial sums are validated under (index bound <= profile bound).
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    d = query.size
    if d > series.size:
        raise ValueError(
            f"query of length {d} longer than series of length {series.size}"
        )
    if query_envelope is None:
        query_envelope = compute_envelope(query, rho)
    if series_envelope is None:
        series_envelope = compute_envelope(series, rho)

    segments = sliding_window_view(series, d)
    lbeq = lb_keogh_terms(query_envelope, segments).sum(axis=1)

    # LB_EC: per-position terms of q_j against the global series envelope at
    # absolute position t + j, summed along each diagonal t.
    upper = sliding_window_view(series_envelope.upper, d)
    lower = sliding_window_view(series_envelope.lower, d)
    above = np.clip(query[None, :] - upper, 0.0, None)
    below = np.clip(lower - query[None, :], 0.0, None)
    lbec = (above**2 + below**2).sum(axis=1)
    return lbeq, lbec


def window_pair_lb_matrices(
    sw_values: np.ndarray,
    sw_upper: np.ndarray,
    sw_lower: np.ndarray,
    dw_values: np.ndarray,
    dw_upper: np.ndarray,
    dw_lower: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Window-level posting lists: LB_EQ/LB_EC between all (SW, DW) pairs.

    Inputs are ``(n_sw, omega)`` sliding-window slices (raw values plus the
    master-query envelope restricted to the window) and ``(n_dw, omega)``
    disjoint-window slices (raw values plus the *global* series envelope).
    Output matrices have shape ``(n_sw, n_dw)``; entry ``(b, r)`` is the
    omega-point partial bound the group level later shift-sums (Eqn. 5).

    This is exactly the computation the paper assigns one GPU block per
    sliding window; here it is one broadcast expression.
    """
    sw_values = np.asarray(sw_values, dtype=np.float64)
    if sw_values.size == 0 or dw_values.size == 0:
        n_sw = sw_values.shape[0] if sw_values.ndim == 2 else 0
        n_dw = dw_values.shape[0] if np.asarray(dw_values).ndim == 2 else 0
        return np.zeros((n_sw, n_dw)), np.zeros((n_sw, n_dw))

    dwv = dw_values[None, :, :]  # (1, n_dw, omega)
    # LB_EQ: candidate (DW) values against the query-window envelope.
    above = np.clip(dwv - sw_upper[:, None, :], 0.0, None)
    below = np.clip(sw_lower[:, None, :] - dwv, 0.0, None)
    lbeq = (above**2 + below**2).sum(axis=2)

    # LB_EC: query-window values against the series envelope at the DW.
    swv = sw_values[:, None, :]
    above = np.clip(swv - dw_upper[None, :, :], 0.0, None)
    below = np.clip(dw_lower[None, :, :] - swv, 0.0, None)
    lbec = (above**2 + below**2).sum(axis=2)
    return lbeq, lbec
