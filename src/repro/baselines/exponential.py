"""Exponential smoothing baselines: SES and Holt's linear trend ([71, 38]).

The nonlinear statistical-regression family of the paper's related work
(Holt-Winters, its seasonal member, lives in
:mod:`repro.baselines.holt_winters`).  Both models here fit their
smoothing parameters by one-step SSE minimisation and provide the
standard h-step forecast variance so MNLPD can be scored:

* **SES** — ``var_h = sigma^2 (1 + (h-1) alpha^2)``,
* **Holt** — ``var_h = sigma^2 (1 + sum_{j<h} (alpha + j alpha beta)^2)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.optimize import nelder_mead_minimize
from .base import BaseForecaster

__all__ = [
    "SimpleExponentialSmoothing",
    "HoltLinearTrend",
    "ExponentialSmoothingForecaster",
]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


@dataclass(frozen=True)
class SimpleExponentialSmoothing:
    """Fitted SES state: one smoothed level."""

    alpha: float
    level: float
    residual_variance: float

    def forecast(self, horizon: int) -> tuple[float, float]:
        """h-step-ahead Gaussian forecast from the fitted state."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        variance = self.residual_variance * (
            1.0 + (horizon - 1) * self.alpha**2
        )
        return self.level, max(variance, 1e-12)

    @classmethod
    def fit(cls, values: np.ndarray, max_iters: int = 40) -> "SimpleExponentialSmoothing":
        """Train on the historical stream (see BaseForecaster.fit)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size < 3:
            raise ValueError(f"need at least 3 points, got {values.size}")

        def run(alpha: float) -> tuple[float, float]:
            level = values[0]
            sse = 0.0
            for y in values[1:]:
                error = y - level
                sse += error * error
                level += alpha * error
            return level, sse / (values.size - 1)

        result = nelder_mead_minimize(
            lambda z: run(float(_sigmoid(z)[0]))[1],
            np.array([0.0]),
            max_iters=max_iters,
        )
        alpha = float(_sigmoid(result.x)[0])
        level, variance = run(alpha)
        return cls(alpha=alpha, level=level, residual_variance=max(variance, 1e-12))


@dataclass(frozen=True)
class HoltLinearTrend:
    """Fitted Holt (double exponential smoothing) state."""

    alpha: float
    beta: float
    level: float
    trend: float
    residual_variance: float

    def forecast(self, horizon: int) -> tuple[float, float]:
        """h-step-ahead Gaussian forecast from the fitted state."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        mean = self.level + horizon * self.trend
        js = np.arange(1, horizon)
        c = self.alpha * (1.0 + js * self.beta)
        variance = self.residual_variance * (1.0 + float(np.sum(c**2)))
        return float(mean), max(variance, 1e-12)

    @classmethod
    def fit(cls, values: np.ndarray, max_iters: int = 60) -> "HoltLinearTrend":
        """Train on the historical stream (see BaseForecaster.fit)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size < 4:
            raise ValueError(f"need at least 4 points, got {values.size}")

        def run(alpha: float, beta: float) -> tuple[float, float, float]:
            level = values[0]
            trend = values[1] - values[0]
            sse = 0.0
            for y in values[1:]:
                forecast = level + trend
                error = y - forecast
                sse += error * error
                new_level = forecast + alpha * error
                trend = beta * (new_level - level) + (1 - beta) * trend
                level = new_level
            return level, trend, sse / (values.size - 1)

        def objective(z: np.ndarray) -> float:
            alpha, beta = _sigmoid(z)
            return run(float(alpha), float(beta))[2]

        result = nelder_mead_minimize(
            objective, np.array([0.0, -2.0]), max_iters=max_iters
        )
        alpha, beta = (float(v) for v in _sigmoid(result.x))
        level, trend, variance = run(alpha, beta)
        return cls(
            alpha=alpha, beta=beta, level=level, trend=trend,
            residual_variance=max(variance, 1e-12),
        )


class ExponentialSmoothingForecaster(BaseForecaster):
    """SES (``trend=False``) or Holt (``trend=True``) behind the protocol.

    Refits on the trailing ``window`` points every ``refit_every``
    predictions, forecasting across the points observed since the last
    refit (same bookkeeping as the Holt-Winters wrapper).
    """

    is_offline = False

    def __init__(
        self,
        trend: bool = False,
        window: int | None = None,
        refit_every: int = 1,
    ) -> None:
        if window is not None and window < 8:
            raise ValueError(f"window must cover at least 8 points, got {window}")
        if refit_every <= 0:
            raise ValueError(f"refit_every must be positive, got {refit_every}")
        self.trend = trend
        self.window = window
        self.refit_every = refit_every
        self.name = "Holt" if trend else "SES"
        self._model = None
        self._since_fit = 0
        self._pending = 0

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if self._model is None or self._since_fit >= self.refit_every:
            data = context if self.window is None else context[-self.window :]
            fitter = HoltLinearTrend if self.trend else SimpleExponentialSmoothing
            self._model = fitter.fit(data)
            self._since_fit = 0
            self._pending = 0
        return self._model.forecast(horizon + self._pending)

    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (see BaseForecaster.observe)."""
        self._since_fit += 1
        self._pending += 1
