"""Additive Holt-Winters (FullHW / SegHW, Section 6.3.1; [71, 38]).

Triple exponential smoothing with level, trend and an additive seasonal
cycle of period ``m``:

    level_t  = alpha (y_t - season_{t-m}) + (1 - alpha)(level + trend)
    trend_t  = beta  (level_t - level_{t-1}) + (1 - beta) trend
    season_t = gamma (y_t - level_t) + (1 - gamma) season_{t-m}

Smoothing parameters are fitted by minimising the one-step squared error
(Nelder-Mead on a logit reparameterisation, as the paper fits by
minimising squared error).  h-step forecast variance uses the standard
additive-HW prediction-interval recursion so MNLPD can be scored.

Two wrappers mirror the paper's sub-methods:

* **FullHW** — rebuilds the model from *all* data at every prediction
  (this is why its per-prediction time in Table 4 is the worst),
* **SegHW** — rebuilds from the trailing ``window`` points only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.optimize import nelder_mead_minimize
from .base import BaseForecaster

__all__ = ["HoltWintersModel", "HoltWintersForecaster"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))


@dataclass
class HoltWintersModel:
    """A fitted additive Holt-Winters state."""

    alpha: float
    beta: float
    gamma: float
    level: float
    trend: float
    season: np.ndarray
    sse: float
    n_fitted: int
    #: ``n % period`` of the fitted series: the seasonal slot of the first
    #: forecast step (the slot cycle continues where the data ended).
    phase: int = 0

    @property
    def period(self) -> int:
        """Seasonal period of the fitted model."""
        return self.season.size

    @property
    def residual_variance(self) -> float:
        """In-sample one-step residual variance."""
        return max(self.sse / max(self.n_fitted, 1), 1e-8)

    def forecast(self, horizon: int) -> tuple[float, float]:
        """h-step-ahead mean and variance from the terminal state."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        m = self.period
        season = self.season[(self.phase + horizon - 1) % m]
        mean = self.level + horizon * self.trend + season
        # Additive-HW prediction interval (Hyndman et al.): the h-step
        # error variance is sigma^2 * (1 + sum_{j=1}^{h-1} c_j^2) with
        # c_j = alpha (1 + j beta) + gamma * 1{j % m == 0}.
        js = np.arange(1, horizon)
        c = self.alpha * (1.0 + js * self.beta) + self.gamma * (js % m == 0)
        var = self.residual_variance * (1.0 + float(np.sum(c**2)))
        return float(mean), var


def _run_filter(
    values: np.ndarray, alpha: float, beta: float, gamma: float, period: int
) -> HoltWintersModel:
    """One smoothing pass; returns the terminal state and in-sample SSE."""
    m = period
    # Classical initialisation from the first two seasons.
    season = values[:m] - values[:m].mean()
    level = float(values[:m].mean())
    if values.size >= 2 * m:
        trend = float((values[m : 2 * m].mean() - values[:m].mean()) / m)
    else:
        trend = 0.0
    sse = 0.0
    count = 0
    season = season.copy()
    for t in range(m, values.size):
        s_idx = t % m
        forecast = level + trend + season[s_idx]
        error = values[t] - forecast
        sse += error * error
        count += 1
        new_level = alpha * (values[t] - season[s_idx]) + (1 - alpha) * (level + trend)
        trend = beta * (new_level - level) + (1 - beta) * trend
        season[s_idx] = gamma * (values[t] - new_level) + (1 - gamma) * season[s_idx]
        level = new_level
    return HoltWintersModel(
        alpha=alpha, beta=beta, gamma=gamma, level=level, trend=trend,
        season=season, sse=sse, n_fitted=count, phase=values.size % m,
    )


def fit_holt_winters(
    values: np.ndarray, period: int, max_iters: int = 60
) -> HoltWintersModel:
    """Fit (alpha, beta, gamma) by SSE minimisation, then smooth once."""
    values = np.asarray(values, dtype=np.float64)
    if period <= 1:
        raise ValueError(f"seasonal period must exceed 1, got {period}")
    if values.size < period + 2:
        raise ValueError(
            f"need at least {period + 2} points to fit period {period}, "
            f"got {values.size}"
        )

    def objective(z: np.ndarray) -> float:
        alpha, beta, gamma = _sigmoid(z)
        return _run_filter(values, alpha, beta, gamma, period).sse

    start = np.array([0.0, -2.0, -1.0])  # alpha=.5, beta≈.12, gamma≈.27
    result = nelder_mead_minimize(objective, start, max_iters=max_iters)
    alpha, beta, gamma = _sigmoid(result.x)
    return _run_filter(values, alpha, beta, gamma, period)


class HoltWintersForecaster(BaseForecaster):
    """FullHW (``window=None``) or SegHW (trailing ``window`` points)."""

    is_offline = False

    def __init__(
        self,
        period: int = 96,
        window: int | None = None,
        refit_every: int = 1,
        max_iters: int = 60,
    ) -> None:
        if window is not None and window < 2 * period:
            raise ValueError(
                f"window ({window}) must cover at least two periods "
                f"({2 * period})"
            )
        if refit_every <= 0:
            raise ValueError(f"refit_every must be positive, got {refit_every}")
        self.period = period
        self.window = window
        self.refit_every = refit_every
        self.max_iters = max_iters
        self.name = "FullHW" if window is None else "SegHW"
        self._model: HoltWintersModel | None = None
        self._since_fit = 0
        self._pending: list[float] = []

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if self._model is None or self._since_fit >= self.refit_every:
            data = context if self.window is None else context[-self.window :]
            self._model = fit_holt_winters(data, self.period, self.max_iters)
            self._since_fit = 0
            self._pending = []
        # Forecast from the model's end state; points observed since the
        # last refit extend the effective horizon.
        effective = horizon + len(self._pending)
        return self._model.forecast(effective)

    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (see BaseForecaster.observe)."""
        self._since_fit += 1
        self._pending.append(float(value))
