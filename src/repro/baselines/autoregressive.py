"""Statistical-regression baselines: AR(p)/ARI(p,d) models ([15]).

The paper's related work groups classical forecasting into linear
statistical models, headlined by ARIMA.  This module provides the
linear-autoregression core of that family, implemented from scratch:

* :func:`fit_ar` — least-squares AR(p) with innovation variance,
* :func:`select_ar_order` — AIC order selection,
* :class:`ARForecaster` — an (optionally differenced) AR model behind
  the common forecaster protocol, with exact h-step-ahead forecast
  variance via the psi (impulse response) weights.

MA terms are deliberately left out (fitting them needs nonlinear MLE
for little benefit on sensor streams); with differencing this covers
the ARI(p, d) sub-family — enough to represent the statistical camp the
paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import BaseForecaster

__all__ = ["ArModel", "fit_ar", "select_ar_order", "ARForecaster"]


@dataclass(frozen=True)
class ArModel:
    """A fitted AR(p) model ``y_t = c + sum_i phi_i y_{t-i} + eps``."""

    coefficients: np.ndarray  # phi_1 .. phi_p
    intercept: float
    noise_variance: float
    n_fitted: int

    @property
    def order(self) -> int:
        """Autoregressive order p."""
        return self.coefficients.size

    def log_likelihood(self) -> float:
        """Gaussian conditional log likelihood of the fitted sample."""
        n, var = self.n_fitted, max(self.noise_variance, 1e-300)
        return -0.5 * n * (np.log(2.0 * np.pi * var) + 1.0)

    def aic(self) -> float:
        """Akaike information criterion (parameters: p coefficients,
        intercept, noise variance)."""
        return 2.0 * (self.order + 2) - 2.0 * self.log_likelihood()

    def psi_weights(self, horizon: int) -> np.ndarray:
        """MA(infinity) weights psi_0..psi_{h-1} of the AR recursion.

        The h-step forecast error variance is
        ``sigma^2 * sum_{j<h} psi_j^2``.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        psi = np.zeros(horizon)
        psi[0] = 1.0
        phi = self.coefficients
        for j in range(1, horizon):
            upto = min(j, phi.size)
            psi[j] = float(phi[:upto] @ psi[j - upto : j][::-1])
        return psi

    def forecast(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Iterated h-step-ahead mean + exact forecast variance."""
        context = np.asarray(context, dtype=np.float64)
        p = self.order
        if context.size < p:
            raise ValueError(
                f"need at least {p} context points, got {context.size}"
            )
        window = list(context[-p:]) if p else []
        mean = self.intercept
        for _ in range(horizon):
            if p:
                # phi_1 pairs with the newest value, phi_p with the oldest.
                mean = self.intercept + float(
                    np.dot(self.coefficients, window[::-1])
                )
                window.append(mean)
                window.pop(0)
            else:
                mean = self.intercept
        psi = self.psi_weights(horizon)
        variance = self.noise_variance * float(np.sum(psi**2))
        return mean, max(variance, 1e-12)


def fit_ar(values: np.ndarray, order: int) -> ArModel:
    """Least-squares (conditional MLE) fit of an AR(p) model."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if order < 0:
        raise ValueError(f"order must be non-negative, got {order}")
    n_rows = values.size - order
    if n_rows < order + 2:
        raise ValueError(
            f"series of length {values.size} too short for AR({order})"
        )
    if order == 0:
        mean = float(values.mean())
        return ArModel(
            coefficients=np.empty(0), intercept=mean,
            noise_variance=float(np.var(values)) + 1e-12, n_fitted=values.size,
        )
    design = np.ones((n_rows, order + 1))
    for lag in range(1, order + 1):
        design[:, lag] = values[order - lag : values.size - lag]
    targets = values[order:]
    solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
    residuals = targets - design @ solution
    return ArModel(
        coefficients=solution[1:], intercept=float(solution[0]),
        noise_variance=float(np.mean(residuals**2)) + 1e-12, n_fitted=n_rows,
    )


def select_ar_order(
    values: np.ndarray, max_order: int = 12
) -> ArModel:
    """Fit AR(p) for p = 0..max_order and return the AIC winner."""
    if max_order < 0:
        raise ValueError(f"max_order must be non-negative, got {max_order}")
    best: ArModel | None = None
    for order in range(max_order + 1):
        try:
            model = fit_ar(values, order)
        except ValueError:
            break
        if best is None or model.aic() < best.aic():
            best = model
    if best is None:
        raise ValueError("series too short to fit any AR order")
    return best


class ARForecaster(BaseForecaster):
    """ARI(p, d): differenced autoregression with AIC order selection.

    ``d_diff=1`` models the differenced series and integrates the
    forecast back (the "I" of ARIMA); the integrated h-step variance uses
    the cumulative psi weights of the integrated process.
    """

    name = "ARIMA"
    is_offline = True

    def __init__(
        self,
        max_order: int = 12,
        d_diff: int = 0,
        refit_every: int | None = None,
    ) -> None:
        if d_diff not in (0, 1):
            raise ValueError(f"d_diff must be 0 or 1, got {d_diff}")
        if max_order <= 0:
            raise ValueError(f"max_order must be positive, got {max_order}")
        if refit_every is not None and refit_every <= 0:
            raise ValueError(f"refit_every must be positive, got {refit_every}")
        self.max_order = max_order
        self.d_diff = d_diff
        self.refit_every = refit_every
        self._model: ArModel | None = None
        self._since_fit = 0

    def fit(self, history: np.ndarray) -> "ARForecaster":
        """Train on the historical stream (see BaseForecaster.fit)."""
        history = np.asarray(history, dtype=np.float64)
        series = np.diff(history) if self.d_diff else history
        self._model = select_ar_order(series, self.max_order)
        self._since_fit = 0
        return self

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if self._model is None:
            raise RuntimeError("fit() must be called first")
        context = np.asarray(context, dtype=np.float64)
        if self.refit_every is not None and self._since_fit >= self.refit_every:
            self.fit(context)
        if self.d_diff == 0:
            return self._model.forecast(context, horizon)
        # Integrated forecast: accumulate the differenced means; the
        # variance of a sum of forecasts needs the cumulative psis.
        diffed = np.diff(context)
        mean = float(context[-1])
        working = list(diffed)
        for step in range(1, horizon + 1):
            step_mean, _ = self._model.forecast(np.asarray(working), 1)
            working.append(step_mean)
            mean += step_mean
        psi = self._model.psi_weights(horizon)
        cumulative = np.cumsum(psi)
        variance = self._model.noise_variance * float(np.sum(cumulative**2))
        return mean, max(variance, 1e-12)

    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (see BaseForecaster.observe)."""
        self._since_fit += 1
