"""Linear models with stochastic gradient descent (SgdSVR/SgdRR and the
online one-pass variants, Section 6.3.1).

* **SgdSVR** — linear ε-insensitive support vector regression trained by
  SGD [75],
* **SgdRR** — robust (Huber-loss) linear regression [59] by SGD,
* **OnlineSVR / OnlineRR** — the same losses trained in a one-pass
  online fashion [14], continuing to update as test values arrive.

All four map the d-length trailing segment to the h-step-ahead value,
one weight vector per horizon, with Gaussian predictive variance from
training/online residuals (the libSVM-style confidence estimate the
paper uses for SVR).
"""

from __future__ import annotations

import numpy as np

from ..timeseries.series import segment_matrix
from .base import BaseForecaster, ResidualVariance

__all__ = [
    "LinearSGDRegressor",
    "SgdSVRForecaster",
    "SgdRRForecaster",
    "OnlineSVRForecaster",
    "OnlineRRForecaster",
]


def _loss_gradient(loss: str, residual: float, epsilon: float) -> float:
    """d(loss)/d(prediction) for one sample (residual = pred - target)."""
    if loss == "epsilon_insensitive":
        if residual > epsilon:
            return 1.0
        if residual < -epsilon:
            return -1.0
        return 0.0
    if loss == "huber":
        if residual > epsilon:
            return epsilon
        if residual < -epsilon:
            return -epsilon
        return residual
    raise ValueError(f"unknown loss {loss!r}")


class LinearSGDRegressor:
    """Plain linear model ``w @ x + b`` trained by SGD.

    Learning rate follows the classic ``eta0 / (1 + eta0 * l2 * t)``
    schedule; weights carry L2 regularisation.
    """

    def __init__(
        self,
        n_features: int,
        loss: str = "epsilon_insensitive",
        epsilon: float = 0.1,
        eta0: float = 0.05,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        _loss_gradient(loss, 0.0, epsilon)  # validate the loss name early
        self.loss = loss
        self.epsilon = epsilon
        self.eta0 = eta0
        self.l2 = l2
        self.weights = np.zeros(n_features)
        self.bias = 0.0
        self._t = 0
        self._rng = np.random.default_rng(seed)

    def _learning_rate(self) -> float:
        return self.eta0 / (1.0 + self.eta0 * max(self.l2, 1e-8) * self._t)

    def partial_fit(self, x: np.ndarray, y: float) -> float:
        """One SGD step; returns the pre-update residual ``pred - y``.

        The step is normalised by ``1 + ||x||^2`` (normalised SGD), which
        keeps updates bounded regardless of the feature scale — raw
        time-series segments are not unit-normalised.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        pred = float(self.weights @ x + self.bias)
        residual = pred - float(y)
        grad_out = _loss_gradient(self.loss, residual, self.epsilon)
        lr = self._learning_rate() / (1.0 + float(x @ x))
        self.weights *= 1.0 - lr * self.l2
        if grad_out != 0.0:
            self.weights -= lr * grad_out * x
            self.bias -= lr * grad_out
        self._t += 1
        return residual

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 5) -> "LinearSGDRegressor":
        """Multi-epoch SGD with per-epoch shuffling."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
        for _ in range(epochs):
            order = self._rng.permutation(y.size)
            for i in order:
                self.partial_fit(x[i], y[i])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return x @ self.weights + self.bias


class _LinearSegmentForecaster(BaseForecaster):
    """Shared plumbing: one linear model per horizon over d-segments."""

    def __init__(
        self,
        segment_length: int = 64,
        horizons: tuple[int, ...] = (1,),
        loss: str = "epsilon_insensitive",
        epsilon: float = 0.1,
        eta0: float = 0.05,
        l2: float = 1e-5,
        epochs: int = 5,
        online: bool = False,
        seed: int = 0,
    ) -> None:
        if segment_length <= 0:
            raise ValueError(f"segment_length must be positive, got {segment_length}")
        if not horizons:
            raise ValueError("at least one horizon is required")
        self.segment_length = segment_length
        self.horizons = tuple(sorted(set(int(h) for h in horizons)))
        if self.horizons[0] <= 0:
            raise ValueError(f"horizons must be positive, got {horizons}")
        self.online = online
        self.epochs = epochs
        self._models = {
            h: LinearSGDRegressor(
                segment_length, loss=loss, epsilon=epsilon, eta0=eta0,
                l2=l2, seed=seed + h,
            )
            for h in self.horizons
        }
        self._variance = {
            h: ResidualVariance(decay=0.99 if online else None)
            for h in self.horizons
        }
        self._buffer: list[float] = []

    # ------------------------------------------------------------------ fit
    def fit(self, history: np.ndarray) -> "_LinearSegmentForecaster":
        """Train on the historical stream (see BaseForecaster.fit)."""
        history = np.asarray(history, dtype=np.float64)
        for h in self.horizons:
            x, y, _ = segment_matrix(history, self.segment_length, h)
            model = self._models[h]
            if self.online:
                # One sequential pass, oldest to newest ([14]).
                for i in range(y.size):
                    residual = model.partial_fit(x[i], y[i])
                    self._variance[h].update(residual)
            else:
                model.fit(x, y, epochs=self.epochs)
                residuals = model.predict(x) - y
                self._variance[h].update_many(residuals)
        self._buffer = list(history[-(self.segment_length + max(self.horizons)) :])
        return self

    # -------------------------------------------------------------- predict
    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if horizon not in self._models:
            raise KeyError(
                f"horizon {horizon} not trained; available: {self.horizons}"
            )
        context = np.asarray(context, dtype=np.float64)
        if context.size < self.segment_length:
            raise ValueError(
                f"context of length {context.size} shorter than segment "
                f"length {self.segment_length}"
            )
        segment = context[-self.segment_length :]
        mean = float(self._models[horizon].predict(segment[None, :])[0])
        return mean, self._variance[horizon].variance

    # -------------------------------------------------------------- observe
    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (see BaseForecaster.observe)."""
        if not self.online:
            return
        self._buffer.append(float(value))
        needed = self.segment_length + max(self.horizons)
        if len(self._buffer) > 4 * needed:
            self._buffer = self._buffer[-2 * needed :]
        buf = np.asarray(self._buffer)
        for h in self.horizons:
            # The pair that just became complete: the segment ending
            # h steps ago with the new value as its target.
            if buf.size < self.segment_length + h:
                continue
            segment = buf[-(self.segment_length + h) : buf.size - h]
            residual = self._models[h].partial_fit(segment, value)
            self._variance[h].update(residual)


class SgdSVRForecaster(_LinearSegmentForecaster):
    """Offline linear ε-SVR trained by multi-epoch SGD [75]."""

    name = "SgdSVR"
    is_offline = True

    def __init__(self, segment_length=64, horizons=(1,), **kwargs):
        kwargs.setdefault("loss", "epsilon_insensitive")
        super().__init__(segment_length, horizons, online=False, **kwargs)


class SgdRRForecaster(_LinearSegmentForecaster):
    """Offline robust (Huber) regression trained by multi-epoch SGD [59]."""

    name = "SgdRR"
    is_offline = True

    def __init__(self, segment_length=64, horizons=(1,), **kwargs):
        kwargs.setdefault("loss", "huber")
        kwargs.setdefault("epsilon", 1.0)
        super().__init__(segment_length, horizons, online=False, **kwargs)


class OnlineSVRForecaster(_LinearSegmentForecaster):
    """One-pass online ε-SVR, updating as test values arrive [14]."""

    name = "OnlineSVR"
    is_offline = False

    def __init__(self, segment_length=64, horizons=(1,), **kwargs):
        kwargs.setdefault("loss", "epsilon_insensitive")
        super().__init__(segment_length, horizons, online=True, **kwargs)


class OnlineRRForecaster(_LinearSegmentForecaster):
    """One-pass online Huber regression, updating on arrival [14]."""

    name = "OnlineRR"
    is_offline = False

    def __init__(self, segment_length=64, horizons=(1,), **kwargs):
        kwargs.setdefault("loss", "huber")
        kwargs.setdefault("epsilon", 1.0)
        super().__init__(segment_length, horizons, online=True, **kwargs)
