"""Naive reference forecasters: persistence, mean, drift, seasonal naive.

Every forecasting comparison needs the no-skill floor.  These four are
the standard references (Hyndman & Athanasopoulos' taxonomy); a method
that cannot beat the right naive baseline on a dataset has learned
nothing.  All four provide the textbook h-step forecast variances so
MNLPD can be scored:

* **Persistence** (random-walk): ``y_hat = y_t``, ``var_h = sigma^2 h``,
* **Mean**: the historical mean with its residual variance,
* **Drift**: the line through the first and last observation,
* **SeasonalNaive**: the value one season ago,
  ``var_h = sigma^2 (floor((h-1)/m) + 1)``.
"""

from __future__ import annotations

import numpy as np

from .base import BaseForecaster

__all__ = [
    "PersistenceForecaster",
    "MeanForecaster",
    "DriftForecaster",
    "SeasonalNaiveForecaster",
]


def _differenced_variance(values: np.ndarray, lag: int) -> float:
    """Variance of the lag-differenced series (the naive residuals)."""
    if values.size <= lag:
        raise ValueError(
            f"need more than {lag} points, got {values.size}"
        )
    diffs = values[lag:] - values[:-lag]
    return max(float(np.mean(diffs**2)), 1e-12)


class PersistenceForecaster(BaseForecaster):
    """Random-walk forecast: the last observed value."""

    name = "Persistence"
    is_offline = False

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if context.size < 2:
            raise ValueError("need at least 2 observations")
        sigma_sq = _differenced_variance(context, 1)
        return float(context[-1]), sigma_sq * horizon


class MeanForecaster(BaseForecaster):
    """Historical mean with its residual variance."""

    name = "Mean"
    is_offline = False

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if context.size < 2:
            raise ValueError("need at least 2 observations")
        mean = float(context.mean())
        n = context.size
        residual = max(float(np.mean((context - mean) ** 2)), 1e-12)
        return mean, residual * (1.0 + 1.0 / n)


class DriftForecaster(BaseForecaster):
    """Extrapolate the average historical slope (first-to-last line)."""

    name = "Drift"
    is_offline = False

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if context.size < 3:
            raise ValueError("need at least 3 observations")
        n = context.size
        slope = (float(context[-1]) - float(context[0])) / (n - 1)
        sigma_sq = _differenced_variance(context, 1)
        variance = sigma_sq * horizon * (1.0 + horizon / (n - 1))
        return float(context[-1]) + slope * horizon, max(variance, 1e-12)


class SeasonalNaiveForecaster(BaseForecaster):
    """The value one seasonal period ago (m-step random walk)."""

    is_offline = False

    def __init__(self, period: int) -> None:
        if period <= 1:
            raise ValueError(f"period must exceed 1, got {period}")
        self.period = period
        self.name = f"SeasonalNaive({period})"

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        m = self.period
        if context.size < 2 * m:
            raise ValueError(
                f"need at least two periods ({2 * m} points), got {context.size}"
            )
        # Target slot: h steps past the end, mapped one period back.
        offset = ((horizon - 1) % m) + 1
        value = float(context[context.size - m + offset - 1])
        sigma_sq = _differenced_variance(context, m)
        k = (horizon - 1) // m + 1
        return value, sigma_sq * k
