"""Grid search with k-fold cross-validation (Section 6.3.1).

The paper tunes NysSVR / SgdSVR / SgdRR (and the online variants' warm-up
phase) by grid search over 10-fold cross-validation.  The utility here is
model-agnostic: a factory builds a fresh estimator per parameter
combination, folds are contiguous blocks (sensible for time series — no
shuffling across time), and the squared error on the held-out fold is
averaged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["GridSearchResult", "grid_search_cv", "kfold_slices"]


def kfold_slices(n: int, n_folds: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Contiguous k-fold (train_idx, test_idx) pairs over ``range(n)``."""
    if n_folds < 2:
        raise ValueError(f"need at least 2 folds, got {n_folds}")
    if n < n_folds:
        raise ValueError(f"cannot split {n} samples into {n_folds} folds")
    indices = np.arange(n)
    bounds = np.linspace(0, n, n_folds + 1).astype(int)
    folds = []
    for f in range(n_folds):
        test = indices[bounds[f] : bounds[f + 1]]
        train = np.concatenate([indices[: bounds[f]], indices[bounds[f + 1] :]])
        folds.append((train, test))
    return folds


@dataclass
class GridSearchResult:
    """Winning parameters and the full score table."""

    best_params: dict
    best_score: float
    scores: dict[tuple, float]


def grid_search_cv(
    factory: Callable[..., object],
    param_grid: dict[str, list],
    x: np.ndarray,
    y: np.ndarray,
    n_folds: int = 10,
    fit_kwargs: dict | None = None,
) -> GridSearchResult:
    """Exhaustive grid search minimising k-fold mean squared error.

    ``factory(**params)`` must return an estimator with ``fit(x, y)`` and
    ``predict(x)``.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[0] != y.size:
        raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    fit_kwargs = fit_kwargs or {}

    names = sorted(param_grid)
    folds = kfold_slices(y.size, n_folds)
    scores: dict[tuple, float] = {}
    best_key: tuple | None = None
    for combo in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, combo))
        fold_errors = []
        for train_idx, test_idx in folds:
            model = factory(**params)
            model.fit(x[train_idx], y[train_idx], **fit_kwargs)
            pred = np.asarray(model.predict(x[test_idx])).ravel()
            fold_errors.append(float(np.mean((pred - y[test_idx]) ** 2)))
        scores[combo] = float(np.mean(fold_errors))
        if best_key is None or scores[combo] < scores[best_key]:
            best_key = combo
    best_params = dict(zip(names, best_key))
    return GridSearchResult(
        best_params=best_params, best_score=scores[best_key], scores=scores
    )
