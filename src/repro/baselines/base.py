"""Common forecaster interface for the paper's competitors (Section 6.3.1).

Every competitor — offline (eager) or online — implements the same
protocol so the experiment harness can drive them uniformly through
continuous prediction:

* :meth:`BaseForecaster.fit` — one-time training on the sensor's history
  (offline models learn their mapping here; online models at most warm
  up internal state),
* :meth:`BaseForecaster.predict` — h-step-ahead Gaussian prediction
  ``(mean, variance)`` given the observations so far,
* :meth:`BaseForecaster.observe` — feed the newly revealed true value
  (online models update; offline models ignore it).

Predictions are Gaussian because the paper scores MNLPD, the negative
log density of the truth under a normal predictive distribution; models
without an innate variance report a residual-based estimate (as the
paper does for SVR via libSVM's residual fit).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["BaseForecaster", "ResidualVariance"]


class BaseForecaster(ABC):
    """Abstract h-step-ahead Gaussian forecaster."""

    #: Display name used in experiment tables (matches the paper).
    name: str = "forecaster"
    #: Whether the model has an offline training phase (Table 4 groups).
    is_offline: bool = False

    def fit(self, history: np.ndarray) -> "BaseForecaster":
        """Train on the historical stream (oldest first)."""
        return self

    @abstractmethod
    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian prediction of the value ``horizon`` steps ahead.

        ``context`` is the full observation stream up to "now" (training
        history plus any revealed test points).
        """

    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (online models only)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class ResidualVariance:
    """Running residual-variance tracker for models without innate variance.

    The paper estimates SVR confidence by fitting a distribution to
    training residuals (libSVM's method [19]); we keep the analogous
    Gaussian estimate, optionally exponentially weighted so online models
    adapt to drift.
    """

    def __init__(self, decay: float | None = None, floor: float = 1e-6) -> None:
        if decay is not None and not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.decay = decay
        self.floor = floor
        self._sum_sq = 0.0
        self._count = 0.0

    def update(self, residual: float) -> None:
        """Incorporate one new observation."""
        sq = float(residual) ** 2
        if self.decay is None:
            self._sum_sq += sq
            self._count += 1.0
        else:
            self._sum_sq = self.decay * self._sum_sq + (1.0 - self.decay) * sq
            self._count = self.decay * self._count + (1.0 - self.decay)

    def update_many(self, residuals: np.ndarray) -> None:
        """Incorporate several residuals at once."""
        for r in np.asarray(residuals, dtype=np.float64).ravel():
            self.update(r)

    @property
    def variance(self) -> float:
        """Current variance estimate."""
        if self._count <= 0:
            return 1.0  # uninformed prior: unit variance (z-normed data)
        return max(self._sum_sq / self._count, self.floor)
