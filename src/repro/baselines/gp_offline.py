"""Offline (eager) GP baselines: PSGP and VLGP forecaster wrappers.

Both train one sparse GP per horizon on the segment/target pairs of the
whole history — the eager-learning regime whose training cost Table 4
and Fig. 13 expose.  To keep the O(n m^2 · iters · |horizons|) training
bill at laptop scale the history can be subsampled (``max_train``),
which only *helps* these baselines' reported training time.
"""

from __future__ import annotations

import numpy as np

from ..gp.sparse import ProjectedSparseGP
from ..gp.variational import VariationalSparseGP
from ..timeseries.series import segment_matrix
from .base import BaseForecaster

__all__ = ["PSGPForecaster", "VLGPForecaster"]


class _SparseGPForecaster(BaseForecaster):
    """Shared plumbing for the two sparse-GP competitors."""

    is_offline = True

    def __init__(
        self,
        segment_length: int = 64,
        horizons: tuple[int, ...] = (1,),
        n_support: int = 32,
        train_iters: int = 30,
        max_train: int | None = 2000,
        seed: int = 0,
    ) -> None:
        if segment_length <= 0:
            raise ValueError(f"segment_length must be positive, got {segment_length}")
        self.segment_length = segment_length
        self.horizons = tuple(sorted(set(int(h) for h in horizons)))
        if not self.horizons or self.horizons[0] <= 0:
            raise ValueError(f"horizons must be positive, got {horizons}")
        self.n_support = n_support
        self.train_iters = train_iters
        self.max_train = max_train
        self.seed = seed
        self._models: dict[int, object] = {}

    def _make_model(self, seed: int):
        raise NotImplementedError

    def fit(self, history: np.ndarray) -> "_SparseGPForecaster":
        """Train on the historical stream (see BaseForecaster.fit)."""
        history = np.asarray(history, dtype=np.float64)
        for h in self.horizons:
            x, y, _ = segment_matrix(history, self.segment_length, h)
            if self.max_train is not None and x.shape[0] > self.max_train:
                rng = np.random.default_rng(self.seed + h)
                idx = np.sort(
                    rng.choice(x.shape[0], size=self.max_train, replace=False)
                )
                x, y = x[idx], y[idx]
            model = self._make_model(self.seed + h)
            model.fit(x, y)
            self._models[h] = model
        return self

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if horizon not in self._models:
            raise KeyError(
                f"horizon {horizon} not trained; available: {self.horizons}"
            )
        context = np.asarray(context, dtype=np.float64)
        if context.size < self.segment_length:
            raise ValueError(
                f"context of length {context.size} shorter than segment "
                f"length {self.segment_length}"
            )
        segment = context[-self.segment_length :][None, :]
        mean, var = self._models[horizon].predict(segment, include_noise=True)
        return float(mean[0]), float(var[0])


class PSGPForecaster(_SparseGPForecaster):
    """Projected sparse GP (active-point projection [9, 25])."""

    name = "PSGP"

    def _make_model(self, seed: int) -> ProjectedSparseGP:
        return ProjectedSparseGP(
            n_active=self.n_support, train_iters=self.train_iters, seed=seed
        )


class VLGPForecaster(_SparseGPForecaster):
    """Variational sparse GP (Titsias inducing inputs [65])."""

    name = "VLGP"

    def _make_model(self, seed: int) -> VariationalSparseGP:
        return VariationalSparseGP(
            n_inducing=self.n_support, train_iters=self.train_iters, seed=seed
        )
