"""NysSVR: Nyström-approximated RBF support vector regression ([69]).

The paper's kernelised offline baseline: an RBF-kernel ε-SVR made
scalable by the Nyström low-rank feature map.  With ``m`` landmark
segments ``Z`` the explicit features are

    phi(x) = K_mm^{-1/2} k_m(x),    k_m(x)_j = rbf(z_j, x)

so that ``phi(x)^T phi(x') ~= rbf(x, x')``, and a *linear* ε-SVR (our SGD
solver) is trained on the features — the standard "reduced rank"
construction the paper configures with rank 128.
"""

from __future__ import annotations

import numpy as np

from ..gp.kernels import squared_distances
from ..timeseries.series import segment_matrix
from .base import BaseForecaster, ResidualVariance
from .sgd_linear import LinearSGDRegressor

__all__ = ["NystromFeatureMap", "NysSVRForecaster"]


class NystromFeatureMap:
    """Explicit low-rank RBF features from ``m`` landmarks."""

    def __init__(self, landmarks: np.ndarray, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.landmarks = np.atleast_2d(np.asarray(landmarks, dtype=np.float64))
        self.gamma = gamma
        k_mm = np.exp(-gamma * squared_distances(self.landmarks, self.landmarks))
        # Inverse square root via eigen-decomposition with a floor on the
        # spectrum (Nyström's standard regularisation).
        eigvals, eigvecs = np.linalg.eigh(k_mm)
        eigvals = np.clip(eigvals, 1e-10, None)
        self._whitener = eigvecs @ np.diag(eigvals**-0.5) @ eigvecs.T

    @property
    def rank(self) -> int:
        """Rank of the low-rank representation."""
        return self.landmarks.shape[0]

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Map inputs to the explicit feature space."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        k_mx = np.exp(-self.gamma * squared_distances(self.landmarks, x))
        return (self._whitener @ k_mx).T


class NysSVRForecaster(BaseForecaster):
    """RBF ε-SVR with rank-``m`` Nyström features, one model per horizon."""

    name = "NysSVR"
    is_offline = True

    def __init__(
        self,
        segment_length: int = 64,
        horizons: tuple[int, ...] = (1,),
        rank: int = 128,
        gamma: float | None = None,
        epsilon: float = 0.1,
        epochs: int = 5,
        seed: int = 0,
    ) -> None:
        if segment_length <= 0:
            raise ValueError(f"segment_length must be positive, got {segment_length}")
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.segment_length = segment_length
        self.horizons = tuple(sorted(set(int(h) for h in horizons)))
        if not self.horizons or self.horizons[0] <= 0:
            raise ValueError(f"horizons must be positive, got {horizons}")
        self.rank = rank
        self.gamma = gamma
        self.epsilon = epsilon
        self.epochs = epochs
        self.seed = seed
        self._feature_map: NystromFeatureMap | None = None
        self._models: dict[int, LinearSGDRegressor] = {}
        self._variance: dict[int, ResidualVariance] = {}

    def fit(self, history: np.ndarray) -> "NysSVRForecaster":
        """Train on the historical stream (see BaseForecaster.fit)."""
        history = np.asarray(history, dtype=np.float64)
        x_all, _, _ = segment_matrix(history, self.segment_length, self.horizons[0])
        rng = np.random.default_rng(self.seed)
        m = min(self.rank, x_all.shape[0])
        landmarks = x_all[rng.choice(x_all.shape[0], size=m, replace=False)]
        gamma = self.gamma
        if gamma is None:
            # Median heuristic on a landmark subsample.
            sq = squared_distances(landmarks, landmarks)
            median = float(np.median(sq[sq > 0])) if (sq > 0).any() else 1.0
            gamma = 1.0 / max(median, 1e-8)
        self._feature_map = NystromFeatureMap(landmarks, gamma)

        for h in self.horizons:
            x, y, _ = segment_matrix(history, self.segment_length, h)
            features = self._feature_map.transform(x)
            model = LinearSGDRegressor(
                features.shape[1], loss="epsilon_insensitive",
                epsilon=self.epsilon, seed=self.seed + h,
            )
            model.fit(features, y, epochs=self.epochs)
            self._models[h] = model
            tracker = ResidualVariance()
            tracker.update_many(model.predict(features) - y)
            self._variance[h] = tracker
        return self

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if self._feature_map is None:
            raise RuntimeError("fit() must be called first")
        if horizon not in self._models:
            raise KeyError(
                f"horizon {horizon} not trained; available: {self.horizons}"
            )
        context = np.asarray(context, dtype=np.float64)
        if context.size < self.segment_length:
            raise ValueError(
                f"context of length {context.size} shorter than segment "
                f"length {self.segment_length}"
            )
        segment = context[-self.segment_length :][None, :]
        features = self._feature_map.transform(segment)
        mean = float(self._models[horizon].predict(features)[0])
        return mean, self._variance[horizon].variance
