"""LazyKNN: distance-weighted kNN regression under DTW ([4], Section 6.3.1).

The classic lazy-learning competitor: retrieve the k most similar
d-length segments of the sensor's own history under banded DTW and
average their h-step-ahead values weighted by inverse DTW distance.
The predicted variance is the (weighted) variance of the neighbours'
targets — exactly the estimate the paper credits LazyKNN with, and the
one MNLPD punishes relative to the GP's posterior variance.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..dtw.distance import dtw_batch
from .base import BaseForecaster

__all__ = ["LazyKNNForecaster"]


class LazyKNNForecaster(BaseForecaster):
    """Inverse-DTW-weighted kNN regression."""

    name = "LazyKNN"
    is_offline = False

    def __init__(
        self,
        segment_length: int = 64,
        k: int = 32,
        rho: int = 8,
        weight_floor: float = 1e-6,
        bootstrap: int = 0,
        seed: int = 0,
    ) -> None:
        if segment_length <= 0:
            raise ValueError(f"segment_length must be positive, got {segment_length}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if rho < 0:
            raise ValueError(f"rho must be non-negative, got {rho}")
        if bootstrap < 0:
            raise ValueError(f"bootstrap must be non-negative, got {bootstrap}")
        self.segment_length = segment_length
        self.k = k
        self.rho = rho
        self.weight_floor = weight_floor
        #: Number of bootstrap resamples for the variance estimate.  The
        #: paper (Section 2.1) notes bootstrap can partially remedy lazy
        #: learning's missing predictive uncertainty at high time cost;
        #: 0 keeps the plain weighted-neighbour variance.
        self.bootstrap = bootstrap
        self._rng = np.random.default_rng(seed)
        if bootstrap:
            self.name = "LazyKNN+bootstrap"

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        d = self.segment_length
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        # Candidates whose h-step target is already observed; the query
        # (the trailing segment) is excluded automatically since its own
        # target lies in the future.
        n_candidates = context.size - d - horizon + 1
        if n_candidates <= 0:
            raise ValueError(
                f"context of length {context.size} too short for segments "
                f"of length {d} with horizon {horizon}"
            )
        query = context[-d:]
        segments = sliding_window_view(context, d)[:n_candidates]
        distances = dtw_batch(query, segments, self.rho)
        k = min(self.k, n_candidates)
        nearest = np.argpartition(distances, k - 1)[:k]
        targets = context[nearest + d - 1 + horizon]
        weights = 1.0 / np.maximum(distances[nearest], self.weight_floor)
        weights = weights / weights.sum()
        mean = float(weights @ targets)
        if self.bootstrap:
            # Resample neighbours with replacement (by weight) and take
            # the spread of the resampled means plus the within-sample
            # spread as the predictive variance.
            picks = self._rng.choice(
                k, size=(self.bootstrap, k), p=weights, replace=True
            )
            boot_means = targets[picks].mean(axis=1)
            within = float(weights @ (targets - mean) ** 2) / max(k, 1)
            var = float(np.var(boot_means)) + within
        else:
            var = float(weights @ (targets - mean) ** 2)
        return mean, max(var, 1e-8)
