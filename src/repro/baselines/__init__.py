"""The paper's ten competitor forecasters (Section 6.3.1) plus the
statistical-regression family its related work names (AR/ARI, SES/Holt,
GARCH)."""

from .autoregressive import ARForecaster, ArModel, fit_ar, select_ar_order
from .base import BaseForecaster, ResidualVariance
from .exponential import (
    ExponentialSmoothingForecaster,
    HoltLinearTrend,
    SimpleExponentialSmoothing,
)
from .garch import GarchForecaster, GarchModel, fit_garch
from .gp_offline import PSGPForecaster, VLGPForecaster
from .gridsearch import GridSearchResult, grid_search_cv, kfold_slices
from .holt_winters import HoltWintersForecaster, HoltWintersModel
from .lazy_knn import LazyKNNForecaster
from .naive import (
    DriftForecaster,
    MeanForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
)
from .nystrom_svr import NysSVRForecaster, NystromFeatureMap
from .sgd_linear import (
    LinearSGDRegressor,
    OnlineRRForecaster,
    OnlineSVRForecaster,
    SgdRRForecaster,
    SgdSVRForecaster,
)

__all__ = [
    "ARForecaster",
    "ArModel",
    "fit_ar",
    "select_ar_order",
    "BaseForecaster",
    "ResidualVariance",
    "ExponentialSmoothingForecaster",
    "HoltLinearTrend",
    "SimpleExponentialSmoothing",
    "GarchForecaster",
    "GarchModel",
    "fit_garch",
    "PSGPForecaster",
    "VLGPForecaster",
    "GridSearchResult",
    "grid_search_cv",
    "kfold_slices",
    "HoltWintersForecaster",
    "HoltWintersModel",
    "LazyKNNForecaster",
    "DriftForecaster",
    "MeanForecaster",
    "PersistenceForecaster",
    "SeasonalNaiveForecaster",
    "NysSVRForecaster",
    "NystromFeatureMap",
    "LinearSGDRegressor",
    "OnlineRRForecaster",
    "OnlineSVRForecaster",
    "SgdRRForecaster",
    "SgdSVRForecaster",
]
