"""GARCH(1,1) conditional-volatility baseline ([31, 13]).

The last member of the statistical-regression family the paper's related
work names: an AR mean equation with GARCH(1,1) innovation variance

    y_t = c + phi y_{t-1} + eps_t,   eps_t ~ N(0, h_t)
    h_t = omega + a * eps_{t-1}^2 + b * h_{t-1}

fitted by Gaussian quasi-MLE (Nelder-Mead on reparameterised
constraints: omega > 0, a, b >= 0, a + b < 1 for covariance
stationarity).  GARCH matters for MNLPD-style scoring: it models the
*variance* dynamics that homoskedastic baselines miss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gp.optimize import nelder_mead_minimize
from .autoregressive import fit_ar
from .base import BaseForecaster

__all__ = ["GarchModel", "fit_garch", "GarchForecaster"]

_LOG_2PI = np.log(2.0 * np.pi)


@dataclass(frozen=True)
class GarchModel:
    """AR(1)-GARCH(1,1) fitted state."""

    intercept: float
    ar_coefficient: float
    omega: float
    alpha: float
    beta: float
    last_value: float
    last_residual_sq: float
    last_variance: float
    log_likelihood: float

    @property
    def unconditional_variance(self) -> float:
        """Long-run innovation variance of the fitted GARCH."""
        persistence = self.alpha + self.beta
        if persistence >= 1.0:
            return self.last_variance
        return self.omega / (1.0 - persistence)

    def forecast(self, horizon: int) -> tuple[float, float]:
        """h-step-ahead mean and variance of the *observation*.

        The mean iterates the AR recursion; the variance accumulates the
        GARCH forecast of each step's innovation variance scaled by the
        AR psi weights.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        # Innovation-variance forecasts h_{t+1}, ..., h_{t+h}.
        h_next = (
            self.omega
            + self.alpha * self.last_residual_sq
            + self.beta * self.last_variance
        )
        persistence = self.alpha + self.beta
        h_steps = np.empty(horizon)
        h_steps[0] = h_next
        for j in range(1, horizon):
            h_steps[j] = self.omega + persistence * h_steps[j - 1]

        mean = self.last_value
        for _ in range(horizon):
            mean = self.intercept + self.ar_coefficient * mean
        # psi_j = phi^j for AR(1); y_{t+h} variance = sum_j phi^{2j} h_{t+h-j}.
        psis_sq = self.ar_coefficient ** (2 * np.arange(horizon))
        variance = float(np.sum(psis_sq * h_steps[::-1]))
        return float(mean), max(variance, 1e-12)


def _negative_log_likelihood(
    params: np.ndarray, values: np.ndarray
) -> tuple[float, float, float]:
    """NLL of the GARCH recursion; returns (nll, last eps^2, last h)."""
    omega, alpha, beta, intercept, phi = params
    h = float(np.var(values)) or 1e-6
    eps_sq = h
    nll = 0.0
    prev = values[0]
    for y in values[1:]:
        h = omega + alpha * eps_sq + beta * h
        h = max(h, 1e-12)
        eps = y - (intercept + phi * prev)
        nll += 0.5 * (_LOG_2PI + np.log(h) + eps * eps / h)
        eps_sq = eps * eps
        prev = y
    return nll, eps_sq, h


def fit_garch(values: np.ndarray, max_iters: int = 120) -> GarchModel:
    """Quasi-MLE fit of AR(1)-GARCH(1,1)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size < 20:
        raise ValueError(f"need at least 20 points, got {values.size}")
    # Seed the mean equation from a plain AR(1) fit.
    ar = fit_ar(values, 1)
    sample_var = float(np.var(values)) or 1e-6

    def unpack(z: np.ndarray) -> np.ndarray:
        # omega > 0; (a, b) in the simplex a + b < 1 via softmax-ish map.
        omega = sample_var * np.exp(np.clip(z[0], -10, 10))
        ea, eb = np.exp(np.clip(z[1], -10, 10)), np.exp(np.clip(z[2], -10, 10))
        scale = 0.999 / (1.0 + ea + eb)
        return np.array(
            [omega, ea * scale, eb * scale, z[3], np.tanh(z[4])]
        )

    def objective(z: np.ndarray) -> float:
        nll, _, _ = _negative_log_likelihood(unpack(z), values)
        return nll if np.isfinite(nll) else 1e12

    start = np.array([-2.0, -1.0, 1.0, ar.intercept, np.arctanh(
        np.clip(ar.coefficients[0], -0.99, 0.99)
    )])
    result = nelder_mead_minimize(objective, start, max_iters=max_iters)
    params = unpack(result.x)
    nll, eps_sq, h = _negative_log_likelihood(params, values)
    return GarchModel(
        intercept=float(params[3]),
        ar_coefficient=float(params[4]),
        omega=float(params[0]),
        alpha=float(params[1]),
        beta=float(params[2]),
        last_value=float(values[-1]),
        last_residual_sq=float(eps_sq),
        last_variance=float(h),
        log_likelihood=float(-nll),
    )


class GarchForecaster(BaseForecaster):
    """AR(1)-GARCH(1,1) behind the common forecaster protocol."""

    name = "GARCH"
    is_offline = False

    def __init__(self, window: int = 1000, refit_every: int = 8) -> None:
        if window < 20:
            raise ValueError(f"window must be at least 20, got {window}")
        if refit_every <= 0:
            raise ValueError(f"refit_every must be positive, got {refit_every}")
        self.window = window
        self.refit_every = refit_every
        self._model: GarchModel | None = None
        self._since_fit = 0
        self._pending = 0

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        context = np.asarray(context, dtype=np.float64)
        if self._model is None or self._since_fit >= self.refit_every:
            self._model = fit_garch(context[-self.window :])
            self._since_fit = 0
            self._pending = 0
        return self._model.forecast(horizon + self._pending)

    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (see BaseForecaster.observe)."""
        self._since_fit += 1
        self._pending += 1
