"""Abstract semi-lazy time series predictor (Definition 3.1).

A semi-lazy predictor maps the test segment ``x_{0,d}`` and its kNN data
``(X_{k,d}, Y_h)`` to a Gaussian posterior over the h-step-ahead value:

    y_{0,h} = f(x_{0,d}, X_{k,d}, Y_h) ~ N(u, sigma^2)

Instantiations: :class:`repro.core.ar.AggregationPredictor` (Eqns. 10-13)
and :class:`repro.core.gp_predictor.GaussianProcessPredictor`
(Eqns. 14-20 with online LOO training).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["GaussianPrediction", "SemiLazyPredictor"]


@dataclass(frozen=True)
class GaussianPrediction:
    """One predictor's posterior ``N(mean, variance)``."""

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.mean):
            raise ValueError(f"prediction mean must be finite, got {self.mean}")
        if not np.isfinite(self.variance) or self.variance <= 0:
            raise ValueError(
                f"prediction variance must be positive and finite, got "
                f"{self.variance}"
            )

    def log_density(self, value: float) -> float:
        """``log N(value; mean, variance)`` (the auto-tuner's likelihood)."""
        return float(
            -0.5 * np.log(2.0 * np.pi * self.variance)
            - (value - self.mean) ** 2 / (2.0 * self.variance)
        )

    def density(self, value: float) -> float:
        """``N(value; mean, variance)`` (Eqn. 7)."""
        return float(np.exp(self.log_density(value)))


class SemiLazyPredictor(ABC):
    """The abstract ``f(.)`` of Definition 3.1."""

    @abstractmethod
    def predict(
        self, query: np.ndarray, neighbours: np.ndarray, targets: np.ndarray
    ) -> GaussianPrediction:
        """Posterior for the query given its kNN data.

        Parameters
        ----------
        query:
            The test segment ``x_{0,d}`` (length d).
        neighbours:
            ``X_{k,d}``: the k retrieved segments, shape ``(k, d)``.
        targets:
            ``Y_h``: their h-step-ahead values, shape ``(k,)``.
        """

    @staticmethod
    def _validate(query, neighbours, targets):
        query = np.asarray(query, dtype=np.float64).ravel()
        neighbours = np.atleast_2d(np.asarray(neighbours, dtype=np.float64))
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if neighbours.shape[0] != targets.size:
            raise ValueError(
                f"{neighbours.shape[0]} neighbours but {targets.size} targets"
            )
        if neighbours.shape[0] == 0:
            raise ValueError("at least one neighbour is required")
        if neighbours.shape[1] != query.size:
            raise ValueError(
                f"neighbour length {neighbours.shape[1]} does not match "
                f"query length {query.size}"
            )
        return query, neighbours, targets
