"""SMiLer core: semi-lazy predictors, ensemble auto-tuning, system facade."""

from .ar import AggregationPredictor
from .config import SMiLerConfig
from .ensemble import AdaptiveEnsemble, Cell, CellState, EnsembleOutput
from .gp_predictor import GaussianProcessPredictor
from .persistence import (
    SmilerSnapshot,
    build_smiler,
    load_smiler,
    load_snapshot,
    save_smiler,
)
from .predictor import GaussianPrediction, SemiLazyPredictor
from .scaleout import plan_lanes, truncate_history
from .smiler import SensorFleet, SMiLer

__all__ = [
    "AggregationPredictor",
    "SMiLerConfig",
    "AdaptiveEnsemble",
    "Cell",
    "CellState",
    "EnsembleOutput",
    "GaussianProcessPredictor",
    "GaussianPrediction",
    "SmilerSnapshot",
    "build_smiler",
    "load_smiler",
    "load_snapshot",
    "save_smiler",
    "plan_lanes",
    "truncate_history",
    "SemiLazyPredictor",
    "SensorFleet",
    "SMiLer",
]
