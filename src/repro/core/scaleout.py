"""Scale-out beyond one GPU (Section 6.4.1's two options).

The paper names two ways to host more sensors than one 6 GB card fits:

1. **multiple GPUs** — shard sensors across a pool of devices.  The one
   placement/allocation path lives in
   :class:`repro.backend.pool.BackendPool` (greedy most-free balancing,
   circuit breakers), driven by :class:`repro.service.PredictionService`.
   :func:`plan_lanes` is the bridge from a placement snapshot to the
   engine-consumable lane plans (:class:`repro.exec.base.LanePlan`) that
   every execution engine — inline, thread or process-per-shard — runs
   batches through.  (The historical ``MultiGpuFleet`` facade over this
   path has been removed; construct a ``PredictionService`` with several
   backends instead.)
2. **less history per sensor** — trading accuracy for space.  SMiLer
   accepts a truncated history directly; :func:`truncate_history`
   implements the policy (keep the most recent fraction) and the
   ablation benchmark measures the accuracy cost.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..exec.base import LanePlan

__all__ = ["plan_lanes", "truncate_history"]


def truncate_history(values: np.ndarray, fraction: float) -> np.ndarray:
    """Keep the most recent ``fraction`` of a sensor's history.

    The paper's space/accuracy trade-off ("a sample of ten percent of
    ROAD ... more than ten thousands of sensors [per GPU]"): recency
    truncation preserves segment semantics (uniform subsampling would
    warp the time axis under DTW).
    """
    values = np.asarray(values, dtype=np.float64)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep = max(1, int(round(values.size * fraction)))
    return values[-keep:]


def plan_lanes(
    placements: Mapping[str, int], sensor_ids: Iterable[str]
) -> list[LanePlan]:
    """Turn a placement snapshot into one :class:`LanePlan` per shard.

    ``placements`` maps sensor id to hosting backend index (a
    point-in-time snapshot of the pool's placement table);
    ``sensor_ids`` fixes the order sensors appear *within* their lane.
    Lanes come back sorted by backend index and carry only the backends
    that actually host work — this (backend order, per-backend sensor
    order) pair is the entire bit-identical contract execution engines
    must honour, so it is computed exactly once, here, rather than once
    per engine.
    """
    by_backend: dict[int, list[str]] = {}
    for sensor_id in sensor_ids:
        by_backend.setdefault(placements[sensor_id], []).append(sensor_id)
    return [
        LanePlan(
            lane_index=lane_index,
            backend_index=backend_index,
            sensor_ids=tuple(by_backend[backend_index]),
        )
        for lane_index, backend_index in enumerate(sorted(by_backend))
    ]
