"""Scale-out beyond one GPU (Section 6.4.1's two options).

The paper names two ways to host more sensors than one 6 GB card fits:

1. **multiple GPUs** — :class:`MultiGpuFleet` shards sensors across a
   pool of simulated devices, placing each sensor on the device with the
   most free memory (greedy balancing) and raising only when the whole
   pool is exhausted.  The class is now a thin compatibility shim over
   :class:`repro.service.PredictionService`, which owns the one
   placement/allocation path for the whole system;
2. **less history per sensor** — trading accuracy for space.  SMiLer
   accepts a truncated history directly; :func:`truncate_history`
   implements the policy (keep the most recent fraction) and the
   ablation benchmark measures the accuracy cost.
"""

from __future__ import annotations

import numpy as np

from ..backend.simulated import SimulatedGpuBackend
from ..gpu.costmodel import DeviceSpec
from .config import SMiLerConfig
from .smiler import SMiLer

__all__ = ["MultiGpuFleet", "truncate_history"]


def truncate_history(values: np.ndarray, fraction: float) -> np.ndarray:
    """Keep the most recent ``fraction`` of a sensor's history.

    The paper's space/accuracy trade-off ("a sample of ten percent of
    ROAD ... more than ten thousands of sensors [per GPU]"): recency
    truncation preserves segment semantics (uniform subsampling would
    warp the time axis under DTW).
    """
    values = np.asarray(values, dtype=np.float64)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep = max(1, int(round(values.size * fraction)))
    return values[-keep:]


class MultiGpuFleet:
    """Sensors sharded over several simulated GPUs.

    A compatibility shim: all placement and bookkeeping is delegated to
    :class:`repro.service.PredictionService` running un-normalised
    (fleet callers feed z-scored values themselves), so the greedy
    balancing, per-device counts and busiest-device fleet time behave
    exactly as before — now with estimate-first placement, i.e. each
    sensor's index is built once, on the device that hosts it.
    """

    def __init__(
        self,
        histories: list[np.ndarray],
        config: SMiLerConfig | None = None,
        n_devices: int = 2,
        spec: DeviceSpec | None = None,
    ) -> None:
        # Imported here: repro.service imports this package (repro.core).
        from ..service import PredictionService

        if not histories:
            raise ValueError("a fleet needs at least one sensor")
        if n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {n_devices}")
        self.config = config or SMiLerConfig()
        self._service = PredictionService(
            self.config,
            backends=[
                SimulatedGpuBackend(spec=spec or DeviceSpec())
                for _ in range(n_devices)
            ],
            min_history=1,
            normalize=False,
        )
        self._order = [f"sensor-{i}" for i in range(len(histories))]
        for sensor_id, history in zip(self._order, histories):
            self._service.register(
                sensor_id, np.asarray(history, dtype=np.float64)
            )

    @property
    def service(self) -> "object":
        """The PredictionService doing the actual work."""
        return self._service

    @property
    def devices(self) -> list[SimulatedGpuBackend]:
        """The pool's backends, in placement order."""
        return self._service.backends

    @property
    def sensors(self) -> list[SMiLer]:
        """SMiLer instances in registration order."""
        return [self._service.sensor(sid) for sid in self._order]

    @property
    def placement(self) -> list[int]:
        """Device index hosting each sensor, in registration order."""
        return [self._service.placement_of(sid) for sid in self._order]

    def __len__(self) -> int:
        return len(self._order)

    def predict_all(self, horizon: int | None = None):
        """Predictions for every sensor in the fleet."""
        return [sensor.predict(horizon) for sensor in self.sensors]

    def observe_all(self, values) -> None:
        """Feed each sensor its newly revealed true value."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size != len(self._order):
            raise ValueError(
                f"{values.size} values for {len(self._order)} sensors"
            )
        self._service.ingest_many(
            {sid: float(v) for sid, v in zip(self._order, values)}
        )

    def sensors_per_device(self) -> list[int]:
        """Sensor count hosted on each device."""
        return self._service.sensors_per_backend()

    def total_elapsed_s(self) -> float:
        """Simulated device time: the pool runs in parallel, so the fleet
        step time is the busiest device's time."""
        return max(device.elapsed_s for device in self.devices)
