"""Scale-out beyond one GPU (Section 6.4.1's two options).

The paper names two ways to host more sensors than one 6 GB card fits:

1. **multiple GPUs** — :class:`MultiGpuFleet` shards sensors across a
   pool of simulated devices, placing each sensor on the device with the
   most free memory (greedy balancing) and raising only when the whole
   pool is exhausted;
2. **less history per sensor** — trading accuracy for space.  SMiLer
   accepts a truncated history directly; :func:`truncate_history`
   implements the policy (keep the most recent fraction) and the
   ablation benchmark measures the accuracy cost.
"""

from __future__ import annotations

import numpy as np

from ..gpu.costmodel import DeviceSpec
from ..gpu.device import GpuDevice, GpuMemoryError
from .config import SMiLerConfig
from .smiler import SMiLer

__all__ = ["MultiGpuFleet", "truncate_history"]


def truncate_history(values: np.ndarray, fraction: float) -> np.ndarray:
    """Keep the most recent ``fraction`` of a sensor's history.

    The paper's space/accuracy trade-off ("a sample of ten percent of
    ROAD ... more than ten thousands of sensors [per GPU]"): recency
    truncation preserves segment semantics (uniform subsampling would
    warp the time axis under DTW).
    """
    values = np.asarray(values, dtype=np.float64)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep = max(1, int(round(values.size * fraction)))
    return values[-keep:]


class MultiGpuFleet:
    """Sensors sharded over several simulated GPUs."""

    def __init__(
        self,
        histories: list[np.ndarray],
        config: SMiLerConfig | None = None,
        n_devices: int = 2,
        spec: DeviceSpec | None = None,
    ) -> None:
        if not histories:
            raise ValueError("a fleet needs at least one sensor")
        if n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {n_devices}")
        self.config = config or SMiLerConfig()
        self.devices = [GpuDevice(spec or DeviceSpec()) for _ in range(n_devices)]
        self.sensors: list[SMiLer] = []
        self.placement: list[int] = []
        for i, history in enumerate(histories):
            self._place(np.asarray(history, dtype=np.float64), f"sensor-{i}")

    def _place(self, history: np.ndarray, sensor_id: str) -> None:
        """Greedy balancing: try devices in free-memory order."""
        order = sorted(
            range(len(self.devices)),
            key=lambda d: self.devices[d].free_bytes,
            reverse=True,
        )
        last_error: GpuMemoryError | None = None
        for device_index in order:
            device = self.devices[device_index]
            sensor = SMiLer(
                history, self.config, device=device, sensor_id=sensor_id
            )
            try:
                device.malloc(sensor.memory_bytes(), label=sensor_id)
            except GpuMemoryError as error:
                last_error = error
                continue
            self.sensors.append(sensor)
            self.placement.append(device_index)
            return
        raise GpuMemoryError(
            f"no device in the pool can host {sensor_id}: {last_error}"
        )

    def __len__(self) -> int:
        return len(self.sensors)

    def predict_all(self, horizon: int | None = None):
        """Predictions for every sensor in the fleet."""
        return [sensor.predict(horizon) for sensor in self.sensors]

    def observe_all(self, values) -> None:
        """Feed each sensor its newly revealed true value."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size != len(self.sensors):
            raise ValueError(
                f"{values.size} values for {len(self.sensors)} sensors"
            )
        for sensor, value in zip(self.sensors, values):
            sensor.observe(float(value))

    def sensors_per_device(self) -> list[int]:
        """Sensor count hosted on each device."""
        counts = [0] * len(self.devices)
        for device_index in self.placement:
            counts[device_index] += 1
        return counts

    def total_elapsed_s(self) -> float:
        """Simulated device time: the pool runs in parallel, so the fleet
        step time is the busiest device's time."""
        return max(device.elapsed_s for device in self.devices)
