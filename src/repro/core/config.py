"""SMiLer system configuration (paper defaults in Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SMiLerConfig"]


@dataclass(frozen=True)
class SMiLerConfig:
    """All knobs of one SMiLer instance.

    Defaults reproduce the paper's Table 2: warping width ``rho = 8``,
    window length ``omega = 16``, Ensemble Length Vector {32, 64, 96} and
    Ensemble kNN Vector {8, 16, 32} — a 3x3 ensemble matrix.
    """

    #: Ensemble Length Vector (segment lengths d_j).
    elv: tuple[int, ...] = (32, 64, 96)
    #: Ensemble kNN Vector (neighbour counts k_i).
    ekv: tuple[int, ...] = (8, 16, 32)
    #: Sakoe-Chiba warping width for all DTW computations.
    rho: int = 8
    #: DualMatch window length of the SMiLer Index.
    omega: int = 16
    #: Prediction horizons (h-step-ahead); one ensemble state per horizon.
    horizons: tuple[int, ...] = (1,)
    #: Predictor family: "gp" (SMiLer-GP) or "ar" (SMiLer-AR).
    predictor: str = "gp"
    #: Enable the ensemble matrix (False = single predictor, SMiLerNE).
    ensemble: bool = True
    #: Enable self-adaptive weight updates (False = fixed weights, SMiLerNS).
    self_adaptive: bool = True
    #: Enable the sleep-and-recovery scheduler (Section 5.1.2).
    sleep_enabled: bool = True
    #: CG iterations for the initial GP hyperparameter fit.
    initial_train_iters: int = 25
    #: Fixed CG steps per continuous-prediction tick (Section 5.2.2).
    online_train_iters: int = 5
    #: Fallback (k, d) when the ensemble is disabled.
    single_k: int = 32
    single_d: int = 64
    #: Search-pipeline switches forwarded to
    #: :class:`~repro.index.suffix_search.SuffixSearchConfig` — the
    #: ablation surface of the tiered pruning cascade.  All default on;
    #: disabling any of them keeps answers bit-identical (each tier is
    #: an admissible bound), it only changes how much work the search
    #: does.  See ``repro.ablation``.
    cascade: bool = True
    lb_kim: bool = True
    lb_improved: bool = True
    early_abandon: bool = True
    reuse_envelopes: bool = True
    reuse_threshold: bool = True

    def __post_init__(self) -> None:
        if not self.elv or not self.ekv:
            raise ValueError("ELV and EKV must be non-empty")
        if any(d <= 0 for d in self.elv) or any(k <= 0 for k in self.ekv):
            raise ValueError("ELV and EKV entries must be positive")
        if tuple(sorted(self.elv)) != tuple(self.elv):
            raise ValueError(f"ELV must be sorted ascending, got {self.elv}")
        if self.rho < 0:
            raise ValueError(f"rho must be non-negative, got {self.rho}")
        if self.omega <= 0:
            raise ValueError(f"omega must be positive, got {self.omega}")
        if min(self.elv) < self.omega:
            raise ValueError(
                f"shortest ELV entry ({min(self.elv)}) must be at least "
                f"omega ({self.omega})"
            )
        if not self.horizons or any(h <= 0 for h in self.horizons):
            raise ValueError(f"horizons must be positive, got {self.horizons}")
        if self.predictor not in ("gp", "ar"):
            raise ValueError(f"predictor must be 'gp' or 'ar', got {self.predictor!r}")
        if self.initial_train_iters < 0 or self.online_train_iters < 0:
            raise ValueError("training iteration counts must be non-negative")

    # ------------------------------------------------------------- derived
    @property
    def master_length(self) -> int:
        """Length of the master query (longest item query)."""
        return max(self.elv)

    @property
    def k_max(self) -> int:
        """Largest neighbour count in the EKV."""
        return max(self.ekv)

    @property
    def margin(self) -> int:
        """Candidate margin: the farthest horizon's target must exist."""
        return max(self.horizons)

    @property
    def grid(self) -> list[tuple[int, int]]:
        """Predictor grid cells ``(k_i, d_j)`` of the ensemble matrix."""
        if self.ensemble:
            return [(k, d) for k in self.ekv for d in self.elv]
        return [(self.single_k, self.single_d)]

    def effective_elv(self) -> tuple[int, ...]:
        """Item lengths the search engine must serve."""
        if self.ensemble:
            return self.elv
        return (self.single_d,)
