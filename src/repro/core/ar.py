"""Aggregation Regression predictor (SMiLer-AR, Section 5.2.1).

The simple instantiation of the abstract predictor: pseudo-mean and
pseudo-variance of the neighbours' h-step-ahead values (Eqns. 10-13).
Cheap and surprisingly accurate on seasonal data, but — as the paper's
MNLPD plots show — its variance is not a calibrated posterior.
"""

from __future__ import annotations

import numpy as np

from .predictor import GaussianPrediction, SemiLazyPredictor

__all__ = ["AggregationPredictor"]


class AggregationPredictor(SemiLazyPredictor):
    """Eqns. 10-13: plain average + biased variance of the kNN targets."""

    def __init__(self, variance_floor: float = 1e-8) -> None:
        if variance_floor <= 0:
            raise ValueError(f"variance_floor must be positive, got {variance_floor}")
        self.variance_floor = variance_floor

    def predict(
        self, query: np.ndarray, neighbours: np.ndarray, targets: np.ndarray
    ) -> GaussianPrediction:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        _, _, targets = self._validate(query, neighbours, targets)
        mean = float(targets.mean())
        variance = float(np.mean((targets - mean) ** 2))
        return GaussianPrediction(mean, max(variance, self.variance_floor))
