"""Saving and restoring SMiLer state across process restarts.

A deployed SMiLer instance carries state worth keeping: the accrued
history, each horizon's auto-tuned ensemble matrix (weights, sleep
scheduler) and every GP cell's warm-started hyperparameters.  This
module serialises all of it to a single ``.npz`` archive.

The search index itself is *rebuilt* from the stored history on load —
it is a deterministic function of the series and configuration, and
rebuilding (one vectorised pass) is cheaper and far less error-prone
than serialising ring-buffer internals.  The restored instance therefore
predicts identically up to the index's stale-envelope slack, which tests
pin down.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

import numpy as np

from ..backend.base import ComputeBackend
from .config import SMiLerConfig
from .gp_predictor import GaussianProcessPredictor
from .smiler import SMiLer

__all__ = [
    "SmilerSnapshot",
    "save_smiler",
    "load_snapshot",
    "build_smiler",
    "load_smiler",
]

_FORMAT_VERSION = 1


@dataclass
class SmilerSnapshot:
    """Parsed archive contents, not yet bound to any backend.

    Splitting parsing from construction lets admission control *estimate*
    the sensor's memory (``SMiLer.estimate_memory_bytes(snapshot.series.size,
    snapshot.config)``) and pick a backend before paying for the index
    build — one build per sensor, on the chosen backend.
    """

    sensor_id: str
    config: SMiLerConfig
    series: np.ndarray
    ensemble_state: dict[str, dict]
    gp_params: dict[str, np.ndarray]
    path: pathlib.Path


def _cell_key(horizon: int, cell: tuple[int, int]) -> str:
    return f"h{horizon}_k{cell[0]}_d{cell[1]}"


def save_smiler(smiler: SMiLer, path) -> None:
    """Serialise a SMiLer instance to ``path`` (``.npz`` archive)."""
    path = pathlib.Path(path)
    config = smiler.config
    meta = {
        "format_version": _FORMAT_VERSION,
        "sensor_id": smiler.sensor_id,
        "config": {
            "elv": list(config.elv),
            "ekv": list(config.ekv),
            "rho": config.rho,
            "omega": config.omega,
            "horizons": list(config.horizons),
            "predictor": config.predictor,
            "ensemble": config.ensemble,
            "self_adaptive": config.self_adaptive,
            "sleep_enabled": config.sleep_enabled,
            "initial_train_iters": config.initial_train_iters,
            "online_train_iters": config.online_train_iters,
            "single_k": config.single_k,
            "single_d": config.single_d,
        },
    }
    arrays: dict[str, np.ndarray] = {"series": np.asarray(smiler.series)}
    ensemble_state: dict[str, dict] = {}
    for horizon in config.horizons:
        ensemble = smiler.ensemble(horizon)
        for cell in ensemble.cells:
            state = ensemble.state(cell)
            key = _cell_key(horizon, cell)
            ensemble_state[key] = {
                "weight": state.weight,
                "asleep": state.asleep,
                "sleep_span": state.sleep_span,
                "sleep_remaining": state.sleep_remaining,
                "just_recovered": state.just_recovered,
            }
            predictor = state.predictor
            if isinstance(predictor, GaussianProcessPredictor):
                log_params = predictor._log_params
                if log_params is not None:
                    arrays[f"gp_{key}"] = np.asarray(log_params)
    meta["ensemble_state"] = ensemble_state
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_snapshot(path) -> SmilerSnapshot:
    """Parse an archive written by :func:`save_smiler` — no index build."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {meta.get('format_version')!r}"
            )
        series = np.asarray(archive["series"], dtype=np.float64)
        gp_params = {
            name[len("gp_") :]: np.asarray(archive[name])
            for name in archive.files
            if name.startswith("gp_")
        }

    cfg = meta["config"]
    config = SMiLerConfig(
        elv=tuple(cfg["elv"]),
        ekv=tuple(cfg["ekv"]),
        rho=cfg["rho"],
        omega=cfg["omega"],
        horizons=tuple(cfg["horizons"]),
        predictor=cfg["predictor"],
        ensemble=cfg["ensemble"],
        self_adaptive=cfg["self_adaptive"],
        sleep_enabled=cfg["sleep_enabled"],
        initial_train_iters=cfg["initial_train_iters"],
        online_train_iters=cfg["online_train_iters"],
        single_k=cfg["single_k"],
        single_d=cfg["single_d"],
    )
    return SmilerSnapshot(
        sensor_id=meta["sensor_id"],
        config=config,
        series=series,
        ensemble_state=meta["ensemble_state"],
        gp_params=gp_params,
        path=path,
    )


def build_smiler(
    snapshot: SmilerSnapshot, backend: ComputeBackend | None = None
) -> SMiLer:
    """Rebuild a SMiLer from a parsed snapshot on the given backend."""
    config = snapshot.config
    smiler = SMiLer(
        snapshot.series, config, backend=backend, sensor_id=snapshot.sensor_id
    )
    for horizon in config.horizons:
        ensemble = smiler.ensemble(horizon)
        for cell in ensemble.cells:
            key = _cell_key(horizon, cell)
            saved = snapshot.ensemble_state.get(key)
            if saved is None:
                continue
            state = ensemble.state(cell)
            state.weight = float(saved["weight"])
            state.asleep = bool(saved["asleep"])
            state.sleep_span = int(saved["sleep_span"])
            state.sleep_remaining = int(saved["sleep_remaining"])
            state.just_recovered = bool(saved["just_recovered"])
            if key in snapshot.gp_params and isinstance(
                state.predictor, GaussianProcessPredictor
            ):
                state.predictor._log_params = snapshot.gp_params[key]
    return smiler


def load_smiler(path, backend: ComputeBackend | None = None) -> SMiLer:
    """Restore a SMiLer instance saved by :func:`save_smiler`."""
    return build_smiler(load_snapshot(path), backend=backend)
