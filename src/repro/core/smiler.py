"""The SMiLer system: search step + prediction step + auto-tuning (Fig. 3).

One :class:`SMiLer` instance serves one sensor:

1. **Search step** — the Continuous Suffix kNN Search engine retrieves,
   for every item length in the ELV, the ``k_max`` nearest historical
   segments of the sensor's own stream (Section 4).
2. **Prediction step** — the ensemble matrix of semi-lazy predictors
   (AR or query-dependent GP) turns each cell's ``(k, d)`` slice of the
   kNN data into a Gaussian prediction, mixes them by the auto-tuned
   weights, and self-adapts once the true value arrives (Section 5).

:class:`SensorFleet` scales the same machinery to many sensors sharing
one (simulated) GPU, including the device-memory accounting behind
Fig. 12(c).
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..backend.base import ComputeBackend, as_backend
from ..index.suffix_search import SuffixKnnAnswer, SuffixKnnEngine, SuffixSearchConfig
from ..index.window_index import WindowLevelIndex
from ..obs import hooks as obs
from .ar import AggregationPredictor
from .config import SMiLerConfig
from .ensemble import AdaptiveEnsemble, Cell, EnsembleOutput
from .gp_predictor import GaussianProcessPredictor
from .predictor import GaussianPrediction, SemiLazyPredictor

__all__ = ["SMiLer", "SensorFleet"]

logger = logging.getLogger(__name__)


def _make_predictor(config: SMiLerConfig) -> "SemiLazyPredictor":
    if config.predictor == "ar":
        return AggregationPredictor()
    return GaussianProcessPredictor(
        initial_train_iters=config.initial_train_iters,
        online_train_iters=config.online_train_iters,
    )


@dataclass
class _PendingUpdate:
    """A prediction awaiting its true value (auto-tuning is delayed by h)."""

    due_index: int
    components: dict[Cell, GaussianPrediction]


class SMiLer:
    """Semi-lazy time series prediction for one sensor."""

    def __init__(
        self,
        history: np.ndarray,
        config: SMiLerConfig | None = None,
        backend: ComputeBackend | None = None,
        sensor_id: str = "sensor-0",
    ) -> None:
        self.config = config or SMiLerConfig()
        self.sensor_id = sensor_id
        self.backend = as_backend(backend)
        history = np.asarray(history, dtype=np.float64)
        self.engine = SuffixKnnEngine(
            history, self._search_config(), backend=self.backend
        )

        self._ensembles: dict[int, AdaptiveEnsemble] = {
            h: AdaptiveEnsemble(
                cells=self.config.grid,
                predictor_factory=lambda cell: _make_predictor(self.config),
                self_adaptive=self.config.self_adaptive,
                sleep_enabled=self.config.sleep_enabled,
            )
            for h in self.config.horizons
        }
        self._pending: dict[int, deque[_PendingUpdate]] = {
            h: deque() for h in self.config.horizons
        }
        # Index of the next unobserved point.
        self._now = history.size
        self._answers: dict[int, SuffixKnnAnswer] | None = None
        self._answers_at = -1

    def _search_config(self) -> SuffixSearchConfig:
        return SuffixSearchConfig(
            item_lengths=self.config.effective_elv(),
            k_max=self.config.k_max,
            omega=self.config.omega,
            rho=self.config.rho,
            margin=self.config.margin,
            reuse_threshold=self.config.reuse_threshold,
            cascade=self.config.cascade,
            lb_kim=self.config.lb_kim,
            lb_improved=self.config.lb_improved,
            early_abandon=self.config.early_abandon,
            reuse_envelopes=self.config.reuse_envelopes,
        )

    # ---------------------------------------------------------------- state
    @property
    def now(self) -> int:
        """Index of the next unobserved point of this sensor's stream."""
        return self._now

    @property
    def series(self) -> np.ndarray:
        """Current series contents (read-only view)."""
        return self.engine.series

    def ensemble(self, horizon: int) -> AdaptiveEnsemble:
        """The adaptive ensemble serving one horizon."""
        return self._ensembles[horizon]

    def _current_answers(self) -> dict[int, SuffixKnnAnswer]:
        if self._answers is None or self._answers_at != self._now:
            self._answers = self.engine.search()
            self._answers_at = self._now
        return self._answers

    # -------------------------------------------------------------- predict
    def _cell_inputs(
        self, answers: dict[int, SuffixKnnAnswer], horizon: int, cells: list[Cell]
    ) -> dict[Cell, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        series = self.engine.series
        inputs = {}
        segment_views = {
            d: sliding_window_view(series, d) for d in {d for _, d in cells}
        }
        for cell in cells:
            k, d = cell
            starts, _ = answers[d].top(k)
            neighbours = segment_views[d][starts]
            targets = series[starts + d - 1 + horizon]
            inputs[cell] = (self.engine.item_query(d), neighbours, targets)
        return inputs

    def predict(self, horizon: int | None = None) -> dict[int, EnsembleOutput]:
        """Gaussian predictions for the configured horizons.

        Each call reuses the current step's kNN answers across all
        horizons and ensemble cells (the ensemble's whole point: one
        Suffix kNN Search serves the entire matrix).
        """
        horizons = self.config.horizons if horizon is None else (horizon,)
        unknown = [h for h in horizons if h not in self._ensembles]
        if unknown:
            raise KeyError(
                f"horizons {unknown} not configured; available: "
                f"{self.config.horizons}"
            )
        with obs.span("predict", self.backend) as sp:
            if sp is not None:
                sp.attrs["sensor_id"] = self.sensor_id
            answers = self._current_answers()
            outputs: dict[int, EnsembleOutput] = {}
            for h in horizons:
                ensemble = self._ensembles[h]
                inputs = self._cell_inputs(answers, h, ensemble.awake_cells())
                with obs.span("ensemble_mix", self.backend) as esp:
                    if esp is not None:
                        esp.attrs["horizon"] = h
                    output = ensemble.predict(inputs)
                outputs[h] = output
                self._remember(h, output)
        return outputs

    def predict_reduced(self, horizon: int) -> GaussianPrediction:
        """Cheapest single-cell prediction: the smallest ``(k, d)`` cell
        through an :class:`AggregationPredictor`.

        The serving layer's degradation ladder uses this as the rung below
        the full ensemble: when the current step's kNN answers are already
        cached (the common case after an ingest) it touches the backend
        not at all, and it never trains a GP.  The ensemble's adaptive
        state is untouched — reduced predictions are not auto-tuned.
        """
        if horizon not in self._ensembles:
            raise KeyError(
                f"horizon {horizon} not configured; available: "
                f"{self.config.horizons}"
            )
        answers = self._current_answers()
        cell = min(self.config.grid)
        inputs = self._cell_inputs(answers, horizon, [cell])
        return AggregationPredictor().predict(*inputs[cell])

    def rebind(self, backend: ComputeBackend | None) -> "SMiLer":
        """Move this sensor to another backend: rebuild the search index
        from the accrued history, keep every ensemble's adaptive state.

        The index is a deterministic function of the series and
        configuration, so rebuilding (one vectorised pass) is the whole
        migration; auto-tuned weights, sleep schedules, warm-started GP
        hyperparameters and pending updates all survive untouched.
        Returns ``self`` so failover paths can treat it as a builder.
        """
        backend = as_backend(backend)
        series = np.array(self.engine.series, dtype=np.float64, copy=True)
        # Build the new engine before touching any state, so a failed
        # rebuild (e.g. a fault on the target backend) leaves this sensor
        # consistently bound to its old backend.
        engine = SuffixKnnEngine(series, self._search_config(), backend=backend)
        self.backend = backend
        self.engine = engine
        self._answers = None
        self._answers_at = -1
        return self

    def _remember(self, horizon: int, output: EnsembleOutput) -> None:
        due = self._now - 1 + horizon
        queue = self._pending[horizon]
        if queue and queue[-1].due_index == due:
            queue[-1].components = output.components  # re-predicted this step
            return
        queue.append(_PendingUpdate(due_index=due, components=output.components))

    # -------------------------------------------------------------- observe
    def observe(self, value: float) -> None:
        """Feed the newly revealed true value: auto-tune, then advance."""
        value = float(value)
        arrived = self._now
        for h, queue in self._pending.items():
            while queue and queue[0].due_index < arrived:
                logger.debug(
                    "%s: dropping stale h=%d prediction due at %d (now %d)",
                    self.sensor_id, h, queue[0].due_index, arrived,
                )
                queue.popleft()  # stale (prediction was never scored)
            if queue and queue[0].due_index == arrived:
                update = queue.popleft()
                self._ensembles[h].update(value, update.components)
        # Host-side append first: the reading is retained even when the
        # follow-up search dies on a sick backend.  A failed search only
        # leaves the kNN answers stale — invalidate them so the next
        # predict (possibly after a rebind) re-searches.
        self.engine.advance(value)
        self._now += 1
        try:
            self._answers = self.engine.search()
            self._answers_at = self._now
        except Exception:
            self._answers = None
            self._answers_at = -1
            raise

    # ------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Device-resident footprint of this sensor's index."""
        return self.engine.window_index.memory_bytes()

    @staticmethod
    def estimate_memory_bytes(
        n_points: int, config: SMiLerConfig | None = None
    ) -> int:
        """Footprint of a sensor with ``n_points`` of history, *without*
        building it — what admission control uses to pick a backend before
        paying for index construction.  Exact for a freshly built sensor.
        """
        config = config or SMiLerConfig()
        return WindowLevelIndex.estimate_memory_bytes(
            n_points, max(config.effective_elv()), config.omega
        )

    # --------------------------------------------------------- diagnostics
    def diagnostics(self) -> dict:
        """Operational snapshot: weights, sleepers, reuse and cost counters.

        Everything an operator dashboard needs to see *why* the system
        predicts what it predicts — which (k, d) cells the auto-tuner
        trusts, who is asleep, and what the search layer is reusing.
        """
        wi = self.engine.window_index
        per_horizon = {}
        for horizon, ensemble in self._ensembles.items():
            per_horizon[horizon] = {
                "weights": dict(ensemble.weights()),
                "asleep": [
                    cell for cell in ensemble.cells
                    if ensemble.state(cell).asleep
                ],
                "updates": ensemble.updates,
            }
        return {
            "sensor_id": self.sensor_id,
            "now": self._now,
            "series_length": wi.series_length,
            "memory_bytes": self.memory_bytes(),
            "device_sim_seconds": self.backend.elapsed_s,
            "index_reuse": {
                "rows_built_full": wi.rows_built_full,
                "rows_recomputed_lbeq": wi.rows_recomputed_lbeq,
                "rows_reused": wi.rows_reused,
            },
            "horizons": per_horizon,
        }


class SensorFleet:
    """Many sensors, one device — the scale-out mode of Section 4.4.

    Construction allocates each sensor's index in the device's global
    memory, so exceeding the GPU's capacity raises
    :class:`repro.gpu.GpuMemoryError` exactly as Fig. 12(c) measures.
    """

    def __init__(
        self,
        histories: list[np.ndarray],
        config: SMiLerConfig | None = None,
        backend: ComputeBackend | None = None,
    ) -> None:
        if not histories:
            raise ValueError("a fleet needs at least one sensor")
        self.config = config or SMiLerConfig()
        self.backend = as_backend(backend)
        self.sensors: list[SMiLer] = []
        for i, history in enumerate(histories):
            sensor = SMiLer(
                history, self.config, backend=self.backend,
                sensor_id=f"sensor-{i}",
            )
            self.backend.malloc(sensor.memory_bytes(), label=sensor.sensor_id)
            self.sensors.append(sensor)

    def __len__(self) -> int:
        return len(self.sensors)

    def predict_all(
        self, horizon: int | None = None
    ) -> list[dict[int, EnsembleOutput]]:
        """Predictions for every sensor (Fig. 3's parallel predictors)."""
        return [sensor.predict(horizon) for sensor in self.sensors]

    def observe_all(self, values) -> None:
        """Feed each sensor its newly revealed true value."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size != len(self.sensors):
            raise ValueError(
                f"{values.size} values for {len(self.sensors)} sensors"
            )
        for sensor, value in zip(self.sensors, values):
            sensor.observe(float(value))

    def memory_bytes(self) -> int:
        """Device-resident footprint in bytes."""
        return sum(sensor.memory_bytes() for sensor in self.sensors)
