"""Adaptive auto-tuning ensemble (Sections 3.2.2 and 5.1).

One :class:`AdaptiveEnsemble` manages the ensemble matrix ``lambda`` for
one sensor and one horizon:

* **weights** (Section 5.1.1) — after the true value ``y(t)`` arrives,
  each awake predictor's weight moves by its normalised predictive
  likelihood (Eqns. 6-9), an exponential smoothing of the predictor's
  posterior probability,
* **sleep & recovery** (Section 5.1.2) — predictors whose weight falls
  below ``eta = 1 / (2 n m)`` sleep for ``sigma`` steps (doubling on an
  immediate re-sleep after recovery, halving per surviving step), and
  recovered predictors re-enter at weight ``eta``.

The ensemble is agnostic to what the predictors are: a factory builds
one :class:`~repro.core.predictor.SemiLazyPredictor` per matrix cell.
The combined output is the moment-matched Gaussian of the weighted
mixture (Eqn. 3).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .predictor import GaussianPrediction, SemiLazyPredictor

__all__ = ["Cell", "CellState", "AdaptiveEnsemble", "EnsembleOutput"]

logger = logging.getLogger(__name__)

#: A matrix cell: (k_i, d_j) — neighbour count and segment length.
Cell = tuple[int, int]


@dataclass
class CellState:
    """Book-keeping for one predictor ``f_{i,j}``."""

    predictor: SemiLazyPredictor
    weight: float
    asleep: bool = False
    sleep_span: int = 1       # sigma_{i,j}: how long the next sleep lasts
    sleep_remaining: int = 0
    just_recovered: bool = False


@dataclass
class EnsembleOutput:
    """Mixture prediction plus the per-cell components (for auto-tuning)."""

    mean: float
    variance: float
    components: dict[Cell, GaussianPrediction]
    weights: dict[Cell, float]


class AdaptiveEnsemble:
    """The ensemble matrix ``lambda`` with self-adaptive weights."""

    def __init__(
        self,
        cells: list[Cell],
        predictor_factory: Callable[[Cell], SemiLazyPredictor],
        self_adaptive: bool = True,
        sleep_enabled: bool = True,
    ) -> None:
        if not cells:
            raise ValueError("the ensemble matrix must have at least one cell")
        if len(set(cells)) != len(cells):
            raise ValueError(f"duplicate cells in the ensemble matrix: {cells}")
        uniform = 1.0 / len(cells)
        self._states = {
            cell: CellState(predictor=predictor_factory(cell), weight=uniform)
            for cell in cells
        }
        self.self_adaptive = self_adaptive
        self.sleep_enabled = sleep_enabled and self_adaptive and len(cells) > 1
        #: eta of Section 5.1.2 (n*m is the matrix size).
        self.eta = 1.0 / (2.0 * len(cells))
        self.updates = 0

    # ---------------------------------------------------------------- views
    @property
    def cells(self) -> list[Cell]:
        """All matrix cells in creation order."""
        return list(self._states)

    def awake_cells(self) -> list[Cell]:
        """Cells that must be evaluated this step (sleepers cost nothing)."""
        return [cell for cell, st in self._states.items() if not st.asleep]

    def weights(self) -> dict[Cell, float]:
        """Current normalised weights of the awake cells."""
        return {
            cell: st.weight for cell, st in self._states.items() if not st.asleep
        }

    def state(self, cell: Cell) -> CellState:
        """Mutable book-keeping record of one cell."""
        return self._states[cell]

    # -------------------------------------------------------------- predict
    def predict(
        self, inputs: dict[Cell, tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> EnsembleOutput:
        """Mixture prediction from per-cell ``(query, X_{k,d}, Y_h)`` data.

        ``inputs`` must cover every awake cell.  The output Gaussian
        moment-matches the weighted mixture: its mean is the weighted mean
        and its variance includes the between-component spread.
        """
        awake = self.awake_cells()
        missing = [cell for cell in awake if cell not in inputs]
        if missing:
            raise KeyError(f"missing kNN inputs for awake cells: {missing}")
        components: dict[Cell, GaussianPrediction] = {}
        for cell in awake:
            query, neighbours, targets = inputs[cell]
            components[cell] = self._states[cell].predictor.predict(
                query, neighbours, targets
            )
        weights = self.weights()
        total = sum(weights.values())
        norm = {cell: w / total for cell, w in weights.items()}
        mean = sum(norm[c] * components[c].mean for c in awake)
        second_moment = sum(
            norm[c] * (components[c].variance + components[c].mean ** 2)
            for c in awake
        )
        variance = max(second_moment - mean**2, 1e-10)
        return EnsembleOutput(
            mean=mean, variance=variance, components=components, weights=norm
        )

    # --------------------------------------------------------------- update
    def update(
        self, true_value: float, components: dict[Cell, GaussianPrediction]
    ) -> None:
        """Auto-tune after observing ``true_value`` (Eqns. 6-9 + Section 5.1.2).

        ``components`` are the per-cell predictions produced for this very
        time step (from :class:`EnsembleOutput.components`).
        """
        self.updates += 1
        if not self.self_adaptive:
            return
        awake = [cell for cell in self.awake_cells() if cell in components]
        if awake:
            # Normalised likelihoods via a softmax over log densities —
            # identical to l / sum(l) of Eqn. 8 but immune to underflow.
            log_dens = np.array(
                [components[c].log_density(true_value) for c in awake]
            )
            shifted = np.exp(log_dens - log_dens.max())
            norm_lik = shifted / shifted.sum()
            for cell, lik in zip(awake, norm_lik):
                self._states[cell].weight += float(lik)
            self._normalise_awake()

        if self.sleep_enabled:
            just_slept = self._sleep_phase()
            self._recovery_phase(just_slept)

    def _normalise_awake(self) -> None:
        awake = self.awake_cells()
        total = sum(self._states[c].weight for c in awake)
        if total <= 0:
            uniform = 1.0 / len(awake)
            for cell in awake:
                self._states[cell].weight = uniform
            return
        for cell in awake:
            self._states[cell].weight /= total

    def _sleep_phase(self) -> set[Cell]:
        """Put under-performing predictors to sleep; adapt sleep spans.

        Returns the cells that fell asleep *this* step so the recovery
        phase does not tick them immediately (a span of 1 must mean one
        full skipped prediction step).
        """
        going_to_sleep = []
        for cell in self.awake_cells():
            st = self._states[cell]
            if st.weight < self.eta and len(self.awake_cells()) > 1:
                going_to_sleep.append(cell)
            else:
                # Survived a step awake: halve the span towards 1.
                st.sleep_span = max(1, st.sleep_span // 2)
                st.just_recovered = False
        for cell in going_to_sleep:
            st = self._states[cell]
            if st.just_recovered:
                # Fell straight back asleep: the sleep trap — double.
                st.sleep_span *= 2
            st.asleep = True
            st.sleep_remaining = st.sleep_span
            st.just_recovered = False
            st.weight = 0.0
            logger.debug(
                "cell %s falls asleep for %d steps", cell, st.sleep_span
            )
        if going_to_sleep:
            self._normalise_awake()
        return set(going_to_sleep)

    def _recovery_phase(self, just_slept: set[Cell]) -> None:
        """Tick sleepers; recovered ones re-enter at weight ``eta``."""
        recovered = []
        for cell, st in self._states.items():
            if not st.asleep or cell in just_slept:
                continue
            st.sleep_remaining -= 1
            if st.sleep_remaining <= 0:
                recovered.append(cell)
        if not recovered:
            return
        kappa = len(recovered)
        raw = self.eta / max(1.0 - kappa * self.eta, 1e-9)
        for cell in recovered:
            st = self._states[cell]
            st.asleep = False
            st.weight = raw
            st.just_recovered = True
            logger.debug("cell %s wakes at weight %.4f", cell, raw)
        self._normalise_awake()
