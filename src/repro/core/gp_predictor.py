"""Query-dependent Gaussian Process predictor (Section 5.2.2).

The heart of SMiLer-GP: for every prediction request a *fresh* GP is
conditioned on just the kNN data, with hyperparameters trained online by
maximising the leave-one-out predictive likelihood (Eqns. 19-20) with
conjugate gradients.

Two training regimes, exactly as the paper describes:

* **initial** — the first request optimises from a data-driven seed with
  a full CG budget;
* **continuous** — later requests warm-start from the previous step's
  hyperparameters and take a small *fixed* number of CG steps ("the
  energy paid for the training process in previous steps is partially
  preserved").
"""

from __future__ import annotations

import logging

import numpy as np

from ..gp.kernels import SquaredExponentialKernel
from ..gp.loo import loo_objective
from ..gp.optimize import conjugate_gradient_minimize
from ..gp.regression import GaussianProcessRegressor
from ..obs import hooks as obs
from .predictor import GaussianPrediction, SemiLazyPredictor

__all__ = ["GaussianProcessPredictor"]

logger = logging.getLogger(__name__)

#: Soft box for log-hyperparameters.  LOO likelihood is flat along the
#: ridge theta0, theta1 -> inf (the SE kernel's linear limit) where the
#: predictive variance is pure cancellation noise; on z-normalised sensor
#: data |log theta| <= 6 (theta in [2.5e-3, 403]) is generous.
_LOG_BOUND = 6.0
_PENALTY = 10.0


def _penalised_objective(
    log_params: np.ndarray, neighbours: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Negative LOO likelihood plus a quadratic pull-back into the box."""
    value, grad = loo_objective(np.clip(log_params, -12, 12), neighbours, targets)
    excess = np.clip(np.abs(log_params) - _LOG_BOUND, 0.0, None)
    value += _PENALTY * float(np.sum(excess**2))
    grad = grad + 2.0 * _PENALTY * excess * np.sign(log_params)
    return value, grad


def _seed_kernel(neighbours: np.ndarray, targets: np.ndarray) -> SquaredExponentialKernel:
    """Data-driven starting hyperparameters.

    Signal amplitude from the target spread, length-scale from the median
    neighbour distance, noise an order below the signal.
    """
    signal = float(np.std(targets))
    signal = signal if signal > 1e-6 else 1.0
    diffs = neighbours - neighbours.mean(axis=0, keepdims=True)
    scale = float(np.sqrt(np.mean(np.sum(diffs**2, axis=1))))
    scale = scale if scale > 1e-6 else 1.0
    return SquaredExponentialKernel(
        theta0=signal, theta1=scale, theta2=max(0.1 * signal, 1e-3)
    )


class GaussianProcessPredictor(SemiLazyPredictor):
    """Exact GP on the kNN data with online LOO-CG hyperparameter training."""

    def __init__(
        self,
        initial_train_iters: int = 25,
        online_train_iters: int = 5,
    ) -> None:
        if initial_train_iters < 0 or online_train_iters < 0:
            raise ValueError("training iteration counts must be non-negative")
        self.initial_train_iters = initial_train_iters
        self.online_train_iters = online_train_iters
        self._log_params: np.ndarray | None = None
        self.train_calls = 0
        self.cg_iterations = 0

    @property
    def kernel(self) -> SquaredExponentialKernel | None:
        """Current hyperparameters (None before the first prediction)."""
        if self._log_params is None:
            return None
        return SquaredExponentialKernel.from_log_params(self._log_params)

    def _train(self, neighbours: np.ndarray, targets: np.ndarray) -> SquaredExponentialKernel:
        if self._log_params is None:
            start = _seed_kernel(neighbours, targets).log_params
            budget = self.initial_train_iters
        else:
            start = self._log_params
            budget = self.online_train_iters
        if budget > 0:
            result = conjugate_gradient_minimize(
                lambda lp: _penalised_objective(lp, neighbours, targets),
                start,
                max_iters=budget,
            )
            self.cg_iterations += result.iterations
            obs.observe_gp_training(result.iterations, result.converged)
            if not result.converged:
                logger.debug(
                    "GP LOO-CG training stopped without convergence after "
                    "%d/%d iterations (objective %.6g)",
                    result.iterations, budget, result.value,
                )
            start = result.x
        self._log_params = np.clip(np.asarray(start), -_LOG_BOUND, _LOG_BOUND)
        self.train_calls += 1
        return SquaredExponentialKernel.from_log_params(self._log_params)

    def predict(
        self, query: np.ndarray, neighbours: np.ndarray, targets: np.ndarray
    ) -> GaussianPrediction:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        query, neighbours, targets = self._validate(query, neighbours, targets)
        if neighbours.shape[0] < 2:
            # A one-point GP posterior is degenerate; fall back to the
            # neighbour's target with prior-scale uncertainty.
            return GaussianPrediction(float(targets[0]), 1.0)
        # Centre the targets: the zero-mean prior of Appendix B.3 is right
        # for the *local* residual, not the raw values — without this the
        # posterior shrinks towards 0 whenever the kernel correlation is
        # weak (long horizons), losing to plain aggregation.
        target_mean = float(targets.mean())
        centred = targets - target_mean
        with obs.span("gp_fit") as sp:
            if sp is not None:
                sp.attrs["k"] = int(neighbours.shape[0])
                sp.attrs["d"] = int(neighbours.shape[1])
            kernel = self._train(neighbours, centred)
            gp = GaussianProcessRegressor(kernel).fit(neighbours, centred)
        mean, var = gp.predict(query[None, :], include_noise=True)
        mean = mean + target_mean
        if not np.isfinite(mean[0]) or not np.isfinite(var[0]):
            # Pathological conditioning: degrade gracefully to aggregation.
            mean_value = float(targets.mean())
            var_value = float(np.var(targets)) + 1e-6
            return GaussianPrediction(mean_value, var_value)
        return GaussianPrediction(float(mean[0]), float(max(var[0], 1e-10)))

    def reset(self) -> None:
        """Forget the warm-started hyperparameters (fresh sensor)."""
        self._log_params = None
