"""(Continuous) Suffix kNN Search (Definition 4.1, Section 4.3.3).

The :class:`SuffixKnnEngine` glues the two index levels to the
filter → verify → select pipeline.  Filtering is a **tiered pruning
cascade** in the UCR-suite mold, cheapest bound first, each tier only
touching survivors of the previous one:

* **tier 0 — LB_Kim**: the O(1) first/last-point bound (two series
  touches per candidate, vectorised over all candidates),
* **tier 1 — LB_w**: the group-level window-enhanced envelope bound the
  SMiLer index precomputed (free at query time),
* **tier 2 — LB_Improved**: Lemire's two-pass bound (arxiv 0811.3301),
  batched across surviving candidates; its pass-1 per-position terms are
  kept as admissible tails for the next tier,
* **tier 3 — early-abandoning DTW**: the verification kernel abandons a
  candidate mid-DP once its partial path cost plus the remaining
  LB_Improved tail exceeds the threshold.

Every tier prunes against the same threshold ``tau_i`` and every bound
is ``<= DTW`` (admissible), so the cascade is **exact**: the answer set
is bit-identical to a full-DTW reference scan (pinned by the
differential tests against
:func:`repro.index.reference.suffix_knn_reference`).

Threshold seeding: initial queries seed ``tau_i`` from a pool of
candidates with the smallest lower bounds; continuous queries reuse the
previous step's kNN segments (Section 4.3.3).  The pool is verified and
``tau_i`` is its k-th smallest *true* DTW — a provable upper bound on
the true k-th NN distance (the pool is a subset of all candidates), so
the search stays exact.  Two refinements over the paper's wording: the
pool holds a few multiples of k (a single smallest-LB candidate can have
a large true distance, which would disable filtering), and we use the
pool's k-th smallest DTW rather than the DTW of the k-th-by-LB candidate
(which can *under*-estimate the k-th NN distance on adversarial data and
lose exactness).

`step()` advances one continuous-prediction tick: the observed point is
appended, the window level is ring-updated (Remark 1), the per-item
query envelopes are slid in O(rho) instead of recomputed, and the search
repeats with threshold reuse.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..backend.base import ComputeBackend, as_backend
from ..dtw.envelope import Envelope, compute_envelope, envelope_shift
from ..dtw.lower_bounds import lb_improved_profile, lb_kim_profile
from ..gpu.kernels import OPS_PER_LB_TERM, THREADS_PER_BLOCK
from ..obs import hooks as obs
from .group_index import GroupLevelIndex, ItemLowerBounds
from .window_index import WindowLevelIndex

__all__ = ["SuffixSearchConfig", "SuffixKnnEngine", "SuffixKnnAnswer"]

logger = logging.getLogger(__name__)

#: Slack added to the filtering threshold so float rounding in a lower
#: bound can never prune a candidate sitting exactly at ``tau``.
_FILTER_SLACK = 1e-12


@dataclass(frozen=True)
class SuffixSearchConfig:
    """Search-step parameters (paper defaults from Table 2)."""

    item_lengths: tuple[int, ...] = (32, 64, 96)
    k_max: int = 32
    omega: int = 16
    rho: int = 8
    margin: int = 1
    lb_mode: str = "en"
    reuse_threshold: bool = True
    #: Run the full pruning cascade (LB_Kim → LB_w → LB_Improved →
    #: early-abandoning DTW).  ``False`` falls back to the single LB_w
    #: filter pass with unpruned verification — same answers, more work —
    #: kept as the measurable pre-cascade baseline for
    #: ``benchmarks/bench_search.py``.
    cascade: bool = True
    #: Per-tier switches within the cascade, for ablation studies
    #: (``repro.ablation``).  Every tier is independently admissible, so
    #: disabling any subset keeps the search exact — just slower.
    #: ``lb_kim`` gates tier 0, ``lb_improved`` gates tier 2 and
    #: ``early_abandon`` gates the mid-DP abandoning of tier 3 (the LB_w
    #: tier is the index itself and cannot be disabled).  All ignored
    #: when ``cascade`` is ``False``.
    lb_kim: bool = True
    lb_improved: bool = True
    early_abandon: bool = True
    #: Reuse the per-item query envelopes across continuous steps by
    #: sliding them in O(rho) (``False`` recomputes each envelope from
    #: scratch on every search — same values, more work; the measurable
    #: envelope-reuse ablation baseline).
    reuse_envelopes: bool = True

    def __post_init__(self) -> None:
        if self.k_max <= 0:
            raise ValueError(f"k_max must be positive, got {self.k_max}")
        if self.margin < 1:
            raise ValueError(
                f"margin must be at least 1 (the h-step target of a "
                f"candidate must lie strictly in the past), got {self.margin}"
            )
        if self.lb_mode not in ("en", "eq", "ec"):
            raise ValueError(f"unknown lb_mode {self.lb_mode!r}")

    @property
    def master_length(self) -> int:
        """Length of the master query (the longest item query)."""
        return max(self.item_lengths)


@dataclass
class SuffixKnnAnswer:
    """kNN answer for one item query plus pipeline accounting.

    ``candidates_unfiltered`` counts candidates that survived every
    lower-bound tier; ``candidates_verified`` counts candidates whose
    true DTW was actually computed — the threshold seeds are verified
    even when their bound later exceeds ``tau``, so verified can exceed
    unfiltered (this distinction is the fixed accounting the bench
    relies on).  ``pruned_kim``/``pruned_window``/``pruned_improved``
    count per-tier kills; ``abandoned_early`` counts candidates the DTW
    kernel dropped mid-DP.  ``verification_sim_s`` is the simulated
    seconds of threshold seeding + filtering + verification only;
    k-selection is attributed separately to ``selection_sim_s``.
    """

    item_length: int
    starts: np.ndarray
    distances: np.ndarray
    candidates_total: int = 0
    candidates_unfiltered: int = 0
    candidates_verified: int = 0
    pruned_kim: int = 0
    pruned_window: int = 0
    pruned_improved: int = 0
    abandoned_early: int = 0
    verification_sim_s: float = 0.0
    selection_sim_s: float = 0.0

    def top(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest of the stored (k_max-sized) answer."""
        return self.starts[:k], self.distances[:k]


class SuffixKnnEngine:
    """Continuous Suffix kNN Search over one sensor's history."""

    def __init__(
        self,
        series_values: np.ndarray,
        config: SuffixSearchConfig | None = None,
        backend: ComputeBackend | None = None,
        master_query: np.ndarray | None = None,
    ) -> None:
        self.config = config or SuffixSearchConfig()
        self.backend = as_backend(backend)
        series_values = np.asarray(series_values, dtype=np.float64)
        if master_query is None:
            master_query = series_values[-self.config.master_length :]
        master_query = np.asarray(master_query, dtype=np.float64)

        self.window_index = WindowLevelIndex(
            series_values,
            master_length=self.config.master_length,
            omega=self.config.omega,
            rho=self.config.rho,
            backend=self.backend,
        )
        self.group_index = GroupLevelIndex(
            self.window_index, self.config.item_lengths, backend=self.backend
        )
        self.window_index.build(master_query)
        self._master_query = master_query.copy()
        self._previous_knn: dict[int, np.ndarray] = {}
        # Item-query envelopes, slid (not recomputed) across continuous
        # steps; keyed by item length, built lazily on first search.
        self._query_envs: dict[int, Envelope] = {}

    # ---------------------------------------------------------------- state
    @property
    def series(self) -> np.ndarray:
        """Current series contents (read-only view)."""
        return self.window_index.series

    @property
    def master_query(self) -> np.ndarray:
        """Current master query values."""
        return self._master_query

    def item_query(self, d: int) -> np.ndarray:
        """``IQ_i``: the d-length suffix of the master query."""
        return self._master_query[self._master_query.size - d :]

    def _query_envelope(self, d: int) -> Envelope:
        """Envelope of ``IQ_d``, reused across continuous steps."""
        if not self.config.reuse_envelopes:
            return compute_envelope(self.item_query(d), self.config.rho)
        env = self._query_envs.get(d)
        if env is None:
            env = compute_envelope(self.item_query(d), self.config.rho)
            self._query_envs[d] = env
        return env

    # --------------------------------------------------------------- search
    def search(self) -> dict[int, SuffixKnnAnswer]:
        """Run the Suffix kNN Search for every item query."""
        with obs.span("search", self.backend):
            with obs.span("lower_bounds", self.backend):
                bounds = self.group_index.compute()
            return {
                d: self._search_one(d, bounds[d])
                for d in self.config.item_lengths
            }

    def advance(self, new_point: float) -> None:
        """Append one new point and slide the master query (host-side
        only — no backend work, so it cannot fail on a sick device)."""
        self.window_index.step(new_point)
        self._master_query = np.concatenate(
            [self._master_query[1:], [float(new_point)]]
        )
        # Slide the cached item-query envelopes along with the query:
        # the new IQ_d drops the oldest point and appends the newest, so
        # only O(rho) envelope positions change.
        for d, env in self._query_envs.items():
            self._query_envs[d] = envelope_shift(self.item_query(d), env)

    def step(self, new_point: float) -> dict[int, SuffixKnnAnswer]:
        """Advance one continuous tick, then search with reuse."""
        self.advance(new_point)
        return self.search()

    # -------------------------------------------------------------- helpers
    def _candidate_mask(self, d: int) -> np.ndarray:
        """Valid starts: the h-step target must already be observed."""
        n = self.window_index.series_length
        n_starts = n - d + 1
        mask = np.zeros(n_starts, dtype=bool)
        last_valid = n - d - self.config.margin
        if last_valid >= 0:
            mask[: last_valid + 1] = True
        return mask

    def _seed_threshold(
        self,
        d: int,
        k: int,
        starts: np.ndarray,
        bound: np.ndarray,
        segments: np.ndarray,
        query: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Verified seed pool and the threshold ``tau_i`` (its k-th DTW)."""
        cfg = self.config
        prev = self._previous_knn.get(d)
        if cfg.reuse_threshold and prev is not None:
            # Previous kNN segments are near-optimal for the barely-moved
            # query; their k-th smallest current DTW is a tight threshold.
            seed_starts = prev[(prev >= starts[0]) & (prev <= starts[-1])]
            if seed_starts.size < k:
                extra = starts[np.argsort(bound, kind="stable")[:k]]
                seed_starts = np.union1d(seed_starts, extra)
        else:
            logger.debug(
                "item d=%d: no previous kNN to reuse; seeding tau from "
                "the smallest-LB pool", d,
            )
            pool = min(max(4 * k, 64), starts.size)
            seed_starts = starts[np.argpartition(bound, pool - 1)[:pool]]
        seed_distances = self.backend.dtw_verification(
            query, segments[seed_starts], cfg.rho
        )
        tau = float(np.partition(seed_distances, k - 1)[k - 1])
        return seed_starts, seed_distances, tau

    def _search_one(self, d: int, lbs: ItemLowerBounds) -> SuffixKnnAnswer:
        cfg = self.config
        series = self.window_index.series
        query = self.item_query(d)
        mask = self._candidate_mask(d)
        starts = np.flatnonzero(mask)
        if starts.size == 0:
            raise ValueError(
                f"no candidates for item length {d}: series too short"
            )
        k = min(cfg.k_max, starts.size)
        bound = lbs.bound(cfg.lb_mode)[starts]
        segments = sliding_window_view(series, d)

        before = self.backend.elapsed_s
        pruned_kim = pruned_window = pruned_improved = 0

        with obs.span("dtw_refine", self.backend) as sp:
            seed_starts, seed_distances, tau = self._seed_threshold(
                d, k, starts, bound, segments, query
            )
            gate = tau + _FILTER_SLACK

            # --- filtering cascade -------------------------------------------
            if cfg.cascade:
                survivors = starts
                surviving_bound = bound
                if cfg.lb_kim:
                    # Tier 0: LB_Kim — two series touches per candidate.
                    kim = lb_kim_profile(query, series, starts)
                    keep = kim <= gate
                    survivors = starts[keep]
                    surviving_bound = bound[keep]
                    pruned_kim = int(starts.size - survivors.size)
                    self.backend.launch(
                        "search_lb_kim",
                        n_blocks=-(-starts.size // THREADS_PER_BLOCK),
                        ops_per_thread=2 * OPS_PER_LB_TERM,
                        threads_per_block=THREADS_PER_BLOCK,
                    )
                # Tier 1: the precomputed window/group envelope bound.
                keep = surviving_bound <= gate
                pruned_window = int(survivors.size - keep.sum())
                survivors = survivors[keep]
                if cfg.lb_improved:
                    # Tier 2: LB_Improved on what's left (two batched
                    # passes; pass-1 terms double as the early-abandon
                    # tails below).
                    lbi, lbi_terms = lb_improved_profile(
                        query,
                        segments[survivors],
                        cfg.rho,
                        query_envelope=self._query_envelope(d),
                        return_terms=True,
                    )
                    self.backend.launch(
                        "search_lb_improved",
                        n_blocks=-(
                            -max(survivors.size, 1) // THREADS_PER_BLOCK
                        ),
                        ops_per_thread=3 * d * OPS_PER_LB_TERM,
                        threads_per_block=THREADS_PER_BLOCK,
                    )
                    keep = lbi <= gate
                    pruned_improved = int(survivors.size - keep.sum())
                    unfiltered = survivors[keep]
                    unfiltered_terms = lbi_terms[keep]
                else:
                    unfiltered = survivors
                    unfiltered_terms = None
            else:
                unfiltered = starts[bound <= gate]
                unfiltered_terms = None

            # Seeds are already verified; drop them from the batch (the
            # mask keeps the LB tails aligned with the surviving rows).
            novel = ~np.isin(unfiltered, seed_starts)
            to_verify = unfiltered[novel]

            # --- verification (tier 3: early-abandoning DTW) -----------------
            if cfg.cascade and cfg.early_abandon:
                distances = self.backend.dtw_verification(
                    query,
                    segments[to_verify],
                    cfg.rho,
                    cutoff=tau,
                    lb_terms=(
                        unfiltered_terms[novel]
                        if unfiltered_terms is not None
                        else None
                    ),
                )
            else:
                distances = self.backend.dtw_verification(
                    query, segments[to_verify], cfg.rho
                )
            abandoned_early = int(np.count_nonzero(~np.isfinite(distances)))
            if sp is not None:
                sp.attrs["item_length"] = d
                sp.attrs["verified"] = int(
                    seed_starts.size + to_verify.size
                )
        # Snapshot the ledger at the span boundary: everything after this
        # point is selection work, not verification work.
        after_verify = self.backend.elapsed_s

        # --- selection -------------------------------------------------------
        # Abandoned candidates (true distance > tau >= d_k) can never be
        # answers; drop their inf markers before selection.  Order the
        # verified pool by start so k-selection's stable tie-breaking
        # resolves equal distances by smallest start — exactly how the
        # reference full scan breaks ties.
        all_starts = np.concatenate([seed_starts, to_verify])
        all_distances = np.concatenate([seed_distances, distances])
        finite = np.isfinite(all_distances)
        all_starts = all_starts[finite]
        all_distances = all_distances[finite]
        order = np.argsort(all_starts, kind="stable")
        all_starts = all_starts[order]
        all_distances = all_distances[order]
        with obs.span("k_select", self.backend):
            top = self.backend.k_select(all_distances, k)
        after_select = self.backend.elapsed_s
        answer_starts = all_starts[top]
        answer_distances = all_distances[top]
        self._previous_knn[d] = answer_starts.copy()
        obs.observe_search(
            d,
            int(starts.size),
            int(unfiltered.size),
            candidates_verified=int(seed_starts.size + to_verify.size),
            pruned_kim=pruned_kim,
            pruned_window=pruned_window,
            pruned_improved=pruned_improved,
            abandoned_early=abandoned_early,
        )

        return SuffixKnnAnswer(
            item_length=d,
            starts=answer_starts,
            distances=answer_distances,
            candidates_total=int(starts.size),
            candidates_unfiltered=int(unfiltered.size),
            candidates_verified=int(seed_starts.size + to_verify.size),
            pruned_kim=pruned_kim,
            pruned_window=pruned_window,
            pruned_improved=pruned_improved,
            abandoned_early=abandoned_early,
            verification_sim_s=after_verify - before,
            selection_sim_s=after_select - after_verify,
        )
