"""(Continuous) Suffix kNN Search (Definition 4.1, Section 4.3.3).

The :class:`SuffixKnnEngine` glues the two index levels to the
filter → verify → select pipeline:

* **Filtering** — drop candidates whose group-level bound exceeds the
  threshold ``tau_i``.  Initial queries seed ``tau_i`` from a pool of
  candidates with the smallest lower bounds; continuous queries reuse
  the previous step's kNN segments (Section 4.3.3).  The pool is
  verified and ``tau_i`` is its k-th smallest *true* DTW — a provable
  upper bound on the true k-th NN distance (the pool is a subset of all
  candidates), so the search stays exact.  Two refinements over the
  paper's wording: the pool holds a few multiples of k (a single
  smallest-LB candidate can have a large true distance, which would
  disable filtering), and we use the pool's k-th smallest DTW rather
  than the DTW of the k-th-by-LB candidate (which can *under*-estimate
  the k-th NN distance on adversarial data and lose exactness).
* **Verification** — banded DTW (compressed-warping-matrix kernel) on
  the unfiltered candidates, batched on the simulated GPU.
* **Selection** — the device k-selection kernel ([3] with the paper's
  two improvements).

`step()` advances one continuous-prediction tick: the observed point is
appended, the window level is ring-updated (Remark 1) and the search
repeats with threshold reuse.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..backend.base import ComputeBackend, as_backend
from ..obs import hooks as obs
from .group_index import GroupLevelIndex, ItemLowerBounds
from .window_index import WindowLevelIndex

__all__ = ["SuffixSearchConfig", "SuffixKnnEngine", "SuffixKnnAnswer"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SuffixSearchConfig:
    """Search-step parameters (paper defaults from Table 2)."""

    item_lengths: tuple[int, ...] = (32, 64, 96)
    k_max: int = 32
    omega: int = 16
    rho: int = 8
    margin: int = 1
    lb_mode: str = "en"
    reuse_threshold: bool = True

    def __post_init__(self) -> None:
        if self.k_max <= 0:
            raise ValueError(f"k_max must be positive, got {self.k_max}")
        if self.margin < 1:
            raise ValueError(
                f"margin must be at least 1 (the h-step target of a "
                f"candidate must lie strictly in the past), got {self.margin}"
            )
        if self.lb_mode not in ("en", "eq", "ec"):
            raise ValueError(f"unknown lb_mode {self.lb_mode!r}")

    @property
    def master_length(self) -> int:
        """Length of the master query (the longest item query)."""
        return max(self.item_lengths)


@dataclass
class SuffixKnnAnswer:
    """kNN answer for one item query plus pipeline accounting."""

    item_length: int
    starts: np.ndarray
    distances: np.ndarray
    candidates_total: int = 0
    candidates_unfiltered: int = 0
    verification_sim_s: float = 0.0

    def top(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest of the stored (k_max-sized) answer."""
        return self.starts[:k], self.distances[:k]


class SuffixKnnEngine:
    """Continuous Suffix kNN Search over one sensor's history."""

    def __init__(
        self,
        series_values: np.ndarray,
        config: SuffixSearchConfig | None = None,
        backend: ComputeBackend | None = None,
        master_query: np.ndarray | None = None,
    ) -> None:
        self.config = config or SuffixSearchConfig()
        self.backend = as_backend(backend)
        series_values = np.asarray(series_values, dtype=np.float64)
        if master_query is None:
            master_query = series_values[-self.config.master_length :]
        master_query = np.asarray(master_query, dtype=np.float64)

        self.window_index = WindowLevelIndex(
            series_values,
            master_length=self.config.master_length,
            omega=self.config.omega,
            rho=self.config.rho,
            backend=self.backend,
        )
        self.group_index = GroupLevelIndex(
            self.window_index, self.config.item_lengths, backend=self.backend
        )
        self.window_index.build(master_query)
        self._master_query = master_query.copy()
        self._previous_knn: dict[int, np.ndarray] = {}

    # ---------------------------------------------------------------- state
    @property
    def series(self) -> np.ndarray:
        """Current series contents (read-only view)."""
        return self.window_index.series

    @property
    def master_query(self) -> np.ndarray:
        """Current master query values."""
        return self._master_query

    def item_query(self, d: int) -> np.ndarray:
        """``IQ_i``: the d-length suffix of the master query."""
        return self._master_query[self._master_query.size - d :]

    # --------------------------------------------------------------- search
    def search(self) -> dict[int, SuffixKnnAnswer]:
        """Run the Suffix kNN Search for every item query."""
        with obs.span("search", self.backend):
            with obs.span("lower_bounds", self.backend):
                bounds = self.group_index.compute()
            return {
                d: self._search_one(d, bounds[d])
                for d in self.config.item_lengths
            }

    def advance(self, new_point: float) -> None:
        """Append one new point and slide the master query (host-side
        only — no backend work, so it cannot fail on a sick device)."""
        self.window_index.step(new_point)
        self._master_query = np.concatenate(
            [self._master_query[1:], [float(new_point)]]
        )

    def step(self, new_point: float) -> dict[int, SuffixKnnAnswer]:
        """Advance one continuous tick, then search with reuse."""
        self.advance(new_point)
        return self.search()

    # -------------------------------------------------------------- helpers
    def _candidate_mask(self, d: int) -> np.ndarray:
        """Valid starts: the h-step target must already be observed."""
        n = self.window_index.series_length
        n_starts = n - d + 1
        mask = np.zeros(n_starts, dtype=bool)
        last_valid = n - d - self.config.margin
        if last_valid >= 0:
            mask[: last_valid + 1] = True
        return mask

    def _search_one(self, d: int, lbs: ItemLowerBounds) -> SuffixKnnAnswer:
        cfg = self.config
        series = self.window_index.series
        query = self.item_query(d)
        mask = self._candidate_mask(d)
        starts = np.flatnonzero(mask)
        if starts.size == 0:
            raise ValueError(
                f"no candidates for item length {d}: series too short"
            )
        k = min(cfg.k_max, starts.size)
        bound = lbs.bound(cfg.lb_mode)[starts]
        segments = sliding_window_view(series, d)

        before = self.backend.elapsed_s

        with obs.span("dtw_refine", self.backend) as sp:
            # --- threshold tau_i ---------------------------------------------
            prev = self._previous_knn.get(d)
            if cfg.reuse_threshold and prev is not None:
                # Previous kNN segments are near-optimal for the barely-moved
                # query; their k-th smallest current DTW is a tight threshold.
                seed_starts = prev[(prev >= starts[0]) & (prev <= starts[-1])]
                if seed_starts.size < k:
                    extra = starts[np.argsort(bound, kind="stable")[:k]]
                    seed_starts = np.union1d(seed_starts, extra)
            else:
                logger.debug(
                    "item d=%d: no previous kNN to reuse; seeding tau from "
                    "the smallest-LB pool", d,
                )
                pool = min(max(4 * k, 64), starts.size)
                seed_starts = starts[np.argpartition(bound, pool - 1)[:pool]]
            seed_distances = self.backend.dtw_verification(
                query, segments[seed_starts], cfg.rho
            )
            tau = float(np.partition(seed_distances, k - 1)[k - 1])

            # --- filtering ---------------------------------------------------
            unfiltered = starts[bound <= tau + 1e-12]
            # Seeds are already verified; drop them from the batch.
            to_verify = np.setdiff1d(
                unfiltered, seed_starts, assume_unique=False
            )

            # --- verification ------------------------------------------------
            distances = self.backend.dtw_verification(
                query, segments[to_verify], cfg.rho
            )
            all_starts = np.concatenate([seed_starts, to_verify])
            all_distances = np.concatenate([seed_distances, distances])
            if sp is not None:
                sp.attrs["item_length"] = d
                sp.attrs["verified"] = int(all_starts.size)

        # --- selection -------------------------------------------------------
        with obs.span("k_select", self.backend):
            top = self.backend.k_select(all_distances, k)
        answer_starts = all_starts[top]
        answer_distances = all_distances[top]
        self._previous_knn[d] = answer_starts.copy()
        obs.observe_search(d, int(starts.size), int(unfiltered.size))

        return SuffixKnnAnswer(
            item_length=d,
            starts=answer_starts,
            distances=answer_distances,
            candidates_total=int(starts.size),
            candidates_unfiltered=int(unfiltered.size),
            verification_sim_s=self.backend.elapsed_s - before,
        )
