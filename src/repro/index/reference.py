"""Literal reference implementation of Algorithm 1 (Appendix D).

A straight transcription of the paper's pseudo-code — one "thread" per
(CSG, DW) pair walking the posting lists in suffix order — used as the
oracle the vectorised :class:`~repro.index.group_index.GroupLevelIndex`
is tested against.  Deliberately slow and deliberately shaped like the
printed algorithm, comments included.
"""

from __future__ import annotations

import numpy as np

from ..timeseries.windows import csg_size
from .group_index import ItemLowerBounds
from .window_index import WindowLevelIndex

__all__ = ["algorithm1_reference"]


def algorithm1_reference(
    window_index: WindowLevelIndex, item_lengths: tuple[int, ...]
) -> dict[int, ItemLowerBounds]:
    """Compute every item query's ``LB_w`` exactly as Algorithm 1 prints it."""
    lengths = tuple(sorted(set(int(d) for d in item_lengths)))
    omega = window_index.omega
    n_dw = window_index.n_dw
    series_len = window_index.series_length
    lbeq_mat, lbec_mat = window_index.posting_matrices()

    results = {
        d: ItemLowerBounds(
            item_length=d,
            lbeq=np.zeros(series_len - d + 1),
            lbec=np.zeros(series_len - d + 1),
            covered=np.zeros(series_len - d + 1, dtype=bool),
        )
        for d in lengths
    }

    # for each CSG_b of master query MQ do              (Algorithm 1, l.1)
    for b in range(omega):
        # for each disjoint window DW_r of C do                       (l.2)
        for r in range(n_dw):
            j = 0          # count window number                      (l.3)
            i = 0          # count item query number                  (l.4)
            d = b + omega  # omega is window length                   (l.5)
            sum_eq = 0.0
            sum_ec = 0.0
            # while i < n do                                          (l.6)
            while i < len(lengths):
                w = b + j * omega
                if w >= window_index.n_sw or r - j < 0:
                    break
                # access window level index                       (l.7-l.8)
                sum_eq += lbeq_mat[w, r - j]
                sum_ec += lbec_mat[w, r - j]
                # if d + omega > |IQ_i| and d <= |IQ_i| then           (l.9)
                while i < len(lengths) and d + omega > lengths[i] >= d:
                    d_i = lengths[i]
                    if csg_size(d_i, b, omega) == j + 1:
                        # t <- (r - j) * omega - (d - b) % omega      (l.10)
                        t = (r - j) * omega - (d_i - b) % omega
                        if 0 <= t <= series_len - d_i:
                            # LB_w <- max{LB_q, LB_c}; store    (l.11-l.12)
                            results[d_i].lbeq[t] = sum_eq
                            results[d_i].lbec[t] = sum_ec
                            results[d_i].covered[t] = True
                    i += 1  # for next item query                     (l.13)
                j += 1
                d += omega  # (l.14)
    return results
