"""Reference oracles the optimised index/search layers are tested against.

* :func:`algorithm1_reference` — a literal transcription of the paper's
  Algorithm 1 pseudo-code (Appendix D), one "thread" per (CSG, DW) pair
  walking the posting lists in suffix order; the oracle the vectorised
  :class:`~repro.index.group_index.GroupLevelIndex` is tested against.
* :func:`suffix_knn_reference` — a full banded-DTW scan over every valid
  candidate start, no filtering of any kind; the oracle the pruning
  cascade in :class:`~repro.index.suffix_search.SuffixKnnEngine` must
  match **bit-identically** (starts and distances).

Both are deliberately slow and deliberately simple.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..dtw.distance import dtw_batch
from ..timeseries.windows import csg_size
from .group_index import ItemLowerBounds
from .window_index import WindowLevelIndex

__all__ = ["algorithm1_reference", "suffix_knn_reference"]


def suffix_knn_reference(
    series: np.ndarray,
    query: np.ndarray,
    k_max: int,
    rho: int,
    margin: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact kNN by full banded DTW over every valid candidate start.

    Candidate-mask semantics match the engine's exactly (a start ``t`` is
    valid when ``t + d + margin <= len(series)``, so the h-step target of
    every answer lies strictly in the past), distances come from the same
    :func:`~repro.dtw.distance.dtw_batch` kernel the backends dispatch,
    and ties resolve by smallest start (stable sort over ascending
    starts) — so a correct cascade must reproduce this answer
    bit-identically, which the differential tests assert.
    """
    series = np.asarray(series, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    d = query.size
    last_valid = series.size - d - margin
    if last_valid < 0:
        raise ValueError(
            f"no candidates for item length {d}: series too short"
        )
    starts = np.arange(last_valid + 1)
    segments = sliding_window_view(series, d)[starts]
    distances = dtw_batch(query, segments, rho)
    k = min(k_max, starts.size)
    order = np.argsort(distances, kind="stable")[:k]
    return starts[order], distances[order]


def algorithm1_reference(
    window_index: WindowLevelIndex, item_lengths: tuple[int, ...]
) -> dict[int, ItemLowerBounds]:
    """Compute every item query's ``LB_w`` exactly as Algorithm 1 prints it."""
    lengths = tuple(sorted(set(int(d) for d in item_lengths)))
    omega = window_index.omega
    n_dw = window_index.n_dw
    series_len = window_index.series_length
    lbeq_mat, lbec_mat = window_index.posting_matrices()

    results = {
        d: ItemLowerBounds(
            item_length=d,
            lbeq=np.zeros(series_len - d + 1),
            lbec=np.zeros(series_len - d + 1),
            covered=np.zeros(series_len - d + 1, dtype=bool),
        )
        for d in lengths
    }

    # for each CSG_b of master query MQ do              (Algorithm 1, l.1)
    for b in range(omega):
        # for each disjoint window DW_r of C do                       (l.2)
        for r in range(n_dw):
            j = 0          # count window number                      (l.3)
            i = 0          # count item query number                  (l.4)
            d = b + omega  # omega is window length                   (l.5)
            sum_eq = 0.0
            sum_ec = 0.0
            # while i < n do                                          (l.6)
            while i < len(lengths):
                w = b + j * omega
                if w >= window_index.n_sw or r - j < 0:
                    break
                # access window level index                       (l.7-l.8)
                sum_eq += lbeq_mat[w, r - j]
                sum_ec += lbec_mat[w, r - j]
                # if d + omega > |IQ_i| and d <= |IQ_i| then           (l.9)
                while i < len(lengths) and d + omega > lengths[i] >= d:
                    d_i = lengths[i]
                    if csg_size(d_i, b, omega) == j + 1:
                        # t <- (r - j) * omega - (d - b) % omega      (l.10)
                        t = (r - j) * omega - (d_i - b) % omega
                        if 0 <= t <= series_len - d_i:
                            # LB_w <- max{LB_q, LB_c}; store    (l.11-l.12)
                            results[d_i].lbeq[t] = sum_eq
                            results[d_i].lbec[t] = sum_ec
                            results[d_i].covered[t] = True
                    i += 1  # for next item query                     (l.13)
                j += 1
                d += omega  # (l.14)
    return results
