"""Group-level index of the SMiLer Index (Section 4.3.2, Algorithm 1).

Keywords are Catenated Sliding Window Groups (CSGs) of each item query;
posting lists hold the window-enhanced lower bound ``LB_w`` (Theorem 4.3)
between the item query and every candidate segment:

    LB_w(IQ_i, C_{t,d_i}) = max( sum_j LB_EQ(SW_{b+j*omega}, DW_{r-j}),
                                 sum_j LB_EC(SW_{b+j*omega}, DW_{r-j}) )

The construction exploits both reuse opportunities of Remark 2: for each
``CSG_b`` the shift-sums are accumulated incrementally over ``m`` — the
partial sum after ``m`` windows *is* the bound of the item query whose
CSG has exactly ``m`` windows (the suffix property), so all item queries'
bounds fall out of one pass over the window-level posting lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend.base import ComputeBackend
from ..gpu.kernels import THREADS_PER_BLOCK
from ..timeseries.windows import aligned_segment_start, csg_size
from .window_index import WindowLevelIndex

__all__ = ["GroupLevelIndex", "ItemLowerBounds"]

#: Abstract ops per shift-sum element (two adds + one max).
_OPS_PER_SUM_ELEM = 3.0


@dataclass
class ItemLowerBounds:
    """``LB_w`` for one item query against every candidate start.

    ``lbeq``/``lbec`` are indexed by segment start ``t`` (length
    ``series_len - d + 1``).  ``covered`` marks starts that received a
    bound; uncovered starts (empty CSG) keep bound 0 and must always be
    verified.
    """

    item_length: int
    lbeq: np.ndarray
    lbec: np.ndarray
    covered: np.ndarray
    _enhanced: np.ndarray | None = field(
        default=None, repr=False, compare=False
    )

    def enhanced(self) -> np.ndarray:
        """``LB_en``-style combined bound ``max(LB_EQ, LB_EC)``, cached.

        The search cascade reads this array once per item query per tier;
        caching keeps the elementwise max from being recomputed when the
        same bounds object is consulted repeatedly (threshold seeding and
        filtering both read it).
        """
        if self._enhanced is None:
            self._enhanced = np.maximum(self.lbeq, self.lbec)
        return self._enhanced

    def bound(self, mode: str) -> np.ndarray:
        """Select the bound variant: ``"en"``, ``"eq"`` or ``"ec"``."""
        if mode == "en":
            return self.enhanced()
        if mode == "eq":
            return self.lbeq
        if mode == "ec":
            return self.lbec
        raise ValueError(f"unknown lower-bound mode {mode!r}")


class GroupLevelIndex:
    """Shift-sum machine turning window posting lists into ``LB_w``."""

    def __init__(
        self,
        window_index: WindowLevelIndex,
        item_lengths: tuple[int, ...],
        backend: ComputeBackend | None = None,
    ) -> None:
        lengths = tuple(sorted(set(int(d) for d in item_lengths)))
        if not lengths:
            raise ValueError("at least one item length is required")
        if lengths[0] <= 0:
            raise ValueError(f"item lengths must be positive, got {lengths}")
        if lengths[-1] != window_index.master_length:
            raise ValueError(
                f"longest item length {lengths[-1]} must equal the master "
                f"query length {window_index.master_length}"
            )
        self.window_index = window_index
        self.item_lengths = lengths
        self.backend = backend if backend is not None else window_index.backend

    def compute(self) -> dict[int, ItemLowerBounds]:
        """One pass of Algorithm 1: bounds for every item query."""
        wi = self.window_index
        omega = wi.omega
        n_dw = wi.n_dw
        series_len = wi.series_length
        lbeq_mat, lbec_mat = wi.posting_matrices()

        results = {
            d: ItemLowerBounds(
                item_length=d,
                lbeq=np.zeros(series_len - d + 1),
                lbec=np.zeros(series_len - d + 1),
                covered=np.zeros(series_len - d + 1, dtype=bool),
            )
            for d in self.item_lengths
        }
        if n_dw == 0:
            return results

        total_sum_elements = 0
        for b in range(omega):
            # Item queries whose CSG_{i,b} has m windows, grouped by m.
            m_of_item = {d: csg_size(d, b, omega) for d in self.item_lengths}
            max_m = max(m_of_item.values())
            if max_m == 0:
                continue
            peq = np.zeros(n_dw)
            pec = np.zeros(n_dw)
            for m in range(1, max_m + 1):
                w = b + (m - 1) * omega
                if w >= wi.n_sw:
                    break
                # P_m[r] = P_{m-1}[r] + M[w, r - (m - 1)]  (shift-sum).
                shift = m - 1
                peq[shift:] += lbeq_mat[w, : n_dw - shift]
                pec[shift:] += lbec_mat[w, : n_dw - shift]
                total_sum_elements += 2 * (n_dw - shift)
                for d, m_i in m_of_item.items():
                    if m_i != m:
                        continue
                    self._emit(results[d], peq, pec, b, m, omega, series_len)
        self.backend.launch(
            "group_index_sum",
            n_blocks=omega,
            ops_per_thread=(
                -(-total_sum_elements // (omega * THREADS_PER_BLOCK))
                * _OPS_PER_SUM_ELEM
            ),
            threads_per_block=THREADS_PER_BLOCK,
        )
        return results

    @staticmethod
    def _emit(
        out: ItemLowerBounds,
        peq: np.ndarray,
        pec: np.ndarray,
        b: int,
        m: int,
        omega: int,
        series_len: int,
    ) -> None:
        """Write the partial sums into the candidate-start arrays."""
        d = out.item_length
        n_dw = peq.size
        rs = np.arange(m - 1, n_dw)
        if rs.size == 0:
            return
        offset = aligned_segment_start(d, b, m - 1, omega)
        ts = offset + (rs - (m - 1)) * omega
        valid = (ts >= 0) & (ts + d <= series_len)
        ts, rs = ts[valid], rs[valid]
        out.lbeq[ts] = peq[rs]
        out.lbec[ts] = pec[rs]
        out.covered[ts] = True
