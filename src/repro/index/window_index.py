"""Window-level index of the SMiLer Index (Section 4.3.1, Fig. 6).

Posting lists: for every sliding window ``SW_b`` of the master query and
every disjoint window ``DW_r`` of the series, the matrices

* ``lbeq[b, r] = LB_EQ(SW_b, DW_r)`` — DW values against the master-query
  envelope restricted to the window,
* ``lbec[b, r] = LB_EC(SW_b, DW_r)`` — SW values against the *global*
  series envelope restricted to the DW.

Continuous reuse (Remark 1) is implemented with a ring buffer over the
``b`` axis: advancing the master query by one point relabels every
surviving sliding window (``SW_b -> SW_{b+1}``), writes the brand-new
``SW_0`` into the slot the dropped oldest window vacates, and recomputes
``LB_EQ`` for the ``rho`` right-end windows whose envelope the new point
changed.  ``LB_EC`` rows survive untouched because they depend only on
raw query values and the series envelope.

Two conservative deviations from the printed description, both noted in
DESIGN.md:

* the paper only recomputes the right-end envelopes; the left-end
  envelopes (which the dropped point can shrink) are left stale — stale
  envelopes are *wider*, so bounds stay valid, merely looser.  We do the
  same and assert the invariant in tests.
* appended series points can *widen* the series envelope near the tail;
  stale ``LB_EC`` there would **overestimate** and break exactness, so
  the affected trailing DW columns are recomputed on every append.

The class also owns the growing series copy (history accrues one point
per continuous step) and reports reuse counters consumed by tests and the
Fig. 7/8 cost accounting.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import ComputeBackend, as_backend
from ..dtw.envelope import (
    Envelope,
    compute_envelope,
    envelope_extend,
    envelope_shift,
)
from ..dtw.lower_bounds import window_pair_lb_matrices
from ..gpu.kernels import OPS_PER_LB_TERM, THREADS_PER_BLOCK
from ..obs.hooks import observe_window_reuse

__all__ = ["WindowLevelIndex"]


class WindowLevelIndex:
    """Posting lists between master-query sliding windows and series DWs."""

    def __init__(
        self,
        series_values: np.ndarray,
        master_length: int,
        omega: int,
        rho: int,
        backend: ComputeBackend | None = None,
        capacity_hint: int = 0,
    ) -> None:
        series_values = np.asarray(series_values, dtype=np.float64)
        if master_length < omega:
            raise ValueError(
                f"master query length {master_length} shorter than omega {omega}"
            )
        if series_values.size < master_length:
            raise ValueError(
                f"series of length {series_values.size} shorter than the "
                f"master query length {master_length}"
            )
        self.omega = int(omega)
        self.rho = int(rho)
        self.master_length = int(master_length)
        self.n_sw = master_length - omega + 1
        self.backend = as_backend(backend)

        capacity = max(capacity_hint, 2 * series_values.size, 1024)
        self._series = np.empty(capacity, dtype=np.float64)
        self._series[: series_values.size] = series_values
        self._series_len = int(series_values.size)
        self._series_env = compute_envelope(series_values, rho)

        self._n_dw_capacity = capacity // omega
        self._lbeq = np.zeros((self.n_sw, self._n_dw_capacity))
        self._lbec = np.zeros((self.n_sw, self._n_dw_capacity))
        self.n_dw = self._series_len // omega
        # Ring buffer: physical row of logical window b.
        self._slot0 = 0
        self._built = False
        # Master-query envelope, maintained incrementally across steps
        # (set by build(), slid by step()).
        self._master_env: Envelope | None = None

        # Reuse counters (Remark 1 bookkeeping, asserted in tests).
        self.rows_built_full = 0
        self.rows_recomputed_lbeq = 0
        self.rows_reused = 0
        self.columns_recomputed_lbec = 0

    # ---------------------------------------------------------------- views
    @property
    def series(self) -> np.ndarray:
        """Current series contents (read-only view)."""
        view = self._series[: self._series_len]
        view.flags.writeable = False
        return view

    @property
    def series_length(self) -> int:
        """Number of stored observations."""
        return self._series_len

    @property
    def series_envelope(self) -> Envelope:
        """Global envelope of the stored series."""
        return self._series_env

    def _slot(self, b: int) -> int:
        return (self._slot0 + b) % self.n_sw

    def lbeq_row(self, b: int) -> np.ndarray:
        """Posting list of ``SW_b`` (LB_EQ side), one entry per DW."""
        return self._lbeq[self._slot(b), : self.n_dw]

    def lbec_row(self, b: int) -> np.ndarray:
        """Posting list of ``SW_b`` (LB_EC side), one entry per DW."""
        return self._lbec[self._slot(b), : self.n_dw]

    # ---------------------------------------------------------------- build
    def _master_env_slices(
        self, master_query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sliding-window slices of values and the master-query envelope.

        The envelope is the cached ``_master_env`` — build() computes it
        once and step() slides it in O(rho) — every caller keeps the
        cache in sync with the ``master_query`` it passes.
        """
        env = self._master_env
        if env is None:
            env = compute_envelope(master_query, self.rho)
            self._master_env = env
        d = master_query.size
        idx = np.stack(
            [np.arange(d - b - self.omega, d - b) for b in range(self.n_sw)]
        )
        return master_query[idx], env.upper[idx], env.lower[idx]

    def _dw_slices(self, r_lo: int, r_hi: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Disjoint-window slices (values + series envelope) for r in [lo, hi)."""
        sl = slice(r_lo * self.omega, r_hi * self.omega)
        shape = (r_hi - r_lo, self.omega)
        return (
            self._series[: self._series_len][sl].reshape(shape),
            self._series_env.upper[sl].reshape(shape),
            self._series_env.lower[sl].reshape(shape),
        )

    def build(self, master_query: np.ndarray) -> None:
        """Full construction: all (SW, DW) posting lists (Fig. 4, lower half).

        One simulated GPU block per sliding window, threads striding over
        the disjoint windows.
        """
        master_query = self._check_master(master_query)
        self._master_query = master_query.copy()
        self._master_env = compute_envelope(master_query, self.rho)
        self.n_dw = self._series_len // self.omega
        sw_vals, sw_up, sw_lo = self._master_env_slices(master_query)
        dw_vals, dw_up, dw_lo = self._dw_slices(0, self.n_dw)
        lbeq, lbec = window_pair_lb_matrices(
            sw_vals, sw_up, sw_lo, dw_vals, dw_up, dw_lo
        )
        self._slot0 = 0
        self._lbeq[:, : self.n_dw] = lbeq
        self._lbec[:, : self.n_dw] = lbec
        self._built = True
        self.rows_built_full += self.n_sw
        observe_window_reuse(rows_built_full=self.n_sw)
        per_thread = (
            -(-self.n_dw // THREADS_PER_BLOCK) * self.omega * 2 * OPS_PER_LB_TERM
        )
        self.backend.launch(
            "window_index_build",
            n_blocks=self.n_sw,
            ops_per_thread=per_thread,
            threads_per_block=THREADS_PER_BLOCK,
        )

    def _check_master(self, master_query: np.ndarray) -> np.ndarray:
        master_query = np.asarray(master_query, dtype=np.float64)
        if master_query.size != self.master_length:
            raise ValueError(
                f"master query of length {master_query.size} does not match "
                f"index master length {self.master_length}"
            )
        return master_query

    # ----------------------------------------------------------- continuous
    def step(self, new_point: float) -> None:
        """Advance one continuous-prediction step (Fig. 6).

        Appends ``new_point`` to the series, slides the master query (drop
        the oldest point, append the new one), relabels the ring buffer and
        refreshes only the affected posting lists.
        """
        if not self._built:
            raise RuntimeError("call build() before step()")
        self._append_series_point(float(new_point))
        new_master = np.concatenate(
            [self._master_query[1:], [float(new_point)]]
        )
        # Slide the master envelope with the query: only the first rho
        # and last rho+1 positions change, the interior is reused.
        assert self._master_env is not None
        self._master_env = envelope_shift(new_master, self._master_env)
        self._master_query = new_master

        # Ring relabel: old SW_b becomes SW_{b+1}; new SW_0 takes the slot
        # the dropped oldest window vacates.
        self._slot0 = (self._slot0 - 1) % self.n_sw
        sw_vals, sw_up, sw_lo = self._master_env_slices(new_master)

        dw_vals, dw_up, dw_lo = self._dw_slices(0, self.n_dw)
        refresh = range(0, min(self.rho + 1, self.n_sw))
        for b in refresh:
            lbeq, lbec = window_pair_lb_matrices(
                sw_vals[b : b + 1],
                sw_up[b : b + 1],
                sw_lo[b : b + 1],
                dw_vals,
                dw_up,
                dw_lo,
            )
            slot = self._slot(b)
            self._lbeq[slot, : self.n_dw] = lbeq[0]
            if b == 0:
                # Brand-new window: LB_EC must be produced too.
                self._lbec[slot, : self.n_dw] = lbec[0]
                self.rows_built_full += 1
            else:
                self.rows_recomputed_lbeq += 1
        self.rows_reused += self.n_sw - len(list(refresh))
        observe_window_reuse(
            rows_built_full=1,
            rows_recomputed_lbeq=max(len(list(refresh)) - 1, 0),
            rows_reused=self.n_sw - len(list(refresh)),
        )
        per_thread = (
            -(-self.n_dw // THREADS_PER_BLOCK) * self.omega * 2 * OPS_PER_LB_TERM
        )
        self.backend.launch(
            "window_index_step",
            n_blocks=len(list(refresh)),
            ops_per_thread=per_thread,
            threads_per_block=THREADS_PER_BLOCK,
        )

    def _append_series_point(self, value: float) -> None:
        if self._series_len == self._series.size:
            grown = np.empty(2 * self._series.size, dtype=np.float64)
            grown[: self._series_len] = self._series[: self._series_len]
            self._series = grown
            self._grow_dw_capacity()
        self._series[self._series_len] = value
        self._series_len += 1
        self._series_env = envelope_extend(
            self._series[: self._series_len], self._series_env, 1
        )

        new_n_dw = self._series_len // self.omega
        if new_n_dw > self.n_dw:
            self.n_dw = new_n_dw
            self._refresh_tail_columns()
        else:
            # The appended point widened the envelope of the trailing rho
            # positions; if those fall in an existing DW its LB_EC column
            # would overestimate — refresh it.
            self._refresh_tail_columns()

    def _grow_dw_capacity(self) -> None:
        capacity = self._series.size // self.omega
        if capacity > self._n_dw_capacity:
            lbeq = np.zeros((self.n_sw, capacity))
            lbec = np.zeros((self.n_sw, capacity))
            lbeq[:, : self._n_dw_capacity] = self._lbeq
            lbec[:, : self._n_dw_capacity] = self._lbec
            self._lbeq, self._lbec = lbeq, lbec
            self._n_dw_capacity = capacity

    def _refresh_tail_columns(self) -> None:
        """Recompute LB columns whose series envelope the append changed."""
        if self.n_dw == 0 or not self._built:
            return
        affected_from = max(0, self._series_len - 1 - self.rho)
        r_lo = max(0, affected_from // self.omega)
        r_lo = min(r_lo, self.n_dw - 1)
        sw_vals, sw_up, sw_lo = self._master_env_slices(self._master_query)
        dw_vals, dw_up, dw_lo = self._dw_slices(r_lo, self.n_dw)
        lbeq, lbec = window_pair_lb_matrices(
            sw_vals, sw_up, sw_lo, dw_vals, dw_up, dw_lo
        )
        cols = slice(r_lo, self.n_dw)
        for b in range(self.n_sw):
            slot = self._slot(b)
            self._lbeq[slot, cols] = lbeq[b]
            self._lbec[slot, cols] = lbec[b]
        self.columns_recomputed_lbec += self.n_dw - r_lo
        observe_window_reuse(columns_recomputed_lbec=self.n_dw - r_lo)

    # -------------------------------------------------------------- exports
    def posting_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Logical-order ``(lbeq, lbec)`` matrices, shape ``(n_sw, n_dw)``."""
        order = [(self._slot0 + b) % self.n_sw for b in range(self.n_sw)]
        return (
            self._lbeq[order, : self.n_dw].copy(),
            self._lbec[order, : self.n_dw].copy(),
        )

    def memory_bytes(self) -> int:
        """Device-resident footprint: series + envelope + posting lists."""
        return self.estimate_memory_bytes(
            self._series_len, self.master_length, self.omega
        )

    @staticmethod
    def estimate_memory_bytes(
        series_len: int, master_length: int, omega: int
    ) -> int:
        """Footprint of an index over ``series_len`` points, *before* build.

        Exact (the footprint is an analytic function of the shape), so
        placement can reserve memory without constructing the index.
        """
        n_sw = master_length - omega + 1
        n_dw = series_len // omega
        series = series_len * 8
        envelope = 2 * series_len * 8
        postings = 2 * n_sw * n_dw * 8
        return series + envelope + postings
