"""SMiLer-Dir: direct LB_en computation without the window-level index.

The Fig. 8 baseline: for every item query, scan the series and compute the
enhanced lower bound for every candidate start from scratch — no posting
lists, no shift-sum reuse, no continuous reuse.  Numerically it produces
the *full* per-candidate ``LB_en`` (slightly tighter than the index's
window-partial bound); its cost is what the index exists to avoid.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import ComputeBackend, as_backend
from ..dtw.envelope import Envelope, compute_envelope
from ..dtw.lower_bounds import lb_profile
from ..gpu.kernels import OPS_PER_LB_TERM, THREADS_PER_BLOCK

__all__ = ["direct_lb_en"]


def direct_lb_en(
    backend: ComputeBackend | None,
    master_query: np.ndarray,
    series: np.ndarray,
    item_lengths: tuple[int, ...],
    rho: int,
    series_envelope: Envelope | None = None,
) -> dict[int, np.ndarray]:
    """``LB_en`` of every item query against every candidate, from scratch.

    One simulated kernel per item query: a block of threads per chunk of
    candidates, each thread walking the full ``d`` positions of its
    candidate for both bound sides (no reuse whatsoever).  A caller that
    already maintains the global series envelope (the window index does)
    can pass it via ``series_envelope`` to skip the O(n) recomputation.
    """
    backend = as_backend(backend)
    master_query = np.asarray(master_query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    series_env = (
        series_envelope
        if series_envelope is not None
        else compute_envelope(series, rho)
    )
    results: dict[int, np.ndarray] = {}
    for d in sorted(set(int(x) for x in item_lengths)):
        query = master_query[master_query.size - d :]
        lbeq, lbec = lb_profile(
            query, series, rho, series_envelope=series_env
        )
        n_candidates = lbeq.size
        backend.launch(
            "direct_lb_en",
            n_blocks=-(-n_candidates // THREADS_PER_BLOCK),
            ops_per_thread=2 * d * OPS_PER_LB_TERM,
            threads_per_block=THREADS_PER_BLOCK,
        )
        results[d] = np.maximum(lbeq, lbec)
    return results
