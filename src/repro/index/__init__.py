"""SMiLer Index: two-level inverted-like index + Suffix kNN Search."""

from .direct import direct_lb_en
from .group_index import GroupLevelIndex, ItemLowerBounds
from .reference import algorithm1_reference
from .suffix_search import SuffixKnnAnswer, SuffixKnnEngine, SuffixSearchConfig
from .window_index import WindowLevelIndex

__all__ = [
    "algorithm1_reference",
    "direct_lb_en",
    "GroupLevelIndex",
    "ItemLowerBounds",
    "SuffixKnnAnswer",
    "SuffixKnnEngine",
    "SuffixSearchConfig",
    "WindowLevelIndex",
]
