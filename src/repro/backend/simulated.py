"""The simulated-GPU backend: cost-model time + bounded device memory.

Wraps the existing :class:`~repro.gpu.device.GpuDevice` (vectorised
NumPy numerics + :class:`~repro.gpu.costmodel.GpuCostModel` time
accounting + the 6 GB malloc ledger of the paper's GTX TITAN) behind the
:class:`~repro.backend.base.ComputeBackend` protocol.  This is the
default backend and the one every paper figure/table runs on — the
simulated-seconds ledger *is* the measurement.

A per-backend re-entrant lock serializes kernel dispatch, cost-model
time attribution and the malloc/free ledger, so a backend shared across
serving lanes (mid-request failover builds an index on a peer backend
while that peer's own lane is running) never loses a time or memory
update.  Within one lane operations are already serial, so the lock is
uncontended on the happy path.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from ..gpu.costmodel import DeviceSpec, GpuCostModel
from ..gpu.device import Allocation, GpuDevice
from ..gpu.kernels import dtw_verification_kernel, full_dtw_kernel, k_select_kernel

__all__ = ["SimulatedGpuBackend"]

#: Process-wide instance sequence for telemetry-stable backend ids.
_BACKEND_SEQ = itertools.count()


class SimulatedGpuBackend:
    """Kernel dispatch, memory and simulated time on one ``GpuDevice``."""

    name = "simulated"

    def __init__(
        self, device: GpuDevice | None = None, spec: DeviceSpec | None = None
    ) -> None:
        if device is not None and spec is not None:
            raise ValueError("pass either a device or a spec, not both")
        self.device = device if device is not None else GpuDevice(spec)
        #: Process-unique identity stamped on telemetry (event-log lines,
        #: lane spans, Chrome-trace track names).
        self.backend_id = f"simulated-{next(_BACKEND_SEQ)}"
        self._lock = threading.RLock()

    # ------------------------------------------------------------- kernels
    def dtw_verification(
        self,
        query: np.ndarray,
        candidates: np.ndarray,
        rho: int,
        cutoff: float | None = None,
        lb_terms: np.ndarray | None = None,
    ) -> np.ndarray:
        """Banded DTW via the compressed-warping-matrix kernel."""
        with self._lock:
            return dtw_verification_kernel(
                self.device, query, candidates, rho,
                cutoff=cutoff, lb_terms=lb_terms,
            )

    def full_dtw(self, query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Unbanded DTW paying the global-memory penalty (GPUScan)."""
        with self._lock:
            return full_dtw_kernel(self.device, query, candidates)

    def k_select(self, values: np.ndarray, k: int) -> np.ndarray:
        """Device k-selection by distributive partitioning."""
        with self._lock:
            return k_select_kernel(self.device, values, k)

    def launch(
        self,
        name: str,
        n_blocks: int,
        ops_per_thread: float,
        threads_per_block: int = 256,
    ) -> float:
        """Account one kernel launch on the cost model."""
        with self._lock:
            return self.device.launch(
                name, n_blocks, ops_per_thread, threads_per_block
            )

    # ---------------------------------------------------------------- time
    @property
    def elapsed_s(self) -> float:
        """Total simulated kernel seconds since the last reset."""
        return self.device.elapsed_s

    def reset_time(self) -> None:
        """Zero the simulated-time ledger."""
        with self._lock:
            self.device.reset_time()

    @property
    def cost(self) -> GpuCostModel:
        """The underlying cost model (per-kernel attribution lives here)."""
        return self.device.cost

    @property
    def spec(self) -> DeviceSpec:
        """The simulated device's published specification."""
        return self.device.spec

    # -------------------------------------------------------------- memory
    def malloc(self, nbytes: int, label: str = "buffer") -> Allocation:
        """Reserve device global memory (bounded by the spec's capacity)."""
        with self._lock:
            return self.device.malloc(nbytes, label)

    def free(self, handle: Allocation) -> None:
        """Release a previous allocation."""
        with self._lock:
            self.device.free(handle)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated on the device."""
        return self.device.allocated_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes still available on the device."""
        return self.device.free_bytes

    # ------------------------------------------------------------- pickling
    # Backends cross the process boundary when a shard worker flushes its
    # state back to the serving process; locks don't pickle, so each side
    # owns a fresh one (the transfer happens from a quiesced state).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulatedGpuBackend({self.device!r})"
