"""The :class:`ComputeBackend` protocol — SMiLer's pluggable compute layer.

Every layer above the kernels (index construction, Suffix kNN Search,
the SMiLer facade, the serving layer) talks to *one* interface that owns
the three concerns a compute substrate has:

* **kernel dispatch** — banded/unbanded DTW verification and device
  k-selection (the filter → verify → select pipeline's numeric work),
* **device-memory accounting** — a malloc/free ledger so a serving pool
  can place sensors by free space and refuse admission when full,
* **time attribution** — an ``elapsed_s`` ledger of simulated kernel
  seconds (zero for backends that do not model time).

Two implementations ship:

* :class:`repro.backend.SimulatedGpuBackend` — wraps the simulated
  :class:`~repro.gpu.device.GpuDevice` and its cost model; the default,
  and the only backend the paper-figure harness should use (its entire
  point is the simulated-time ledger).
* :class:`repro.backend.NativeBackend` — straight vectorised NumPy with
  no cost-model bookkeeping; the serving fast path.

To add a backend (CuPy, torch, a remote worker pool), implement this
protocol — numerical contracts are documented per method — and register
a name in :func:`make_backend`.  Nothing above this module constructs a
``GpuDevice`` directly, so no other layer needs to change.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..gpu.device import Allocation, GpuDevice, GpuMemoryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

__all__ = [
    "Allocation",
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "ComputeBackend",
    "GpuMemoryError",
    "as_backend",
    "default_backend",
    "make_backend",
]

#: Environment variable selecting the default backend (``simulated`` when
#: unset).  CI runs the tier-1 suite under both values.
BACKEND_ENV_VAR = "REPRO_BACKEND"


@runtime_checkable
class ComputeBackend(Protocol):
    """What the index/core/serving layers require of a compute substrate.

    Numerical contract: for identical inputs every backend must return
    *identical* answers — ``dtw_verification``/``full_dtw`` produce the
    same float64 distances and ``k_select`` resolves ties by lowest
    index — so that kNN answer sets and downstream forecasts are
    bit-identical across backends (pinned by the parity tests).
    """

    #: Short backend identifier (``"simulated"``, ``"native"``, ...).
    name: str

    # ------------------------------------------------------------- kernels
    def dtw_verification(
        self,
        query: np.ndarray,
        candidates: np.ndarray,
        rho: int,
        cutoff: float | None = None,
        lb_terms: np.ndarray | None = None,
    ) -> np.ndarray:
        """Banded (Sakoe-Chiba ``rho``) DTW of one query vs many candidates.

        With a ``cutoff`` the kernel may early-abandon candidates whose
        cumulative bound (partial DP cost + the admissible ``lb_terms``
        tail) strictly exceeds it, returning ``inf`` for those; every
        candidate with true distance ``<= cutoff`` keeps a distance
        bit-identical to the unpruned kernel.
        """
        ...

    def full_dtw(self, query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Unbanded DTW of one query vs many candidates (GPUScan baseline)."""
        ...

    def k_select(self, values: np.ndarray, k: int) -> np.ndarray:
        """Indices of the k smallest values, sorted ascending, ties by index."""
        ...

    def launch(
        self,
        name: str,
        n_blocks: int,
        ops_per_thread: float,
        threads_per_block: int = 256,
    ) -> float:
        """Attribute one abstract kernel launch; returns simulated seconds.

        Backends that do not model time return 0.0 and may ignore the
        arguments entirely.
        """
        ...

    # ---------------------------------------------------------------- time
    @property
    def elapsed_s(self) -> float:
        """Simulated kernel seconds since the last reset (0.0 if unmodelled)."""
        ...

    def reset_time(self) -> None:
        """Zero the simulated-time ledger."""
        ...

    # -------------------------------------------------------------- memory
    def malloc(self, nbytes: int, label: str = "buffer") -> Allocation:
        """Reserve device memory; raises :class:`GpuMemoryError` when full."""
        ...

    def free(self, handle: Allocation) -> None:
        """Release a previous allocation."""
        ...

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated on this backend."""
        ...

    @property
    def free_bytes(self) -> int:
        """Bytes still available (drives greedy pool placement)."""
        ...


#: Registered backend names accepted by :func:`make_backend` and the CLI.
BACKEND_NAMES = ("simulated", "native")


def make_backend(
    name: str, fault_profile: object = None, **kwargs
) -> "ComputeBackend":
    """Construct a backend by registered name.

    ``kwargs`` are forwarded to the backend constructor (e.g. ``spec=``
    for the simulated backend, ``capacity_bytes=`` for the native one).
    ``fault_profile`` (a :class:`~repro.faults.FaultProfile`, a profile
    name, or a ``key=value`` spec string) wraps the result in a
    :class:`~repro.faults.FaultInjectingBackend`; ``None`` or a null
    profile leaves the backend unwrapped.
    """
    from .native import NativeBackend
    from .simulated import SimulatedGpuBackend

    if name == "simulated":
        backend: "ComputeBackend" = SimulatedGpuBackend(**kwargs)
    elif name == "native":
        backend = NativeBackend(**kwargs)
    else:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(BACKEND_NAMES)}"
        )
    if fault_profile is not None:
        from ..faults import FaultInjectingBackend, as_fault_profile

        profile = as_fault_profile(fault_profile)
        if profile is not None:
            return FaultInjectingBackend(backend, profile)
    return backend


def default_backend() -> "ComputeBackend":
    """A fresh backend of the process-default kind.

    The kind is ``simulated`` unless the ``REPRO_BACKEND`` environment
    variable names another registered backend; the ``REPRO_FAULT_PROFILE``
    environment variable additionally wraps it in deterministic fault
    injection (see :mod:`repro.faults`).
    """
    from ..faults import FAULT_PROFILE_ENV_VAR

    return make_backend(
        os.environ.get(BACKEND_ENV_VAR, "simulated"),
        fault_profile=os.environ.get(FAULT_PROFILE_ENV_VAR),
    )


def as_backend(obj: object = None) -> "ComputeBackend":
    """Coerce ``obj`` to a :class:`ComputeBackend`.

    ``None`` yields a fresh :func:`default_backend`; a raw
    :class:`~repro.gpu.device.GpuDevice` is wrapped in a
    :class:`~repro.backend.SimulatedGpuBackend` *sharing* that device's
    ledgers (existing references keep observing time/memory); a backend
    passes through unchanged.
    """
    if obj is None:
        return default_backend()
    if isinstance(obj, GpuDevice):
        from .simulated import SimulatedGpuBackend

        return SimulatedGpuBackend(device=obj)
    if isinstance(obj, ComputeBackend):
        return obj
    raise TypeError(
        f"expected a ComputeBackend, GpuDevice or None, got {type(obj).__name__}"
    )
