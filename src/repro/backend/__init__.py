"""Pluggable compute backends for SMiLer (see ``docs/architecture.md``).

The :class:`ComputeBackend` protocol owns kernel dispatch, device-memory
accounting and simulated-time attribution; :class:`SimulatedGpuBackend`
(cost-model faithful, the benchmark default) and :class:`NativeBackend`
(plain NumPy, the serving fast path) implement it, and
:class:`BackendPool` shards work across several of either.
"""

from .base import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    ComputeBackend,
    GpuMemoryError,
    as_backend,
    default_backend,
    make_backend,
)
from .native import NativeBackend
from .pool import BackendHealth, BackendPool, BreakerConfig, Placement
from .simulated import SimulatedGpuBackend

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendHealth",
    "BackendPool",
    "BreakerConfig",
    "ComputeBackend",
    "GpuMemoryError",
    "NativeBackend",
    "Placement",
    "SimulatedGpuBackend",
    "as_backend",
    "default_backend",
    "make_backend",
]
