"""Backend pools: placement, allocation and backend *health* in one place.

Section 6.4.1's scale-out option 1 (shard sensors over multiple GPUs)
generalised to any :class:`~repro.backend.base.ComputeBackend`:
:meth:`BackendPool.allocate` places each reservation on the healthy
backend with the most free memory (greedy balancing, ties to the lowest
index) and raises :class:`~repro.gpu.device.GpuMemoryError` only when
the whole pool is exhausted.  The serving layer routes *every* admission
— ``register``, ``restore``, evacuation — through this method, so
placement policy lives in exactly one place.

Health lives here too.  Each backend carries a :class:`BackendHealth`
record driven by a classic circuit breaker:

* **closed** — normal operation; consecutive failures are counted,
* **open** — tripped after :attr:`BreakerConfig.failure_threshold`
  consecutive failures (or an explicit :meth:`mark_unhealthy`); open
  backends are skipped by placement,
* **half_open** — after :attr:`BreakerConfig.cooldown_ops` pool
  operations an open breaker admits probes again; one success closes
  it, one failure re-trips it.

The pool *fails open*: if every breaker is open, placement falls back to
trying all backends anyway — a fully-degraded pool should still attempt
to serve rather than refuse outright.  Breakers gate placement only;
callers (the serving layer) decide when a forecast failure counts
against a backend via :meth:`record_failure` / :meth:`record_success`.

Thread safety: one re-entrant lock guards the operation counter, every
health record and every placement/ledger mutation, so concurrent serving
lanes (see :class:`~repro.service.ServiceConfig`) can record outcomes
and trigger failover placements without losing updates.  Reads that must
be atomic (``status()`` surfaces) go through :meth:`health_dict`;
:meth:`health` still hands out the live record for single-threaded
callers and tests.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from typing import Iterable

from ..gpu.device import Allocation, GpuMemoryError
from ..obs import hooks as obs
from .base import ComputeBackend, as_backend

__all__ = [
    "BackendHealth",
    "BackendPool",
    "BreakerConfig",
    "Placement",
]

logger = logging.getLogger(__name__)

#: Circuit-breaker state names (values of :attr:`BackendHealth.state`).
_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half_open"


@dataclass(frozen=True)
class Placement:
    """One reservation: which backend, and the allocation handle on it."""

    backend_index: int
    allocation: Allocation


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker tuning shared by every backend in a pool."""

    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 3
    #: Pool operations an open breaker waits before admitting a probe.
    cooldown_ops: int = 16

    def __post_init__(self) -> None:
        if self.failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got {self.failure_threshold}"
            )
        if self.cooldown_ops <= 0:
            raise ValueError(
                f"cooldown_ops must be positive, got {self.cooldown_ops}"
            )


@dataclass
class BackendHealth:
    """Mutable health record of one backend in a pool."""

    state: str = _CLOSED
    consecutive_failures: int = 0
    opened_at_op: int = 0
    failures_total: int = 0
    successes_total: int = 0
    trips: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly record for ``status()`` surfaces."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures_total": self.failures_total,
            "successes_total": self.successes_total,
            "trips": self.trips,
        }


class BackendPool:
    """A fixed set of backends sharing one placement policy and one
    health model."""

    def __init__(
        self,
        backends: Iterable[object],
        breaker: BreakerConfig | None = None,
    ) -> None:
        self.backends: list[ComputeBackend] = [as_backend(b) for b in backends]
        if not self.backends:
            raise ValueError("a pool needs at least one backend")
        self.breaker = breaker or BreakerConfig()
        self._health = [BackendHealth() for _ in self.backends]
        self._op = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self.backends)

    def backend(self, placement: Placement) -> ComputeBackend:
        """The backend a placement lives on."""
        return self.backends[placement.backend_index]

    # -------------------------------------------------------------- health
    def health(self, index: int) -> BackendHealth:
        """The live health record of one backend (advances cooldowns).

        The returned record is mutable and shared; use :meth:`health_dict`
        when you need a point-in-time snapshot under concurrency.
        """
        with self._lock:
            self._maybe_half_open(index)
            return self._health[index]

    def health_dict(self, index: int) -> dict:
        """Atomic JSON snapshot of one backend's health record."""
        with self._lock:
            self._maybe_half_open(index)
            return self._health[index].as_dict()

    def state(self, index: int) -> str:
        """Breaker state of one backend: closed, open or half_open."""
        return self.health(index).state

    def admits(self, index: int) -> bool:
        """Whether placement may use this backend (breaker not open)."""
        return self.state(index) != _OPEN

    def healthy_indices(self) -> list[int]:
        """Backends placement may currently use."""
        with self._lock:
            return [i for i in range(len(self.backends)) if self.admits(i)]

    def record_success(self, index: int) -> None:
        """One successful operation: reset the failure streak; a probe
        success closes the breaker."""
        with self._lock:
            self._op += 1
            health = self._health[index]
            health.consecutive_failures = 0
            health.successes_total += 1
            if health.state != _CLOSED:
                self._transition(index, _CLOSED)

    def record_failure(self, index: int) -> None:
        """One failed operation: extend the streak; trip at the threshold,
        and re-trip instantly from half_open (the probe failed)."""
        with self._lock:
            self._op += 1
            health = self._health[index]
            health.failures_total += 1
            health.consecutive_failures += 1
            if health.state == _HALF_OPEN:
                self._transition(index, _OPEN)
            elif (
                health.state == _CLOSED
                and health.consecutive_failures >= self.breaker.failure_threshold
            ):
                self._transition(index, _OPEN)

    def mark_unhealthy(self, index: int) -> None:
        """Force a backend's breaker open (operator or failover decision)."""
        with self._lock:
            self._op += 1
            health = self._health[index]
            health.consecutive_failures = max(
                health.consecutive_failures, self.breaker.failure_threshold
            )
            if health.state != _OPEN:
                self._transition(index, _OPEN)

    def adopt_health(self, index: int, fields: dict) -> None:
        """Replace one backend's health record with counters shipped from
        another process's pool (the shard worker's view is authoritative
        for its backend while a process-engine generation is live).

        ``opened_at_op`` is re-anchored to *this* pool's operation
        counter — cooldowns are measured in local pool ops, and the
        worker's counter is meaningless here.  A state change fires the
        same telemetry as a local :meth:`_transition`, so breaker events
        and the ``smiler_backend_state`` gauge stay truthful regardless
        of which process tripped the breaker.
        """
        with self._lock:
            self._op += 1
            health = self._health[index]
            old_state = health.state
            health.consecutive_failures = int(fields["consecutive_failures"])
            health.failures_total = int(fields["failures_total"])
            health.successes_total = int(fields["successes_total"])
            health.trips = int(fields["trips"])
            new_state = str(fields["state"])
            if new_state == old_state:
                return
            health.state = new_state
            if new_state == _OPEN:
                health.opened_at_op = self._op
            logger.info(
                "backend %d (%s): breaker %s -> %s (adopted from worker)",
                index, self.backends[index].name, old_state, new_state,
            )
            obs.observe_breaker_transition(index, old_state, new_state)
            obs.observe_backend_state(index, new_state)

    def _maybe_half_open(self, index: int) -> None:
        health = self._health[index]
        if (
            health.state == _OPEN
            and self._op - health.opened_at_op >= self.breaker.cooldown_ops
        ):
            self._transition(index, _HALF_OPEN)

    def _transition(self, index: int, new_state: str) -> None:
        health = self._health[index]
        old_state = health.state
        if old_state == new_state:
            return
        health.state = new_state
        if new_state == _OPEN:
            health.opened_at_op = self._op
            health.trips += 1
        logger.info(
            "backend %d (%s): breaker %s -> %s",
            index, self.backends[index].name, old_state, new_state,
        )
        obs.observe_breaker_transition(index, old_state, new_state)
        obs.observe_backend_state(index, new_state)

    # ----------------------------------------------------------- placement
    def allocate(self, nbytes: int, label: str) -> Placement:
        """Reserve ``nbytes`` on the healthy backend with the most free
        memory.

        Open-circuit backends are skipped (unless *every* breaker is open,
        in which case all backends are tried — fail open).  Backends are
        tried in free-memory order (stable, so equally-free backends fill
        lowest-index first); a capacity refusal (:class:`GpuMemoryError`)
        moves on without a health penalty, any other failure counts
        against the backend's breaker.  Exhausting every candidate raises
        :class:`GpuMemoryError`.
        """
        with self._lock:
            return self._allocate_locked(nbytes, label)

    def _allocate_locked(self, nbytes: int, label: str) -> Placement:
        self._op += 1
        order = sorted(
            range(len(self.backends)),
            key=lambda i: self.backends[i].free_bytes,
            reverse=True,
        )
        candidates = [i for i in order if self.admits(i)]
        skipped = len(order) - len(candidates)
        if not candidates:
            candidates = order
        last_error: Exception | None = None
        for index in candidates:
            try:
                allocation = self.backends[index].malloc(nbytes, label)
            except GpuMemoryError as error:
                # Full is not unhealthy: no breaker penalty for capacity.
                last_error = error
                continue
            except Exception as error:
                last_error = error
                self.record_failure(index)
                logger.debug(
                    "backend %d failed malloc for %r: %s", index, label, error
                )
                continue
            if self._health[index].state != _CLOSED:
                self.record_success(index)  # successful probe
            return Placement(backend_index=index, allocation=allocation)
        raise GpuMemoryError(
            f"no backend in the pool can host {label!r}"
            + (f" ({skipped} skipped circuit-open)" if skipped else "")
            + f": {last_error}"
        )

    def resize(self, placement: Placement, nbytes: int) -> Placement:
        """Replace a reservation with one of a different size, same backend.

        On failure the original reservation survives: when the new size
        fits alongside the old one, the new block is allocated *before*
        the old is freed, so the caller's placement is never at risk; in
        the tight case (fits only after freeing the old block) the old
        reservation is re-established on failure and the raised
        :class:`GpuMemoryError` carries the fresh handle as its
        ``placement`` attribute (the byte count is preserved, the
        allocation serial is not).
        """
        with self._lock:
            return self._resize_locked(placement, nbytes)

    def _resize_locked(self, placement: Placement, nbytes: int) -> Placement:
        backend = self.backend(placement)
        old = placement.allocation
        if nbytes - old.nbytes > backend.free_bytes:
            raise GpuMemoryError(
                f"cannot grow {old.label!r} to {nbytes} bytes: only "
                f"{backend.free_bytes} free on its backend"
            )
        if nbytes <= backend.free_bytes:
            # Allocate-then-free: the original reservation is untouched
            # until the replacement exists.
            allocation = backend.malloc(nbytes, old.label)
            backend.free(old)
            return Placement(placement.backend_index, allocation)
        # Tight fit: the new block only fits once the old one is freed.
        backend.free(old)
        try:
            allocation = backend.malloc(nbytes, old.label)
        except Exception as error:
            # Re-establish the reservation so the pool's ledger (and any
            # caller adopting err.placement) stays consistent.  Only a
            # second injected fault can make this restore fail too.
            restored = backend.malloc(old.nbytes, old.label)
            err = GpuMemoryError(
                f"resize of {old.label!r} to {nbytes} bytes failed; the "
                f"original {old.nbytes}-byte reservation was restored: {error}"
            )
            err.placement = Placement(placement.backend_index, restored)  # type: ignore[attr-defined]
            raise err from error
        return Placement(placement.backend_index, allocation)

    def release(self, placement: Placement) -> None:
        """Free a previous reservation."""
        with self._lock:
            self.backend(placement).free(placement.allocation)

    # ---------------------------------------------------------- aggregates
    @property
    def allocated_bytes(self) -> int:
        """Bytes reserved across the whole pool."""
        with self._lock:
            return sum(b.allocated_bytes for b in self.backends)

    @property
    def elapsed_s(self) -> float:
        """Fleet time: backends run in parallel, so the busiest one wins."""
        return max(b.elapsed_s for b in self.backends)

    def reset_time(self) -> None:
        """Zero every backend's simulated-time ledger."""
        with self._lock:
            for backend in self.backends:
                backend.reset_time()
