"""Backend pools: the one placement/allocation component of the system.

Section 6.4.1's scale-out option 1 (shard sensors over multiple GPUs)
generalised to any :class:`~repro.backend.base.ComputeBackend`:
:meth:`BackendPool.allocate` places each reservation on the backend with
the most free memory (greedy balancing, ties to the lowest index) and
raises :class:`~repro.gpu.device.GpuMemoryError` only when the whole
pool is exhausted.  The serving layer routes *every* admission —
``register``, ``restore``, fleet construction — through this method, so
placement policy lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..gpu.device import Allocation, GpuMemoryError
from .base import ComputeBackend, as_backend

__all__ = ["BackendPool", "Placement"]


@dataclass(frozen=True)
class Placement:
    """One reservation: which backend, and the allocation handle on it."""

    backend_index: int
    allocation: Allocation


class BackendPool:
    """A fixed set of backends sharing one greedy placement policy."""

    def __init__(self, backends: Iterable[object]) -> None:
        self.backends: list[ComputeBackend] = [as_backend(b) for b in backends]
        if not self.backends:
            raise ValueError("a pool needs at least one backend")

    def __len__(self) -> int:
        return len(self.backends)

    def backend(self, placement: Placement) -> ComputeBackend:
        """The backend a placement lives on."""
        return self.backends[placement.backend_index]

    # ----------------------------------------------------------- placement
    def allocate(self, nbytes: int, label: str) -> Placement:
        """Reserve ``nbytes`` on the backend with the most free memory.

        Backends are tried in free-memory order (stable, so equally-free
        backends fill lowest-index first); exhausting them all raises
        :class:`GpuMemoryError`.
        """
        order = sorted(
            range(len(self.backends)),
            key=lambda i: self.backends[i].free_bytes,
            reverse=True,
        )
        last_error: GpuMemoryError | None = None
        for index in order:
            try:
                allocation = self.backends[index].malloc(nbytes, label)
            except GpuMemoryError as error:
                last_error = error
                continue
            return Placement(backend_index=index, allocation=allocation)
        raise GpuMemoryError(
            f"no backend in the pool can host {label!r}: {last_error}"
        )

    def resize(self, placement: Placement, nbytes: int) -> Placement:
        """Replace a reservation with one of a different size, same backend.

        On failure the original reservation is left untouched (the fit is
        checked before the old handle is released, so the caller's
        placement never goes stale).
        """
        backend = self.backend(placement)
        old = placement.allocation
        growth = nbytes - old.nbytes
        if growth > backend.free_bytes:
            raise GpuMemoryError(
                f"cannot grow {old.label!r} by {growth} bytes: only "
                f"{backend.free_bytes} free on its backend"
            )
        backend.free(old)
        allocation = backend.malloc(nbytes, old.label)
        return Placement(placement.backend_index, allocation)

    def release(self, placement: Placement) -> None:
        """Free a previous reservation."""
        self.backend(placement).free(placement.allocation)

    # ---------------------------------------------------------- aggregates
    @property
    def allocated_bytes(self) -> int:
        """Bytes reserved across the whole pool."""
        return sum(b.allocated_bytes for b in self.backends)

    @property
    def elapsed_s(self) -> float:
        """Fleet time: backends run in parallel, so the busiest one wins."""
        return max(b.elapsed_s for b in self.backends)

    def reset_time(self) -> None:
        """Zero every backend's simulated-time ledger."""
        for backend in self.backends:
            backend.reset_time()
