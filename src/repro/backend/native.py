"""The native backend: vectorised NumPy with zero cost-model overhead.

The serving fast path.  Numerical behaviour is *identical* to the
simulated backend (same ``dtw_batch`` kernels, same tie-breaking in
k-selection), but no simulated time is attributed and no abstract-op
arithmetic runs — ``launch`` is a constant-time no-op.  Memory is a
host-side ledger with an optional capacity so a pool of native workers
can still shard sensors by free space and refuse admission.

The ledger is guarded by a per-backend lock so concurrent serving lanes
(and mid-request failover admissions) never lose a malloc/free update;
the kernels themselves are pure functions of their arguments and need no
serialization beyond what NumPy provides.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from ..dtw.distance import dtw_batch, dtw_batch_pruned
from ..gpu.device import Allocation, GpuMemoryError

__all__ = ["NativeBackend"]

#: Ledger bound when no capacity is configured — effectively unlimited,
#: but finite so ``free_bytes`` stays an ``int`` and greedy placement
#: (max free == min allocated for equal capacities) still balances.
_UNBOUNDED_BYTES = 1 << 62

#: Process-wide instance sequence for telemetry-stable backend ids.
_BACKEND_SEQ = itertools.count()


class NativeBackend:
    """Straight NumPy compute: no cost model, optional memory bound."""

    name = "native"

    def __init__(self, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        #: Process-unique identity stamped on telemetry (event-log lines,
        #: lane spans, Chrome-trace track names).
        self.backend_id = f"native-{next(_BACKEND_SEQ)}"
        self.capacity_bytes = capacity_bytes
        self._allocated = 0
        self._serial = 0
        self._live: dict[int, Allocation] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------- kernels
    def dtw_verification(
        self,
        query: np.ndarray,
        candidates: np.ndarray,
        rho: int,
        cutoff: float | None = None,
        lb_terms: np.ndarray | None = None,
    ) -> np.ndarray:
        """Banded DTW of one query against many candidates."""
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        if candidates.shape[0] == 0:
            return np.empty(0)
        if cutoff is None:
            return dtw_batch(query, candidates, rho)
        result = dtw_batch_pruned(
            query, candidates, rho, cutoff=cutoff, lb_terms=lb_terms
        )
        assert isinstance(result, np.ndarray)
        return result

    def full_dtw(self, query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Unbanded DTW of one query against many candidates."""
        candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
        if candidates.shape[0] == 0:
            return np.empty(0)
        return dtw_batch(query, candidates, rho=None)

    def k_select(self, values: np.ndarray, k: int) -> np.ndarray:
        """Indices of the k smallest values (stable: ties by lowest index).

        Matches the simulated kernel's answer exactly — equal values land
        in the same partition bucket there, so both resolve ties by index
        and order the answer ascending by value.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("k_select expects a 1-D array")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if values.size == 0:
            raise ValueError("cannot select from an empty array")
        k = min(k, values.size)
        return np.argsort(values, kind="stable")[:k]

    def launch(
        self,
        name: str,
        n_blocks: int,
        ops_per_thread: float,
        threads_per_block: int = 256,
    ) -> float:
        """No time model: every launch is free."""
        return 0.0

    # ---------------------------------------------------------------- time
    @property
    def elapsed_s(self) -> float:
        """Always 0.0 — the native backend does not model time."""
        return 0.0

    def reset_time(self) -> None:
        """Nothing to reset."""

    # -------------------------------------------------------------- memory
    @property
    def _capacity(self) -> int:
        return (
            self.capacity_bytes
            if self.capacity_bytes is not None
            else _UNBOUNDED_BYTES
        )

    def malloc(self, nbytes: int, label: str = "buffer") -> Allocation:
        """Reserve ledger bytes; raises :class:`GpuMemoryError` when full."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        with self._lock:
            if self._allocated + nbytes > self._capacity:
                raise GpuMemoryError(
                    f"cannot allocate {nbytes} bytes for {label!r}: "
                    f"{self._allocated} of {self._capacity} bytes in use"
                )
            self._serial += 1
            handle = Allocation(label=label, nbytes=nbytes, serial=self._serial)
            self._live[handle.serial] = handle
            self._allocated += nbytes
            return handle

    def free(self, handle: Allocation) -> None:
        """Release a previous allocation (double frees are errors)."""
        with self._lock:
            if handle.serial not in self._live:
                raise KeyError(f"allocation {handle} is not live")
            del self._live[handle.serial]
            self._allocated -= handle.nbytes

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently recorded in the ledger."""
        return self._allocated

    @property
    def free_bytes(self) -> int:
        """Remaining capacity (a very large number when unbounded)."""
        return self._capacity - self._allocated

    # ------------------------------------------------------------- pickling
    # Backends cross the process boundary when a shard worker flushes its
    # state back to the serving process; locks don't pickle, so each side
    # owns a fresh one (the transfer happens from a quiesced state).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bound = self.capacity_bytes if self.capacity_bytes else "unbounded"
        return f"NativeBackend(allocated={self._allocated}, capacity={bound})"
