"""Command-line interface: regenerate any paper table/figure or run a demo.

Usage (installed as the ``repro`` package)::

    python -m repro.cli list
    python -m repro.cli run fig8 --preset small
    python -m repro.cli run table3 --preset paper --out results/table3.txt
    python -m repro.cli run fig7 --preset tiny --metrics-out results/fig7_metrics.json
    python -m repro.cli demo --dataset MALL --steps 20
    python -m repro.cli stats --dataset ROAD --steps 5
    python -m repro.cli trace --out trace.json --sensors 8 --workers 4
    python -m repro.cli ablate --smoke

Presets scale the synthetic workloads: ``tiny`` (seconds, CI-friendly),
``small`` (the benchmark defaults), ``paper`` (hours; closest to the
paper's data sizes).

``stats`` runs a short instrumented serving loop and prints the span
tree of the last forecast, SLO attainment, the tail of the structured
event log and a Prometheus-text metrics export — the quickest way to
see the observability layer (``docs/observability.md``) in action.

``trace`` runs an instrumented multi-sensor ``forecast_all`` loop and
exports the last request's span tree (one track per worker lane) plus
its event-log lines as Chrome trace-event JSON — open the file at
https://ui.perfetto.dev or ``chrome://tracing``.

``demo`` and ``stats`` accept ``--fault-profile`` (a named profile such
as ``flaky-kernels``, or a ``key=value`` spec — see
``docs/robustness.md``) to run the loop under deterministic fault
injection and watch the degradation ladder serve through it.

``ablate`` runs the system-wide ablation study (``repro.ablation``):
baseline plus one-component-off runs with stable deterministic run IDs,
a ranked importance report, and ``BENCH_ablation.json``.  Every run is
exactness-checked against the full-DTW oracle and, for components that
declare themselves pure optimisations, bit-exact forecast parity with
the baseline.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys

from . import ablation, harness, obs
from .backend import BACKEND_NAMES, make_backend
from .exec import ENGINE_NAMES
from .faults import FAULT_PROFILE_NAMES
from .core import SMiLerConfig
from .harness import AccuracyScale, SearchScale
from .service import PredictionService, ServiceConfig
from .timeseries import make_dataset

__all__ = ["main", "EXPERIMENTS"]

_SEARCH_PRESETS = {
    "tiny": SearchScale(n_sensors=1, n_points=1500, continuous_steps=3),
    "small": SearchScale(n_sensors=2, n_points=12_000, continuous_steps=8),
    "paper": SearchScale(n_sensors=8, n_points=60_000, continuous_steps=100),
}
_ACCURACY_PRESETS = {
    "tiny": AccuracyScale(
        n_sensors=1, n_points=1500, test_points=30, steps=15, horizons=(1, 5)
    ),
    "small": AccuracyScale(
        n_sensors=2, n_points=4000, test_points=140, steps=110,
        horizons=(1, 5, 10, 20, 30),
    ),
    "paper": AccuracyScale(
        n_sensors=8, n_points=40_000, test_points=1000, steps=200,
        horizons=(1, 5, 10, 15, 20, 25, 30),
    ),
}

#: experiment name -> (driver attribute, which preset family it takes)
EXPERIMENTS = {
    "fig1": ("render_fig1", None),
    "table3": ("run_table3", "search"),
    "fig7": ("run_fig7", "search"),
    "fig8": ("run_fig8", "search"),
    "fig9": ("run_fig9", "accuracy"),
    "fig10": ("run_fig10", "accuracy"),
    "fig11": ("run_fig11", "accuracy"),
    "table4": ("run_table4", "accuracy"),
    "fig12": ("run_fig12", "accuracy"),
    "fig13": ("run_fig13", "accuracy"),
    "ablation-warmstart": ("run_warmstart_ablation", "accuracy"),
    "ablation-threshold": ("run_threshold_reuse_ablation", "search"),
    "ablation-window": ("run_window_reuse_ablation", "search"),
    "ablation-parameters": ("run_parameter_sensitivity", "search"),
    "ablation-history": ("run_history_tradeoff", "accuracy"),
    "calibration": ("run_calibration_study", "accuracy"),
    "measures": ("run_measure_comparison", None),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMiLer (SIGMOD'15) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--preset", choices=("tiny", "small", "paper"), default="small",
        help="workload size (default: small)",
    )
    run.add_argument("--out", type=pathlib.Path, help="also write to this file")
    run.add_argument(
        "--metrics-out", type=pathlib.Path,
        help="run instrumented and dump a JSON metrics snapshot here",
    )

    run_all = sub.add_parser(
        "run-all", help="regenerate every table/figure into a directory"
    )
    run_all.add_argument(
        "--preset", choices=("tiny", "small", "paper"), default="small",
    )
    run_all.add_argument(
        "--out-dir", type=pathlib.Path, default=pathlib.Path("results"),
    )
    run_all.add_argument(
        "--metrics", action="store_true",
        help="also dump <experiment>_metrics.json alongside each result",
    )

    demo = sub.add_parser("demo", help="continuous prediction on one sensor")
    demo.add_argument("--dataset", default="ROAD", help="ROAD, MALL or NET")
    demo.add_argument("--steps", type=int, default=20)
    demo.add_argument(
        "--predictor", choices=("gp", "ar"), default="gp",
    )
    demo.add_argument(
        "--backend", choices=BACKEND_NAMES, default="simulated",
        help="compute backend: 'simulated' keeps the paper's cost-model "
        "accounting, 'native' is the plain-NumPy fast path",
    )
    demo.add_argument(
        "--fault-profile", default=None, metavar="PROFILE",
        help="wrap the backend in deterministic fault injection: a named "
        f"profile ({', '.join(FAULT_PROFILE_NAMES)}) or a key=value spec "
        "(see docs/robustness.md)",
    )
    demo.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="serving thread-pool lanes (one per backend shard; default: "
        "REPRO_MAX_WORKERS, else sequential) — results are bit-identical "
        "at any worker count",
    )
    demo.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help="execution engine (default: REPRO_EXEC, else resolved from "
        "the worker count) — results are bit-identical on every engine",
    )

    stats = sub.add_parser(
        "stats", help="short instrumented serving loop: trace + metrics"
    )
    stats.add_argument("--dataset", default="ROAD", help="ROAD, MALL or NET")
    stats.add_argument("--steps", type=int, default=5)
    stats.add_argument(
        "--predictor", choices=("gp", "ar"), default="gp",
    )
    stats.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="metrics output format (default: prom)",
    )
    stats.add_argument(
        "--backend", choices=BACKEND_NAMES, default="simulated",
        help="compute backend serving the loop (default: simulated)",
    )
    stats.add_argument(
        "--fault-profile", default=None, metavar="PROFILE",
        help="wrap the backend in deterministic fault injection: a named "
        f"profile ({', '.join(FAULT_PROFILE_NAMES)}) or a key=value spec "
        "(see docs/robustness.md)",
    )
    stats.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="serving thread-pool lanes (one per backend shard; default: "
        "REPRO_MAX_WORKERS, else sequential)",
    )
    stats.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help="execution engine (default: REPRO_EXEC, else resolved from "
        "the worker count)",
    )
    stats.add_argument(
        "--events", type=int, default=10, metavar="N",
        help="show the last N structured event-log lines (default: 10)",
    )

    trace = sub.add_parser(
        "trace",
        help="export one forecast_all request as Chrome trace-event JSON",
    )
    trace.add_argument(
        "--out", type=pathlib.Path, required=True, metavar="PATH",
        help="write the Chrome trace-event JSON here (open in Perfetto "
        "or chrome://tracing)",
    )
    trace.add_argument("--dataset", default="ROAD", help="ROAD, MALL or NET")
    trace.add_argument(
        "--sensors", type=int, default=8, metavar="N",
        help="fleet size (default: 8)",
    )
    trace.add_argument(
        "--backends", type=int, default=4, metavar="N",
        help="backend pool size — one worker lane per backend (default: 4)",
    )
    trace.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="serving thread-pool lanes (default: 4)",
    )
    trace.add_argument(
        "--engine", choices=ENGINE_NAMES, default=None,
        help="execution engine; 'process' shows one shard worker process "
        "per lane in the exported trace (default: REPRO_EXEC, else "
        "resolved from the worker count)",
    )
    trace.add_argument(
        "--steps", type=int, default=2,
        help="ingest_many + forecast_all rounds before the export "
        "(default: 2; the last round's forecast_all is exported)",
    )
    trace.add_argument(
        "--predictor", choices=("gp", "ar"), default="ar",
        help="per-sensor predictor (default: ar — fast, trace-friendly)",
    )
    trace.add_argument(
        "--backend", choices=BACKEND_NAMES, default="simulated",
        help="compute backend; 'simulated' adds gpu_sim async slices "
        "to the trace (default: simulated)",
    )
    trace.add_argument(
        "--fault-profile", default=None, metavar="PROFILE",
        help="wrap every backend in deterministic fault injection so "
        "degradations and breaker trips show up as trace instants",
    )
    trace.add_argument(
        "--metrics-out", type=pathlib.Path, default=None, metavar="PATH",
        help="also dump a JSON metrics snapshot here",
    )

    ablate = sub.add_parser(
        "ablate",
        help="system-wide ablation study: ranked component importance "
        "+ BENCH_ablation.json",
    )
    ablate.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workload (seconds per run; exactness checks and "
        "run-ID stability are identical to the full workload)",
    )
    ablate.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("BENCH_ablation.json"),
        metavar="PATH",
        help="where to write the JSON payload (default: BENCH_ablation.json)",
    )
    ablate.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="override the workload's baseline compute backend "
        "(default: simulated)",
    )
    ablate.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="override the workload seed (changes every run ID)",
    )
    ablate.add_argument(
        "--reuse", type=pathlib.Path, default=None, metavar="PATH",
        help="an earlier BENCH_ablation.json; runs whose stable ID "
        "appears there are not re-executed (the baseline always is)",
    )
    ablate.add_argument(
        "--list-components", action="store_true",
        help="print the validated component registry and exit",
    )
    return parser


def _run_experiment(
    name: str, preset: str, metrics_out: pathlib.Path | None = None
) -> str:
    driver_name, family = EXPERIMENTS[name]
    driver = getattr(harness, driver_name)
    was_enabled = obs.is_enabled()
    if metrics_out is not None:
        obs.reset()
        obs.enable()
    try:
        if family is None:
            result = driver()
        elif family == "search":
            result = driver(_SEARCH_PRESETS[preset])
        else:
            result = driver(_ACCURACY_PRESETS[preset])
    finally:
        if metrics_out is not None and not was_enabled:
            obs.disable()
    if metrics_out is not None:
        metrics_out.parent.mkdir(parents=True, exist_ok=True)
        metrics_out.write_text(
            json.dumps(obs.to_json(obs.get_registry()), indent=2) + "\n"
        )
    return result.render() if hasattr(result, "render") else result


def _run_demo(
    dataset: str, steps: int, predictor: str, backend: str,
    fault_profile: str | None = None, workers: int | None = None,
    engine: str | None = None,
) -> str:
    if steps <= 0:
        raise SystemExit("--steps must be positive")
    ds = make_dataset(
        dataset, n_sensors=1, n_points=3000, test_points=max(steps, 8)
    )
    history, tail = ds.sensor(0)
    # Serve through PredictionService so an injected fault degrades
    # gracefully (visible in the source column) instead of crashing.
    service = PredictionService(
        config=SMiLerConfig(predictor=predictor),
        backends=make_backend(backend, fault_profile=fault_profile),
        normalize=False,
        service_config=ServiceConfig(max_workers=workers, engine=engine),
    )
    service.register("demo", history.values)
    lines = [f"{dataset.upper()} sensor, SMiLer-{predictor.upper()} "
             f"({backend} backend), {steps} continuous steps",
             "step  prediction   truth     source"]
    try:
        for step in range(steps):
            forecast = service.forecast("demo")
            truth = float(tail[step])
            lines.append(
                f"{step:4d}   {forecast.mean:+8.4f}  {truth:+8.4f}  "
                f"{forecast.source}"
            )
            service.ingest("demo", truth)
    finally:
        service.close()
    return "\n".join(lines)


def _run_stats(
    dataset: str, steps: int, predictor: str, fmt: str, backend: str,
    fault_profile: str | None = None, workers: int | None = None,
    events: int = 10, engine: str | None = None,
) -> str:
    """A short instrumented serving loop: last-request trace + metrics."""
    if steps <= 0:
        raise SystemExit("--steps must be positive")
    ds = make_dataset(
        dataset, n_sensors=1, n_points=1500, test_points=max(steps, 8)
    )
    history, tail = ds.sensor(0)
    was_enabled = obs.is_enabled()
    obs.reset()
    obs.enable()
    try:
        service = PredictionService(
            config=SMiLerConfig(predictor=predictor),
            backends=make_backend(backend, fault_profile=fault_profile),
            min_history=min(256, history.values.size),
            service_config=ServiceConfig(max_workers=workers, engine=engine),
        )
        service.register("demo-sensor", history.values)
        service.forecast("demo-sensor")
        # The first forecast runs the full pipeline (later ones reuse the
        # ingest-time kNN answers), so its trace is the one worth showing.
        trace = service.trace_last_request()
        for step in range(steps):
            service.ingest("demo-sensor", float(tail[step]))
            service.forecast("demo-sensor")
        service.close()  # drains worker-held telemetry on the process engine
    finally:
        if not was_enabled:
            obs.disable()
    lines = [f"== first-request trace ({dataset.upper()}, "
             f"SMiLer-{predictor.upper()}) =="]
    lines.append(obs.format_span_tree(trace))
    lines.append("")
    lines.append("== slo ==")
    snapshot = obs.get_slo_tracker().snapshot()
    for class_, record in snapshot["classes"].items():
        lines.append(
            f"{class_}: attainment {record['attainment']:.3f} over "
            f"{record['window_samples']} samples (objective "
            f"{record['objective_s']:g}s, budget remaining "
            f"{record['error_budget_remaining']:+.2f})"
        )
    if snapshot["served_degraded"]:
        lines.append(
            "served degraded: " + ", ".join(
                f"{rung}={count}"
                for rung, count in sorted(snapshot["served_degraded"].items())
            )
        )
    event_log = obs.get_event_log()
    if events > 0:
        lines.append("")
        lines.append(f"== last {events} events ==")
        tail = event_log.to_jsonl(event_log.tail(events)).rstrip("\n")
        lines.append(tail if tail else "(no events)")
    lines.append("")
    lines.append("== metrics ==")
    if fmt == "json":
        lines.append(json.dumps(service.metrics(), indent=2))
    else:
        lines.append(obs.to_prometheus(obs.get_registry()).rstrip("\n"))
    return "\n".join(lines)


def _run_trace(
    out: pathlib.Path,
    dataset: str,
    sensors: int,
    n_backends: int,
    workers: int,
    steps: int,
    predictor: str,
    backend: str,
    fault_profile: str | None = None,
    metrics_out: pathlib.Path | None = None,
    engine: str | None = None,
) -> str:
    """Instrumented multi-sensor loop → Chrome trace-event export."""
    if steps <= 0:
        raise SystemExit("--steps must be positive")
    if sensors <= 0:
        raise SystemExit("--sensors must be positive")
    if n_backends <= 0:
        raise SystemExit("--backends must be positive")
    ds = make_dataset(
        dataset, n_sensors=sensors, n_points=1200, test_points=max(steps, 8)
    )
    was_enabled = obs.is_enabled()
    obs.reset()
    obs.enable()
    try:
        service = PredictionService(
            config=SMiLerConfig(predictor=predictor),
            backends=[
                make_backend(backend, fault_profile=fault_profile)
                for _ in range(n_backends)
            ],
            min_history=256,
            service_config=ServiceConfig(max_workers=workers, engine=engine),
        )
        tails = {}
        for i in range(sensors):
            history, tail = ds.sensor(i)
            sensor_id = f"{dataset.lower()}-{i:03d}"
            service.register(sensor_id, history.values)
            tails[sensor_id] = tail
        for step in range(steps):
            if step:
                service.ingest_many(
                    {sid: float(t[step - 1]) for sid, t in tails.items()}
                )
            batch = service.forecast_all()
        root = service.trace_last_request()
        service.close()  # drains worker-held telemetry on the process engine
        request_id = str(root.attrs.get("request_id", "")) or None
        obs.write_chrome_trace(
            out, root, event_log=obs.get_event_log(), request_id=request_id
        )
        if metrics_out is not None:
            metrics_out.parent.mkdir(parents=True, exist_ok=True)
            metrics_out.write_text(
                json.dumps(obs.to_json(obs.get_registry()), indent=2) + "\n"
            )
    finally:
        if not was_enabled:
            obs.disable()
    n_lanes = sum(1 for child in root.children if child.name == "lane")
    lines = [
        f"wrote {out}: request {request_id}, {len(batch)} forecasts over "
        f"{n_lanes} lanes ({backend} backend, workers={workers})",
        "open it at https://ui.perfetto.dev or chrome://tracing",
    ]
    if metrics_out is not None:
        lines.append(f"metrics snapshot: {metrics_out}")
    return "\n".join(lines)


def _list_components() -> str:
    from .harness.reporting import render_table

    rows = [
        [
            component.name,
            component.layer,
            "yes" if component.claims_exact else "no",
            ", ".join(f"{k}={v!r}" for k, v in component.patch),
        ]
        for component in ablation.default_registry()
    ]
    return render_table(
        ["component", "layer", "exact", "patch"],
        rows,
        title="Ablatable components (patch = the knobs the off-run flips)",
    )


def _run_ablate(
    smoke: bool,
    out: pathlib.Path,
    backend: str | None = None,
    seed: int | None = None,
    reuse_path: pathlib.Path | None = None,
) -> str:
    """Run the study, print the ranked report, write the JSON payload."""
    workload = ablation.SMOKE_WORKLOAD if smoke else ablation.AblationWorkload()
    overrides: dict[str, object] = {}
    if backend is not None:
        overrides["backend"] = backend
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        workload = dataclasses.replace(workload, **overrides)
    reuse = None
    if reuse_path is not None:
        stored = json.loads(reuse_path.read_text())
        reuse = {
            row["run_id"]: row
            for row in stored.get("runs", [])
            if row.get("component") is not None
        }
    study = ablation.run_study(
        workload, reuse=reuse, progress=lambda line: print(line, flush=True)
    )
    payload = ablation.bench_payload(study, smoke=smoke, cpu_count=os.cpu_count())
    if out.parent != pathlib.Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    report = ablation.render_report(study)
    return f"{report}\nwrote {out}"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "run":
        report = _run_experiment(args.experiment, args.preset, args.metrics_out)
        print(report)
        if args.out:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(report + "\n")
        return 0
    if args.command == "run-all":
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for name in sorted(EXPERIMENTS):
            print(f"== {name} ({args.preset}) ==", flush=True)
            metrics_out = None
            if args.metrics:
                metrics_out = (
                    args.out_dir / f"{name.replace('-', '_')}_metrics.json"
                )
            report = _run_experiment(name, args.preset, metrics_out)
            print(report)
            (args.out_dir / f"{name.replace('-', '_')}.txt").write_text(
                report + "\n"
            )
        return 0
    if args.command == "demo":
        print(_run_demo(
            args.dataset, args.steps, args.predictor, args.backend,
            args.fault_profile, args.workers, args.engine,
        ))
        return 0
    if args.command == "stats":
        print(_run_stats(
            args.dataset, args.steps, args.predictor, args.format,
            args.backend, args.fault_profile, args.workers, args.events,
            args.engine,
        ))
        return 0
    if args.command == "trace":
        print(_run_trace(
            args.out, args.dataset, args.sensors, args.backends,
            args.workers, args.steps, args.predictor, args.backend,
            args.fault_profile, args.metrics_out, args.engine,
        ))
        return 0
    if args.command == "ablate":
        if args.list_components:
            print(_list_components())
            return 0
        print(_run_ablate(
            args.smoke, args.out, args.backend, args.seed, args.reuse,
        ))
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
