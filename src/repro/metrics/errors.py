"""Evaluation measures (Section 6.3.1): MAE and MNLPD (plus RMSE).

* **MAE** — mean absolute error between predicted means and true values,
* **MNLPD** — mean negative log predictive density: the average of
  ``-log N(y_true; mean, variance)``.  Scores *both* accuracy and the
  quality of the predictive uncertainty; over-confident wrong predictions
  are punished hard (this is where SMiLer-GP beats SMiLer-AR/LazyKNN).

Smaller is better for all measures.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mae", "rmse", "mnlpd", "nlpd_terms"]

_LOG_2PI = np.log(2.0 * np.pi)


def _paired(truth, predictions) -> tuple[np.ndarray, np.ndarray]:
    truth = np.asarray(truth, dtype=np.float64).ravel()
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    if truth.size != predictions.size:
        raise ValueError(
            f"{truth.size} true values but {predictions.size} predictions"
        )
    if truth.size == 0:
        raise ValueError("cannot score zero predictions")
    return truth, predictions


def mae(truth, predictions) -> float:
    """Mean absolute error."""
    truth, predictions = _paired(truth, predictions)
    return float(np.mean(np.abs(truth - predictions)))


def rmse(truth, predictions) -> float:
    """Root mean squared error."""
    truth, predictions = _paired(truth, predictions)
    return float(np.sqrt(np.mean((truth - predictions) ** 2)))


def nlpd_terms(truth, means, variances) -> np.ndarray:
    """Per-point negative log predictive density under ``N(mean, var)``."""
    truth, means = _paired(truth, means)
    variances = np.asarray(variances, dtype=np.float64).ravel()
    if variances.size != truth.size:
        raise ValueError(
            f"{truth.size} true values but {variances.size} variances"
        )
    if (variances <= 0).any():
        raise ValueError("predictive variances must be positive")
    return 0.5 * (_LOG_2PI + np.log(variances) + (truth - means) ** 2 / variances)


def mnlpd(truth, means, variances) -> float:
    """Mean negative log predictive density (smaller is better)."""
    return float(np.mean(nlpd_terms(truth, means, variances)))
