"""Calibration diagnostics for Gaussian predictive distributions.

MNLPD (Section 6.3.1) compresses uncertainty quality into one number;
these diagnostics unpack it, answering the question an operator actually
asks of SMiLer's intervals ("do my 95% bands contain 95% of outcomes?"):

* :func:`interval_coverage` — empirical coverage of central intervals,
* :func:`pit_values` — probability integral transform; uniform iff the
  predictive distributions are perfectly calibrated,
* :func:`calibration_error` — mean |empirical - nominal| coverage over a
  grid of levels (0 = perfectly calibrated),
* :func:`sharpness` — mean predictive standard deviation (narrower is
  better *given* calibration).
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf, erfinv

__all__ = [
    "interval_coverage",
    "pit_values",
    "calibration_error",
    "sharpness",
]


def _validate(truth, means, variances):
    truth = np.asarray(truth, dtype=np.float64).ravel()
    means = np.asarray(means, dtype=np.float64).ravel()
    variances = np.asarray(variances, dtype=np.float64).ravel()
    if not truth.size == means.size == variances.size:
        raise ValueError(
            f"mismatched lengths: {truth.size}, {means.size}, {variances.size}"
        )
    if truth.size == 0:
        raise ValueError("cannot assess calibration of zero predictions")
    if (variances <= 0).any():
        raise ValueError("predictive variances must be positive")
    return truth, means, variances


def interval_coverage(truth, means, variances, level: float = 0.95) -> float:
    """Fraction of truths inside the central ``level`` interval."""
    truth, means, variances = _validate(truth, means, variances)
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    z = np.sqrt(2.0) * erfinv(level)
    half_width = z * np.sqrt(variances)
    inside = np.abs(truth - means) <= half_width
    return float(np.mean(inside))


def pit_values(truth, means, variances) -> np.ndarray:
    """``Phi((y - mean) / std)`` per prediction; Uniform(0,1) iff calibrated."""
    truth, means, variances = _validate(truth, means, variances)
    z = (truth - means) / np.sqrt(variances)
    return 0.5 * (1.0 + erf(z / np.sqrt(2.0)))


def calibration_error(
    truth, means, variances, levels: np.ndarray | None = None
) -> float:
    """Mean absolute gap between empirical and nominal coverage."""
    if levels is None:
        levels = np.linspace(0.1, 0.9, 9)
    levels = np.asarray(levels, dtype=np.float64)
    if ((levels <= 0) | (levels >= 1)).any():
        raise ValueError("levels must lie strictly inside (0, 1)")
    gaps = [
        abs(interval_coverage(truth, means, variances, level=level) - level)
        for level in levels
    ]
    return float(np.mean(gaps))


def sharpness(variances) -> float:
    """Mean predictive standard deviation (smaller = sharper)."""
    variances = np.asarray(variances, dtype=np.float64).ravel()
    if variances.size == 0:
        raise ValueError("cannot assess sharpness of zero predictions")
    if (variances <= 0).any():
        raise ValueError("predictive variances must be positive")
    return float(np.mean(np.sqrt(variances)))
