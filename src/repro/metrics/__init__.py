"""Evaluation measures: MAE, RMSE, MNLPD, calibration diagnostics."""

from .calibration import (
    calibration_error,
    interval_coverage,
    pit_values,
    sharpness,
)
from .errors import mae, mnlpd, nlpd_terms, rmse

__all__ = [
    "calibration_error",
    "interval_coverage",
    "pit_values",
    "sharpness",
    "mae",
    "mnlpd",
    "nlpd_terms",
    "rmse",
]
