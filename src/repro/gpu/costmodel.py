"""Cost model for the simulated GPU (substitution for CUDA hardware).

The paper measures wall-clock on a GeForce GTX TITAN; offline we cannot.
Instead every kernel reports its *operation counts* (DP cells expanded,
lower-bound positions touched, elements partitioned) and this model turns
them into simulated seconds using the published shape of the device:

* blocks are scheduled onto ``n_sms`` streaming multiprocessors in waves,
* threads inside a block run ``cores_per_sm``-wide, so a block's serial
  cycle count is ``ops_per_thread * ceil(threads / cores_per_sm)``,
* every launch pays a fixed overhead,
* the CPU baseline is a single serial stream of operations.

Why this substitution preserves the paper's results: Figs. 7/8 and
Table 3 compare methods whose gaps come from *how much work* they do
(pruned vs full scans, index reuse vs recomputation) and *how parallel*
that work is — exactly the two quantities the model accounts for.
Absolute seconds differ from the paper; ratios and orderings survive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs.hooks import observe_kernel_launch

__all__ = ["DeviceSpec", "CPU_SPEC", "GpuCostModel", "CpuCostModel"]


@dataclass(frozen=True)
class DeviceSpec:
    """Published specification of the simulated device.

    Defaults follow the paper's GeForce GTX TITAN (14 SMX, 192 cores each,
    837 MHz, 6 GB) and model one abstract "operation" (a DP cell, an LB
    term, a comparison) as one core-cycle.
    """

    name: str = "GeForce GTX TITAN (simulated)"
    n_sms: int = 14
    cores_per_sm: int = 192
    clock_hz: float = 837e6
    memory_bytes: int = 6 * 1024**3
    launch_overhead_s: float = 5e-6
    shared_memory_bytes: int = 48 * 1024
    #: False (default): blocks run in waves of ``n_sms`` — the right model
    #: for a single isolated launch.  True: total block work is spread
    #: evenly over the SMs (fractional waves) — the right model when many
    #: sensors' kernels are batched back-to-back and the scheduler
    #: backfills idle SMs (the fleet regime of Section 4.4, used by the
    #: Fig. 7/8 and Table 3 drivers).
    work_conserving: bool = False

    @property
    def total_cores(self) -> int:
        """Total cores across all SMs."""
        return self.n_sms * self.cores_per_sm


#: The paper's CPU host: Intel Core i7-3820 (3.6 GHz); we credit the
#: serial baseline ~2 abstract ops per cycle for superscalar execution.
CPU_SPEC = DeviceSpec(
    name="Intel Core i7-3820 (simulated)",
    n_sms=1,
    cores_per_sm=1,
    clock_hz=2 * 3.6e9,
    memory_bytes=64 * 1024**3,
    launch_overhead_s=0.0,
    shared_memory_bytes=0,
)


@dataclass
class GpuCostModel:
    """Accumulates simulated GPU time from kernel launch reports."""

    spec: DeviceSpec = field(default_factory=DeviceSpec)
    elapsed_s: float = 0.0
    per_kernel_s: dict[str, float] = field(default_factory=dict)
    launches: int = 0

    def launch(
        self,
        name: str,
        n_blocks: int,
        ops_per_thread: float,
        threads_per_block: int = 256,
    ) -> float:
        """Record one kernel launch; returns its simulated duration.

        Blocks execute in waves of ``n_sms``; inside a block the threads
        time-slice over the SM's cores (SIMD serialisation of Section 4.4
        is the caller's job: it must report the *serialised* ops per
        thread if its threads diverge).
        """
        if n_blocks <= 0:
            return 0.0
        if threads_per_block <= 0:
            raise ValueError(f"threads_per_block must be positive, got {threads_per_block}")
        slices = math.ceil(threads_per_block / self.spec.cores_per_sm)
        block_cycles = ops_per_thread * slices
        if self.spec.work_conserving:
            occupancy = n_blocks / self.spec.n_sms
        else:
            occupancy = math.ceil(n_blocks / self.spec.n_sms)
        duration = (
            self.spec.launch_overhead_s
            + occupancy * block_cycles / self.spec.clock_hz
        )
        self.elapsed_s += duration
        self.per_kernel_s[name] = self.per_kernel_s.get(name, 0.0) + duration
        self.launches += 1
        observe_kernel_launch(name, duration, n_blocks, occupancy * block_cycles)
        return duration

    def reset(self) -> None:
        """Clear accumulated state."""
        self.elapsed_s = 0.0
        self.per_kernel_s = {}
        self.launches = 0


@dataclass
class CpuCostModel:
    """Serial cost stream for the CPU scan baselines."""

    spec: DeviceSpec = field(default_factory=lambda: CPU_SPEC)
    elapsed_s: float = 0.0

    def execute(self, ops: float) -> float:
        """Record ``ops`` serial operations; returns their duration."""
        duration = ops / self.spec.clock_hz
        self.elapsed_s += duration
        return duration

    def reset(self) -> None:
        """Clear accumulated state."""
        self.elapsed_s = 0.0
