"""Simulated GPU kernels: DTW verification and k-selection.

Each function performs the kernel's numerical work with vectorised NumPy
(the data-parallel shape of the CUDA grid) and reports its operation
counts to the device's cost model.  Abstract-op weights per primitive are
module constants so the cost model stays inspectable and testable.
"""

from __future__ import annotations

import numpy as np

from ..dtw.distance import dtw_batch, dtw_batch_pruned
from .device import GpuDevice

__all__ = [
    "OPS_PER_DTW_CELL",
    "OPS_PER_LB_TERM",
    "OPS_PER_SELECT_ELEM",
    "GLOBAL_MEMORY_PENALTY",
    "THREADS_PER_BLOCK",
    "dtw_verification_kernel",
    "full_dtw_kernel",
    "k_select_kernel",
]

#: Abstract operations per banded-DTW DP cell (distance + 3-way min + add).
OPS_PER_DTW_CELL = 8.0
#: Abstract operations per LB_Keogh position (two clips, square, add).
OPS_PER_LB_TERM = 6.0
#: Abstract operations per element per k-selection pass.
OPS_PER_SELECT_ELEM = 2.0
#: Slowdown for kernels whose working set cannot live in shared memory.
#: The unbanded warping matrix of GPUScan exceeds the 48 KB shared memory,
#: forcing global-memory traffic ([60] reports ~4x).
GLOBAL_MEMORY_PENALTY = 4.0
#: CUDA block size used throughout (Appendix B.2's "small batch").
THREADS_PER_BLOCK = 256


def dtw_verification_kernel(
    device: GpuDevice,
    query: np.ndarray,
    candidates: np.ndarray,
    rho: int,
    cutoff: float | None = None,
    lb_terms: np.ndarray | None = None,
) -> np.ndarray:
    """Banded DTW of one query against many candidates (Algorithm 2).

    One thread per candidate; the compressed ``2 x (2*rho + 2)`` warping
    matrix fits in shared memory, so no global-memory penalty applies.

    With a ``cutoff`` the kernel early-abandons candidates whose partial
    path cost plus the admissible ``lb_terms`` tail exceeds it (see
    :func:`~repro.dtw.distance.dtw_batch_pruned`; abandoned candidates
    report ``inf``).  Cost attribution then charges the *mean* DP cells
    actually expanded per thread — a work-conserving assumption: threads
    of a block whose candidates abandoned are modelled as recycled onto
    the remaining work rather than idling until block exit.
    """
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    n = candidates.shape[0]
    if n == 0:
        return np.empty(0)
    d = int(np.asarray(query).size)
    n_blocks = -(-n // THREADS_PER_BLOCK)
    if cutoff is None:
        cells = d * min(d, 2 * rho + 1)
        device.launch(
            "dtw_verify",
            n_blocks=n_blocks,
            ops_per_thread=cells * OPS_PER_DTW_CELL,
            threads_per_block=THREADS_PER_BLOCK,
        )
        return dtw_batch(query, candidates, rho)
    distances, cells_expanded = dtw_batch_pruned(
        query, candidates, rho, cutoff=cutoff, lb_terms=lb_terms,
        return_cells=True,
    )
    device.launch(
        "dtw_verify",
        n_blocks=n_blocks,
        ops_per_thread=(cells_expanded / n) * OPS_PER_DTW_CELL,
        threads_per_block=THREADS_PER_BLOCK,
    )
    return distances


def full_dtw_kernel(
    device: GpuDevice, query: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Unbanded DTW (the GPUScan baseline of [60], Section 6.2.1).

    The full ``d x d`` warping matrix cannot live in shared memory, so the
    kernel pays the global-memory penalty on top of the larger cell count.
    """
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    n = candidates.shape[0]
    if n == 0:
        return np.empty(0)
    d = int(np.asarray(query).size)
    n_blocks = -(-n // THREADS_PER_BLOCK)
    device.launch(
        "dtw_full",
        n_blocks=n_blocks,
        ops_per_thread=d * d * OPS_PER_DTW_CELL * GLOBAL_MEMORY_PENALTY,
        threads_per_block=THREADS_PER_BLOCK,
    )
    return dtw_batch(query, candidates, rho=None)


def k_select_kernel(
    device: GpuDevice, values: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the k smallest values via distributive partitioning [3].

    Mirrors the paper's two improvements over [3]: one block handles one
    query's selection (so many selections run concurrently as separate
    launches here) and *all* k smallest are returned, not just the k-th.

    The algorithm range-partitions into 256 buckets, keeps every bucket
    strictly below the one containing the k-th value, and recurses into
    that pivot bucket; each pass touches the surviving elements once.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("k_select expects a 1-D array")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = values.size
    if n == 0:
        raise ValueError("cannot select from an empty array")
    k = min(k, n)

    n_buckets = 256
    selected: list[np.ndarray] = []
    active = np.arange(n)
    remaining = k
    passes = 0
    # Guaranteed to terminate: each pass either resolves ties exactly or
    # strictly shrinks the active pivot bucket.
    while remaining > 0:
        passes += 1
        active_values = values[active]
        lo = float(active_values.min())
        hi = float(active_values.max())
        if lo == hi or passes > 64:
            # All remaining candidates tie (or precision exhausted):
            # take the first `remaining` of them.
            selected.append(active[:remaining])
            remaining = 0
            break
        scale = (n_buckets - 1) / (hi - lo)
        buckets = np.minimum(
            ((active_values - lo) * scale).astype(np.int64), n_buckets - 1
        )
        counts = np.bincount(buckets, minlength=n_buckets)
        cumulative = np.cumsum(counts)
        pivot = int(np.searchsorted(cumulative, remaining))
        below = buckets < pivot
        selected.append(active[below])
        remaining -= int(below.sum())
        active = active[buckets == pivot]

    device.launch(
        "k_select",
        n_blocks=1,
        ops_per_thread=passes * n * OPS_PER_SELECT_ELEM / THREADS_PER_BLOCK,
        threads_per_block=THREADS_PER_BLOCK,
    )
    chosen = np.concatenate(selected) if selected else np.empty(0, dtype=int)
    order = np.argsort(values[chosen], kind="stable")
    return chosen[order]
