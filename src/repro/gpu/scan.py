"""GPU scanning baselines: GPUScan [60] and FastGPUScan (Section 6.2.1).

Both compute DTW between the query and *every* candidate segment, then
k-select on the device:

* **GPUScan** — unbanded DTW (no Sakoe-Chiba constraint), paying both the
  quadratic cell count and the global-memory penalty,
* **FastGPUScan** — banded DTW via the compressed-warping-matrix kernel.

These are the competitors the SMiLer Index beats by about an order of
magnitude in Fig. 7.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..dtw.knn import KnnResult, ScanStats

__all__ = ["gpu_scan", "fast_gpu_scan"]


def _coerce(backend):
    # Imported lazily: ``repro.backend`` imports ``gpu.device``, which
    # triggers ``gpu/__init__`` (and therefore this module) first.
    from ..backend.base import as_backend

    return as_backend(backend)


def _segments_and_starts(
    series: np.ndarray, d: int, exclude: tuple[int, int] | None
) -> tuple[np.ndarray, np.ndarray]:
    series = np.asarray(series, dtype=np.float64)
    if d > series.size:
        raise ValueError(
            f"query of length {d} longer than series of length {series.size}"
        )
    starts = np.arange(series.size - d + 1)
    if exclude is not None:
        lo, hi = exclude
        overlap = (starts < hi) & (starts + d > lo)
        starts = starts[~overlap]
    if starts.size == 0:
        raise ValueError("no candidate segments to search")
    return sliding_window_view(series, d)[starts], starts


def gpu_scan(
    backend,
    query,
    series,
    k: int,
    exclude: tuple[int, int] | None = None,
) -> KnnResult:
    """GPUScan: unbanded DTW on all segments, then device k-selection."""
    backend = _coerce(backend)
    query = np.asarray(query, dtype=np.float64)
    segments, starts = _segments_and_starts(series, query.size, exclude)
    distances = backend.full_dtw(query, segments)
    top = backend.k_select(distances, min(k, starts.size))
    stats = ScanStats(
        dtw_cells=int(starts.size * query.size**2),
        candidates_total=int(starts.size),
        candidates_verified=int(starts.size),
    )
    return KnnResult(starts[top], distances[top], stats)


def fast_gpu_scan(
    backend,
    query,
    series,
    k: int,
    rho: int,
    exclude: tuple[int, int] | None = None,
) -> KnnResult:
    """FastGPUScan: banded DTW on all segments, then device k-selection."""
    backend = _coerce(backend)
    query = np.asarray(query, dtype=np.float64)
    segments, starts = _segments_and_starts(series, query.size, exclude)
    distances = backend.dtw_verification(query, segments, rho)
    top = backend.k_select(distances, min(k, starts.size))
    d = query.size
    stats = ScanStats(
        dtw_cells=int(starts.size * d * min(d, 2 * rho + 1)),
        candidates_total=int(starts.size),
        candidates_verified=int(starts.size),
    )
    return KnnResult(starts[top], distances[top], stats)
