"""Simulated GPU device: memory accounting + kernel-time accounting.

:class:`GpuDevice` is the substrate every GPU-resident structure in this
reproduction runs on.  Numerical work happens in vectorised NumPy (the
data-parallel shape of a CUDA grid); the device records

* **time** — via :class:`repro.gpu.costmodel.GpuCostModel`, and
* **memory** — via a malloc/free ledger bounded by the 6 GB the paper's
  GTX TITAN offers, which drives the "max sensors per GPU" capacity
  analysis of Fig. 12(c).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..obs.hooks import observe_gpu_memory
from .costmodel import DeviceSpec, GpuCostModel

__all__ = ["GpuDevice", "GpuMemoryError", "Allocation"]


class GpuMemoryError(MemoryError):
    """Raised when an allocation exceeds the device's global memory."""


@dataclass(frozen=True)
class Allocation:
    """Handle for one device-memory allocation."""

    label: str
    nbytes: int
    serial: int


class GpuDevice:
    """One simulated GPU: launch kernels, allocate global memory."""

    def __init__(self, spec: DeviceSpec | None = None) -> None:
        self.spec = spec or DeviceSpec()
        self.cost = GpuCostModel(spec=self.spec)
        self._allocated = 0
        self._serial = 0
        self._live: dict[int, Allocation] = {}
        # Serializes the malloc/free ledger: several SimulatedGpuBackend
        # wrappers may share one device (``as_backend(device)``), so the
        # wrapper-level locks alone cannot protect the serial counter.
        self._mem_lock = threading.RLock()

    # ------------------------------------------------------------- kernels
    def launch(
        self,
        name: str,
        n_blocks: int,
        ops_per_thread: float,
        threads_per_block: int = 256,
    ) -> float:
        """Account one kernel launch; see :class:`GpuCostModel.launch`."""
        return self.cost.launch(name, n_blocks, ops_per_thread, threads_per_block)

    @property
    def elapsed_s(self) -> float:
        """Total simulated kernel time since the last reset."""
        return self.cost.elapsed_s

    def reset_time(self) -> None:
        """Zero the simulated-time ledger."""
        self.cost.reset()

    # -------------------------------------------------------------- memory
    def malloc(self, nbytes: int, label: str = "buffer") -> Allocation:
        """Reserve global memory; raises :class:`GpuMemoryError` when full."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {nbytes}")
        with self._mem_lock:
            if self._allocated + nbytes > self.spec.memory_bytes:
                raise GpuMemoryError(
                    f"cannot allocate {nbytes} bytes for {label!r}: "
                    f"{self._allocated} of {self.spec.memory_bytes} bytes in use"
                )
            self._serial += 1
            handle = Allocation(label=label, nbytes=nbytes, serial=self._serial)
            self._live[handle.serial] = handle
            self._allocated += nbytes
            observe_gpu_memory(self._allocated)
            return handle

    def free(self, handle: Allocation) -> None:
        """Release a previous allocation (idempotent frees are errors)."""
        with self._mem_lock:
            if handle.serial not in self._live:
                raise KeyError(f"allocation {handle} is not live")
            del self._live[handle.serial]
            self._allocated -= handle.nbytes
            observe_gpu_memory(self._allocated)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated on the device."""
        return self._allocated

    @property
    def free_bytes(self) -> int:
        """Bytes still available on the device."""
        return self.spec.memory_bytes - self._allocated

    def live_allocations(self) -> list[Allocation]:
        """Live allocations in allocation order."""
        return sorted(self._live.values(), key=lambda a: a.serial)

    # ------------------------------------------------------------- pickling
    # Devices cross the process boundary when a shard worker flushes its
    # state back to the serving process; locks don't pickle, so each side
    # owns a fresh one (the transfer happens from a quiesced state).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_mem_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mem_lock = threading.RLock()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuDevice({self.spec.name!r}, allocated={self._allocated}, "
            f"elapsed={self.cost.elapsed_s:.6f}s)"
        )
