"""Simulated GPU substrate: device, cost model, kernels, scan baselines."""

from .costmodel import CPU_SPEC, CpuCostModel, DeviceSpec, GpuCostModel
from .device import Allocation, GpuDevice, GpuMemoryError
from .kernels import (
    GLOBAL_MEMORY_PENALTY,
    OPS_PER_DTW_CELL,
    OPS_PER_LB_TERM,
    OPS_PER_SELECT_ELEM,
    THREADS_PER_BLOCK,
    dtw_verification_kernel,
    full_dtw_kernel,
    k_select_kernel,
)
from .scan import fast_gpu_scan, gpu_scan

__all__ = [
    "CPU_SPEC",
    "CpuCostModel",
    "DeviceSpec",
    "GpuCostModel",
    "Allocation",
    "GpuDevice",
    "GpuMemoryError",
    "GLOBAL_MEMORY_PENALTY",
    "OPS_PER_DTW_CELL",
    "OPS_PER_LB_TERM",
    "OPS_PER_SELECT_ELEM",
    "THREADS_PER_BLOCK",
    "dtw_verification_kernel",
    "full_dtw_kernel",
    "k_select_kernel",
    "fast_gpu_scan",
    "gpu_scan",
]
