"""Process-per-shard execution engine.

One long-lived worker process per backend shard, each owning its
shard's :class:`~repro.core.smiler.SMiLer` state, forked lazily on the
first batch after construction or after any fleet mutation.  The hot
NumPy path (DTW verification, GP solves) then runs with no GIL
contention at all, which is what the thread engine cannot deliver on
CPU-bound simulated backends.

Correctness model
-----------------
*Bit identity.*  Each worker executes exactly its lane's op stream, in
op order, through the same interpreter
(:func:`repro.exec.base.execute_ops`) the inline engine uses — so every
backend's kernel sequence, simulated-time ledger and fault-injection
tick stream is identical to a sequential run.  Results cross back as
JSON (which round-trips every finite float exactly), so forecasts are
bit-identical to the inline engine's.

*Authority.*  While a generation of workers is live, each worker's copy
of its shard is authoritative and the parent's is stale.  Everything
that needs the parent's view current — ``sensor()`` / ``status()`` /
``snapshot()`` / ``register()`` / ``restore()`` / ``evacuate()`` /
``close()`` — quiesces first: each worker drains its telemetry, ships
its shard state back in one pickle (preserving the ``smiler.backend is
pool.backends[i]`` identity), unlinks its shared memory and exits; the
next batch re-forks.  Workers run with failover disabled, so placements
never change while a generation is live and the parent's placement
table always routes singles to the right worker.

*Crash semantics.*  Every sensor's (normalised) series lives in a
``multiprocessing.shared_memory`` block whose committed length the
worker advances only at batch boundaries (see :mod:`repro.exec.shm`).
If a worker dies or hangs (``ServiceConfig.engine_timeout_s``), the
parent marks the shard's backend unhealthy, flushes the survivors,
rebuilds the dead shard's sensors from their committed series onto
healthy backends (the evacuation path: ensemble auto-tuning state is
rebuilt fresh) and replays the dead lane's ops in-process, where the
degradation ladder applies as usual.  A crashed batch is therefore
served — degraded, not bit-identical — instead of hanging.

Wire protocol: JSON command frames (:mod:`repro.exec.wire`); the single
pickled frame is the shard-state transfer on FLUSH, sent by our own
worker from a quiesced state.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import pickle
import signal
import threading
import time
import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING

from ..obs import context as reqctx
from ..obs import hooks as obs
from ..obs.tracing import Span
from .base import ExecutionEngine, LaneTask, execute_ops
from .shm import SharedSeriesArena, read_committed_series, unlink_block
from .wire import (
    error_from_wire,
    error_to_wire,
    forecast_from_wire,
    forecast_to_wire,
    recv_json,
    send_json,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> exec)
    from multiprocessing.connection import Connection

    from ..service import PredictionService

__all__ = ["ProcessShardEngine"]

logger = logging.getLogger(__name__)


class _WorkerLost(RuntimeError):
    """A shard worker died or exceeded ``engine_timeout_s``."""


@dataclasses.dataclass
class _Worker:
    """Parent-side handle on one live shard worker."""

    process: multiprocessing.process.BaseProcess
    conn: "Connection"
    backend_index: int
    sensor_ids: tuple[str, ...]
    shm: dict  # sensor_id -> {"name", "capacity"}
    pid: int


def _context_to_wire(context: reqctx.RequestContext) -> dict:
    return {
        "request_id": context.request_id,
        "entry_point": context.entry_point,
        "started_s": context.started_s,
    }


def _context_from_wire(record: dict) -> reqctx.RequestContext:
    return reqctx.RequestContext(
        request_id=record["request_id"],
        entry_point=record["entry_point"],
        started_s=record["started_s"],
    )


def _set_backend_elapsed(backend, elapsed_s: float, injected_s: float) -> None:
    """Mirror a worker's simulated-time ledger onto the parent's stale
    backend copy, so ``pool.elapsed_s`` / benchmarks read true fleet
    time between batches without a flush."""
    from ..faults.backend import FaultInjectingBackend

    if isinstance(backend, FaultInjectingBackend):
        backend._injected_s = injected_s
        backend = backend.inner
        elapsed_s -= injected_s
    device = getattr(backend, "device", None)
    if device is not None:  # NativeBackend keeps no ledger (elapsed is 0.0)
        device.cost.elapsed_s = elapsed_s


def _finalize_generation(state: dict) -> None:
    """GC/exit backstop: reap worker processes and unlink shared memory.

    ``state`` is a plain mutable container (never the service or engine,
    which would defeat the weakref) kept current by the engine.
    """
    for process in state["processes"]:
        if process.is_alive():
            process.terminate()
    for process in state["processes"]:
        process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - stuck in a syscall
            process.kill()
            process.join(timeout=1.0)
    for name in state["shm_names"]:
        unlink_block(name)
    state["processes"] = []
    state["shm_names"] = []


class ProcessShardEngine(ExecutionEngine):
    """One worker process per backend shard, shared-memory durability."""

    name = "process"

    def __init__(self, service: "PredictionService") -> None:
        # Deliberately not calling super().__init__: the engine must hold
        # the service weakly (service -> engine is strong) or the pair
        # would only die by cycle collection, after the finalizer below
        # had already become unreachable.
        self._service_ref = weakref.ref(service)
        #: Serializes batches, singles and lifecycle against each other.
        #: Lock order: this lock is always taken *before* the service's
        #: admission lock, never after (see ``PredictionService.__init__``).
        self._op_lock = threading.RLock()
        self._workers: dict[int, _Worker] = {}
        self._cleanup_state: dict = {"processes": [], "shm_names": []}
        weakref.finalize(service, _finalize_generation, self._cleanup_state)

    @property
    def service(self) -> "PredictionService":
        service = self._service_ref()
        if service is None:  # pragma: no cover - engine outlived service
            raise RuntimeError("the owning PredictionService no longer exists")
        return service

    @property
    def _service(self) -> "PredictionService":
        # The base class stores a strong reference under this name; keep
        # the attribute contract for its concrete helpers (reset_time).
        return self.service

    # ------------------------------------------------------------ lifecycle
    def mutating(self):
        @contextmanager
        def _mutating():
            with self._op_lock:
                self._quiesce()
                yield

        return _mutating()

    def refresh(self) -> None:
        with self._op_lock:
            self._quiesce()

    def close(self) -> None:
        with self._op_lock:
            self._quiesce()

    def reset_time(self) -> None:
        with self._op_lock:
            lost = []
            for index in sorted(self._workers):
                worker = self._workers[index]
                try:
                    send_json(worker.conn, {"op": "reset_time"})
                    self._await_reply(worker)
                except (_WorkerLost, OSError, BrokenPipeError):
                    lost.append(worker)
            if lost:
                self._handle_lost(lost)
            # Parent copies (and workerless backends) zero locally; live
            # workers replace these wholesale at the next flush anyway.
            self.service._pool.reset_time()

    def worker_pids(self) -> dict[int, int]:
        """Live worker pids by backend index (test/diagnostic hook)."""
        with self._op_lock:
            return {i: w.pid for i, w in sorted(self._workers.items())}

    # ------------------------------------------------------------- batches
    def run_batch(self, entry_point, scope, tasks):
        with self._op_lock:
            return self._run_batch_locked(entry_point, scope, tasks)

    def _run_batch_locked(self, entry_point, scope, tasks):
        service = self.service
        self._ensure_generation()
        if not self._workers:
            # Nothing hosted (or nothing to fork): the inline path is
            # definitionally identical.
            from .local import _run_lanes

            return _run_lanes(self, entry_point, scope, tasks, workers=1)

        enabled = obs.is_enabled()
        submit_s = time.perf_counter()
        context = _context_to_wire(scope.context)
        with obs.span(entry_point) as root:
            if root is not None:
                root.attrs["request_id"] = scope.request_id
                root.attrs["n_lanes"] = len(tasks)
                root.attrs["workers"] = len(tasks)
            for task in tasks:
                worker = self._workers[task.plan.backend_index]
                send_json(worker.conn, {
                    "op": "batch",
                    "entry_point": entry_point,
                    "enabled": enabled,
                    "context": context,
                    "submit_s": submit_s,
                    "lane_index": task.plan.lane_index,
                    "sensor_ids": list(task.plan.sensor_ids),
                    "ops": [list(op) for op in task.ops],
                })
            replies: list[dict | None] = []
            lost: list[_Worker] = []
            for task in tasks:
                worker = self._workers[task.plan.backend_index]
                try:
                    replies.append(self._await_reply(worker))
                except _WorkerLost:
                    replies.append(None)
                    lost.append(worker)

            lane_outcomes: list[list] = []
            lane_spans: list[Span | None] = []
            lane_error: BaseException | None = None
            evacuate_after: list[int] = []
            for task, reply in zip(tasks, replies):
                if reply is None:
                    lane_outcomes.append(None)  # replayed below
                    lane_spans.append(None)
                    continue
                worker = self._workers[task.plan.backend_index]
                self._apply_reply(worker, reply)
                if reply.get("health_open"):
                    evacuate_after.append(task.plan.backend_index)
                span_record = reply.get("lane_span")
                lane_spans.append(
                    None if span_record is None else Span.from_dict(span_record)
                )
                if reply.get("lane_error") is not None and lane_error is None:
                    lane_error = error_from_wire(reply["lane_error"])
                lane_outcomes.append(self._decode_outcomes(reply["outcomes"]))

            if lost:
                self._handle_lost(lost)
                for i, (task, reply) in enumerate(zip(tasks, replies)):
                    if reply is not None:
                        continue
                    outcomes, span = self._replay_lane(
                        task, scope, submit_s, enabled
                    )
                    lane_outcomes[i] = outcomes
                    lane_spans[i] = span

            if root is not None:
                for span in lane_spans:
                    if span is not None:
                        root.adopt(span)
        if root is not None:
            service._last_trace = root

        # A breaker a worker tripped is acted on at the batch boundary:
        # workers never fail over (placements must stay stable while the
        # generation lives), so the parent quiesces and evacuates here,
        # where moving sensors is safe.
        if (
            evacuate_after
            and service.resilience.failover
            and len(service._pool) > 1
        ):
            for index in evacuate_after:
                if service._pool.state(index) == "open":
                    service.evacuate(index)  # re-entrant: quiesces first

        if lane_error is not None:
            raise lane_error
        return lane_outcomes

    def _replay_lane(self, task: LaneTask, scope, submit_s: float, enabled):
        """Run one lost lane in-process, after recovery re-placed its
        sensors; the ladder serves what shared memory preserved."""
        service = self.service
        queue_wait_s = time.perf_counter() - submit_s
        plan = task.plan
        with reqctx.adopt(scope.context):
            with obs.detached_span("lane") as lane_sp:
                if lane_sp is not None:
                    lane_sp.attrs["lane"] = plan.lane_index
                    lane_sp.attrs["backend"] = plan.backend_index
                    lane_sp.attrs["backend_id"] = f"backend-{plan.backend_index}"
                    lane_sp.attrs["queue_wait_s"] = queue_wait_s
                    lane_sp.attrs["n_sensors"] = len(plan.sensor_ids)
                    lane_sp.attrs["request_id"] = scope.request_id
                    lane_sp.attrs["replayed_after_crash"] = True
                t_exec = time.perf_counter()
                outcomes = execute_ops(service, task.ops)
            obs.observe_lane(
                plan.lane_index, plan.backend_index, queue_wait_s,
                time.perf_counter() - t_exec, len(plan.sensor_ids),
            )
        return outcomes, lane_sp

    # -------------------------------------------------------------- singles
    def forecast_single(self, sensor_id, horizon, level):
        with self._op_lock:
            service = self.service
            worker = self._worker_for(sensor_id)
            if worker is None:
                return service._forecast_local(sensor_id, horizon, level)
            with reqctx.begin_request("forecast") as scope:
                t0 = time.perf_counter()
                if scope.minted:
                    obs.observe_request_start("forecast", scope.request_id)
                ok = False
                try:
                    result = self._single_remote(worker, scope, {
                        "kind": "forecast", "sensor_id": sensor_id,
                        "horizon": horizon, "level": level,
                    })
                    if result is _LOST:
                        result = service._forecast_local(
                            sensor_id, horizon, level
                        )
                        ok = True
                        return result
                    ok = True
                    return forecast_from_wire(result)
                finally:
                    if scope.minted:
                        obs.observe_request_end(
                            "forecast", scope.request_id,
                            time.perf_counter() - t0, ok=ok,
                        )

    def ingest_single(self, sensor_id, value):
        with self._op_lock:
            service = self.service
            worker = (
                self._worker_for(sensor_id)
                if isinstance(sensor_id, str) else None
            )
            if worker is None:
                # Unknown sensors and invalid readings take the local
                # path, so validation accounting matches inline exactly.
                service._ingest_local(sensor_id, value)
                return
            with reqctx.begin_request("ingest") as scope:
                t0 = time.perf_counter()
                if scope.minted:
                    obs.observe_request_start("ingest", scope.request_id)
                ok = False
                try:
                    result = self._single_remote(worker, scope, {
                        "kind": "ingest", "sensor_id": sensor_id,
                        "value": float(value),
                    })
                    if result is _LOST:
                        service._ingest_local(sensor_id, value)
                    ok = True
                finally:
                    if scope.minted:
                        obs.observe_request_end(
                            "ingest", scope.request_id,
                            time.perf_counter() - t0, ok=ok,
                        )

    def _single_remote(self, worker: _Worker, scope, payload: dict):
        """Ship one single op; returns the wire result, or ``_LOST``
        after crash recovery (caller re-runs locally on adopted state)."""
        service = self.service
        message = {
            "op": "single",
            "enabled": obs.is_enabled(),
            "context": _context_to_wire(scope.context),
            **payload,
        }
        try:
            send_json(worker.conn, message)
            reply = self._await_reply(worker)
        except (_WorkerLost, OSError, BrokenPipeError):
            self._handle_lost([worker])
            return _LOST
        self._apply_reply(worker, reply)
        trace = reply.get("trace")
        if trace is not None and scope.minted:
            service._last_trace = Span.from_dict(trace)
        if reply.get("error") is not None:
            raise error_from_wire(reply["error"])
        return reply.get("result")

    def _worker_for(self, sensor_id: str) -> _Worker | None:
        if not self._workers:
            return None
        service = self.service
        with service._admission_lock:
            placement = service._placements.get(sensor_id)
        if placement is None:
            return None
        return self._workers.get(placement.backend_index)

    # ----------------------------------------------------------- generation
    def _ensure_generation(self) -> None:
        """Fork one worker per hosting backend (no-op while one lives)."""
        if self._workers:
            return
        from ..core.scaleout import plan_lanes

        service = self.service
        with service._admission_lock:
            placements = {
                sid: placement.backend_index
                for sid, placement in service._placements.items()
            }
        if not placements:
            return
        ctx = multiprocessing.get_context("fork")
        started: dict[int, _Worker] = {}
        try:
            for plan in plan_lanes(placements, sorted(placements)):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, plan.backend_index,
                          plan.sensor_ids, service),
                    name=f"smiler-shard-{plan.backend_index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                worker = _Worker(
                    process=process, conn=parent_conn,
                    backend_index=plan.backend_index,
                    sensor_ids=plan.sensor_ids, shm={},
                    pid=process.pid,
                )
                ready = self._await_reply(worker)
                worker.shm = dict(ready["shm"])
                started[plan.backend_index] = worker
        except (_WorkerLost, OSError) as error:
            for worker in started.values():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            raise RuntimeError(
                "process engine failed to start shard workers"
            ) from error
        self._workers = started
        self._sync_cleanup_state()
        logger.debug(
            "process engine: forked %d shard workers (pids %s)",
            len(started), sorted(w.pid for w in started.values()),
        )

    def _quiesce(self) -> None:
        """Flush every worker, adopt shard state, retire the generation."""
        if not self._workers:
            return
        service = self.service
        lost: list[_Worker] = []
        workers = self._workers
        self._workers = {}
        for index in sorted(workers):
            worker = workers[index]
            try:
                send_json(worker.conn, {"op": "flush"})
                header = self._await_reply(worker)
                payload = pickle.loads(self._await_bytes(worker))
            except (_WorkerLost, OSError, BrokenPipeError):
                lost.append(worker)
                continue
            self._apply_telemetry(header.get("telemetry"))
            shard_sensors, backend, health = payload
            service._sensors.update(shard_sensors)
            service._pool.backends[index] = backend
            service._pool.adopt_health(index, health)
            worker.conn.close()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - stuck exit
                worker.process.kill()
                worker.process.join(timeout=5.0)
        for worker in lost:
            self._recover_dead_shard(worker)
        self._sync_cleanup_state()

    def _handle_lost(self, lost: list[_Worker]) -> None:
        """Retire the generation after worker loss: reap the dead, flush
        the survivors, rebuild dead shards from committed shared memory."""
        for worker in lost:
            self._workers.pop(worker.backend_index, None)
        self._quiesce()  # survivors flush gracefully
        for worker in lost:
            self._recover_dead_shard(worker)
        self._sync_cleanup_state()

    def _recover_dead_shard(self, worker: _Worker) -> None:
        from ..core.smiler import SMiLer

        service = self.service
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        service._pool.mark_unhealthy(worker.backend_index)
        recovered = 0
        degraded = 0
        with service._admission_lock:
            for sensor_id in worker.sensor_ids:
                block = worker.shm.get(sensor_id)
                series = (
                    read_committed_series(block["name"])
                    if block is not None else None
                )
                stale = service._sensors.get(sensor_id)
                if series is None or series.size == 0 or stale is None:
                    degraded += 1
                    continue
                old = service._placements[sensor_id]
                try:
                    service._admit(
                        sensor_id, series.size, stale.config,
                        lambda backend, s=series, c=stale.config,
                        i=sensor_id: SMiLer(
                            s, c, backend=backend, sensor_id=i
                        ),
                    )
                except Exception:
                    logger.warning(
                        "post-crash rebuild of sensor %s failed; it stays "
                        "on dead backend %d (served degraded)",
                        sensor_id, worker.backend_index, exc_info=True,
                    )
                    degraded += 1
                    continue
                recovered += 1
                try:
                    service._pool.release(old)
                except Exception:
                    logger.debug(
                        "could not free %s on dead backend %d",
                        sensor_id, worker.backend_index, exc_info=True,
                    )
        obs.observe_evacuation(worker.backend_index, recovered)
        logger.warning(
            "shard worker for backend %d lost; rebuilt %d/%d sensors from "
            "committed shared memory",
            worker.backend_index, recovered, len(worker.sensor_ids),
        )

    # ------------------------------------------------------------- plumbing
    def _await_bytes(self, worker: _Worker) -> bytes:
        timeout_s = self.service.service_config.engine_timeout_s
        deadline = time.monotonic() + timeout_s
        conn = worker.conn
        while True:
            try:
                if conn.poll(0.05):
                    return conn.recv_bytes()
            except (EOFError, OSError) as error:
                raise _WorkerLost(
                    f"shard worker for backend {worker.backend_index} "
                    f"(pid {worker.pid}) closed its channel"
                ) from error
            if not worker.process.is_alive():
                try:
                    if conn.poll(0):  # drain a reply sent just before death
                        return conn.recv_bytes()
                except (EOFError, OSError):
                    pass
                raise _WorkerLost(
                    f"shard worker for backend {worker.backend_index} "
                    f"(pid {worker.pid}) died"
                )
            if time.monotonic() > deadline:
                raise _WorkerLost(
                    f"shard worker for backend {worker.backend_index} "
                    f"(pid {worker.pid}) unresponsive after {timeout_s}s"
                )

    def _await_reply(self, worker: _Worker) -> dict:
        import json

        try:
            return json.loads(self._await_bytes(worker).decode("utf-8"))
        except ValueError as error:
            raise _WorkerLost(
                f"shard worker for backend {worker.backend_index} sent a "
                f"malformed frame"
            ) from error

    def _apply_reply(self, worker: _Worker, reply: dict) -> None:
        service = self.service
        self._apply_telemetry(reply.get("telemetry"))
        health = reply.get("health")
        if health:
            service._pool.adopt_health(worker.backend_index, health)
        elapsed = reply.get("elapsed")
        if elapsed:
            _set_backend_elapsed(
                service._pool.backends[worker.backend_index],
                elapsed["elapsed_s"], elapsed["injected_s"],
            )
        for sensor_id, block in (reply.get("shm") or {}).items():
            worker.shm[sensor_id] = block
        if reply.get("shm"):
            self._sync_cleanup_state()

    def _apply_telemetry(self, telemetry: dict | None) -> None:
        if not telemetry:
            return
        obs.get_registry().merge_state(telemetry.get("metrics") or {})
        obs.get_event_log().absorb(
            telemetry.get("events") or [],
            telemetry.get("dropped") or 0,
        )
        obs.get_slo_tracker().absorb_degraded(telemetry.get("degraded") or {})

    @staticmethod
    def _decode_outcomes(wire_outcomes: list) -> list:
        outcomes = []
        for status, payload in wire_outcomes:
            if status == "ok":
                outcomes.append(
                    ("ok", None if payload is None
                     else forecast_from_wire(payload))
                )
            else:
                outcomes.append(("err", error_from_wire(payload)))
        return outcomes

    def _sync_cleanup_state(self) -> None:
        state = self._cleanup_state
        state["processes"] = [w.process for w in self._workers.values()]
        state["shm_names"] = [
            block["name"]
            for w in self._workers.values() for block in w.shm.values()
        ]


_LOST = object()  # sentinel: remote single aborted by worker loss


# ----------------------------------------------------------------- worker
def _rearm_after_fork(service) -> None:
    """Replace every lock and telemetry sink the child inherited.

    ``fork`` copies locks in whatever state some *other* parent thread
    held them — a child that ever acquired one would deadlock.  The
    worker therefore gets fresh locks on the pool, the backends and the
    admission path, and brand-new telemetry objects (its metrics ship as
    deltas, so inherited state would double-count anyway).
    """
    import threading as _threading

    from ..obs.events import EventLog
    from ..obs.registry import MetricsRegistry
    from ..obs.slo import SLOTracker
    from ..obs.tracing import Tracer

    obs._registry = MetricsRegistry()
    obs._tracer = Tracer()
    obs._events = EventLog(capacity=obs._events.capacity)
    obs._slo = SLOTracker()
    service._admission_lock = _threading.RLock()
    service._pool._lock = _threading.RLock()
    for backend in service._pool.backends:
        if "_lock" in getattr(backend, "__dict__", {}):
            backend._lock = _threading.RLock()
        inner = getattr(backend, "inner", None)
        if inner is not None and "_lock" in getattr(inner, "__dict__", {}):
            inner._lock = _threading.RLock()
        device = getattr(backend, "device", None)
        if device is not None and "_mem_lock" in getattr(device, "__dict__", {}):
            device._mem_lock = _threading.RLock()


def _worker_main(conn, backend_index, sensor_ids, service) -> None:
    """Shard worker entry point (runs in the forked child).

    The child's copy-on-write service still references *every* shard;
    this worker only ever executes and ships ``sensor_ids`` — its own
    backend's sensors — and runs with failover disabled so placements
    stay frozen for the generation.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _rearm_after_fork(service)
    service.resilience = dataclasses.replace(
        service.resilience, failover=False
    )
    from .local import InlineEngine

    service._engine = InlineEngine(service)
    arena = SharedSeriesArena()
    shm_info = {}
    for sensor_id in sensor_ids:
        index = service._sensors[sensor_id].engine.window_index
        shm_info[sensor_id] = arena.share(sensor_id, index)
    send_json(conn, {"op": "ready", "pid": os.getpid(), "shm": shm_info})
    try:
        while True:
            try:
                msg = recv_json(conn)
            except (EOFError, OSError):
                # Parent gone (or gave up on us after recovering from
                # shared memory): nobody will read our blocks now.
                arena.unlink_all()
                return
            op = msg["op"]
            if op == "batch":
                _worker_batch(conn, service, arena, backend_index,
                              sensor_ids, msg)
            elif op == "single":
                _worker_single(conn, service, arena, backend_index, msg)
            elif op == "reset_time":
                service.backends[backend_index].reset_time()
                send_json(conn, {"op": "ok"})
            elif op == "flush":
                _worker_flush(conn, service, arena, backend_index, sensor_ids)
                return
            else:  # pragma: no cover - protocol error
                send_json(conn, {"op": "error", "message": f"unknown {op!r}"})
    finally:
        conn.close()


def _sync_enabled(enabled: bool) -> None:
    if enabled:
        obs.enable()
    else:
        obs.disable()


def _drain_telemetry() -> dict:
    """Dump-and-reset this process's telemetry as a mergeable delta."""
    registry = obs.get_registry()
    metrics = registry.dump_state()
    registry.reset()
    events_log = obs.get_event_log()
    events = events_log.tail()
    dropped = events_log.dropped_total
    events_log.clear()
    degraded = obs.get_slo_tracker().drain_degraded()
    return {
        "metrics": metrics, "events": events,
        "dropped": dropped, "degraded": degraded,
    }


def _shard_status(service, backend_index) -> dict:
    backend = service.backends[backend_index]
    return {
        "telemetry": _drain_telemetry(),
        "health": service._pool.health_dict(backend_index),
        "elapsed": {
            "elapsed_s": float(backend.elapsed_s),
            "injected_s": float(getattr(backend, "_injected_s", 0.0)),
        },
        "health_open": service._pool.state(backend_index) == "open",
    }


def _wire_outcomes(outcomes: list) -> list:
    wire = []
    for status, payload in outcomes:
        if status == "ok":
            wire.append(
                [status, None if payload is None else forecast_to_wire(payload)]
            )
        else:
            wire.append([status, error_to_wire(payload)])
    return wire


def _worker_batch(conn, service, arena, backend_index, sensor_ids, msg):
    _sync_enabled(msg["enabled"])
    context = _context_from_wire(msg["context"])
    queue_wait_s = time.perf_counter() - msg["submit_s"]
    ops = [tuple(op) for op in msg["ops"]]
    lane_error: BaseException | None = None
    outcomes: list = []
    with reqctx.adopt(context):
        with obs.detached_span("lane") as lane_sp:
            if lane_sp is not None:
                lane_sp.attrs["lane"] = msg["lane_index"]
                lane_sp.attrs["backend"] = backend_index
                lane_sp.attrs["backend_id"] = getattr(
                    service.backends[backend_index], "backend_id",
                    f"backend-{backend_index}",
                )
                lane_sp.attrs["queue_wait_s"] = queue_wait_s
                lane_sp.attrs["n_sensors"] = len(msg["sensor_ids"])
                lane_sp.attrs["request_id"] = context.request_id
                lane_sp.attrs["worker_pid"] = os.getpid()
            t_exec = time.perf_counter()
            try:
                outcomes = execute_ops(service, ops)
            except Exception as error:  # noqa: BLE001 - shipped to parent
                lane_error = error
        obs.observe_lane(
            msg["lane_index"], backend_index, queue_wait_s,
            time.perf_counter() - t_exec, len(msg["sensor_ids"]),
        )
    shm_changes = {}
    for sensor_id in sensor_ids:
        block = arena.commit(
            sensor_id, service._sensors[sensor_id].engine.window_index
        )
        if block is not None:
            shm_changes[sensor_id] = block
    send_json(conn, {
        "op": "lane",
        "outcomes": _wire_outcomes(outcomes),
        "lane_error": None if lane_error is None else error_to_wire(lane_error),
        "lane_span": None if lane_sp is None else lane_sp.as_dict(),
        "shm": shm_changes,
        **_shard_status(service, backend_index),
    })


def _worker_single(conn, service, arena, backend_index, msg):
    _sync_enabled(msg["enabled"])
    context = _context_from_wire(msg["context"])
    result = None
    error: BaseException | None = None
    with reqctx.adopt(context):
        try:
            if msg["kind"] == "forecast":
                result = forecast_to_wire(service._forecast_local(
                    msg["sensor_id"], msg["horizon"], msg["level"]
                ))
            else:
                service._ingest_local(msg["sensor_id"], msg["value"])
        except Exception as caught:  # noqa: BLE001 - shipped to parent
            error = caught
    last_root = obs.get_tracer().last_root
    shm_changes = {}
    sensor_id = msg["sensor_id"]
    if sensor_id in service._sensors and sensor_id in arena:
        block = arena.commit(
            sensor_id, service._sensors[sensor_id].engine.window_index
        )
        if block is not None:
            shm_changes[sensor_id] = block
    send_json(conn, {
        "op": "single",
        "result": result,
        "error": None if error is None else error_to_wire(error),
        "trace": None if last_root is None else last_root.as_dict(),
        "shm": shm_changes,
        **_shard_status(service, backend_index),
    })


def _worker_flush(conn, service, arena, backend_index, sensor_ids):
    """FLUSH: commit, drain, ship shard state in one pickle, clean up.

    One pickle for (sensors, backend, health) so shared references
    survive: every shipped ``smiler.backend`` is the shipped backend
    object, and the parent's ``pool.backends[i]`` identity holds after
    adoption.
    """
    for sensor_id in sensor_ids:
        if sensor_id in arena:
            arena.commit(
                sensor_id, service._sensors[sensor_id].engine.window_index
            )
    shard_sensors = {
        sensor_id: service._sensors[sensor_id] for sensor_id in sensor_ids
    }
    backend = service.backends[backend_index]
    health = service._pool.health_dict(backend_index)
    send_json(conn, {"op": "flushed", "telemetry": _drain_telemetry()})
    conn.send_bytes(pickle.dumps((shard_sensors, backend, health)))
    arena.unlink_all()
