"""Shared-memory series arena for the process engine.

Each shard worker publishes every hosted sensor's (normalized) series
buffer into a :class:`multiprocessing.shared_memory.SharedMemory` block
so the parent can recover committed history if the worker dies without
flushing.  Block layout::

    [ int64 committed_len ][ float64 x capacity ]

The worker rebinds the sensor's ``WindowLevelIndex._series`` storage to
a NumPy view over the block's data region, so every in-place append
lands in shared memory for free; the int64 header is only advanced at
batch commit, making it the durability line — a crash mid-batch loses
at most the uncommitted tail of the batch being executed, never a
committed point.  When the index outgrows the block (its doubling
append re-allocates a private array), the next :meth:`commit` detects
the rebind by identity, migrates to a larger block and reports the new
block name so the parent's recovery map stays current.

Posting/index matrices deliberately stay in copy-on-write private
memory: the parent rebuilds them from the committed series on recovery
(construction is cheap relative to shipping them per batch).
"""

from __future__ import annotations

import logging
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

try:  # pragma: no cover - always present on POSIX
    import _posixshmem
except ImportError:  # pragma: no cover - Windows
    _posixshmem = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..index.window_index import WindowLevelIndex

__all__ = ["SharedSeriesArena", "read_committed_series", "unlink_block"]

logger = logging.getLogger(__name__)

_HEADER_BYTES = 8  # one little-endian int64: committed length


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop ``shm`` from the resource tracker's registry.

    Arena blocks are lifecycle-managed explicitly (worker FLUSH, parent
    crash recovery, parent exit finalizer), so the tracker's automatic
    cleanup would only double-unlink and warn about "leaked" blocks when
    a worker is torn down abruptly.  ``SharedMemory`` registers on both
    create *and* attach in 3.11, so every acquisition calls this.
    (Python 3.12 spells the create-side half ``track=False``.)
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running
        pass


def _unlink(shm: shared_memory.SharedMemory) -> None:
    """Unlink without the unregister round-trip ``SharedMemory.unlink``
    makes (the block was already untracked at acquisition, so that
    message would KeyError inside the tracker process)."""
    if _posixshmem is None:  # pragma: no cover - Windows frees on close
        return
    try:
        _posixshmem.shm_unlink(shm._name)
    except (FileNotFoundError, OSError):  # pragma: no cover - raced
        pass


def unlink_block(name: str) -> None:
    """Best-effort unlink of a block by name (parent exit backstop)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return
    _untrack(shm)
    shm.close()
    _unlink(shm)


class SharedSeriesArena:
    """Worker-side registry of one shared block per hosted sensor."""

    def __init__(self) -> None:
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}

    def _bind(
        self, sensor_id: str, index: WindowLevelIndex, capacity: int
    ) -> dict:
        shm = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + 8 * capacity
        )
        _untrack(shm)
        view = np.ndarray((capacity,), dtype=np.float64, buffer=shm.buf,
                          offset=_HEADER_BYTES)
        view[: index._series.size] = index._series
        index._series = view
        header = np.ndarray((1,), dtype=np.int64, buffer=shm.buf)
        header[0] = index._series_len
        self._blocks[sensor_id] = shm
        self._views[sensor_id] = view
        return {"name": shm.name, "capacity": capacity}

    def share(self, sensor_id: str, index: WindowLevelIndex) -> dict:
        """Move ``index``'s series storage into a fresh shared block.

        Returns the block descriptor (``{"name", "capacity"}``) the
        parent records for crash recovery.
        """
        return self._bind(sensor_id, index, int(index._series.size))

    def commit(self, sensor_id: str, index: WindowLevelIndex) -> dict | None:
        """Publish ``index``'s committed length after a batch.

        Returns ``None`` in the steady state (header update only) or the
        new block descriptor when the series outgrew its block and was
        migrated.
        """
        old = self._blocks[sensor_id]
        if index._series is self._views[sensor_id]:
            header = np.ndarray((1,), dtype=np.int64, buffer=old.buf)
            header[0] = index._series_len
            return None
        # The index's doubling append re-allocated privately; migrate.
        descriptor = self._bind(sensor_id, index, int(index._series.size))
        old.close()
        _unlink(old)
        logger.debug(
            "shm arena: sensor %s migrated to block %s (capacity %d)",
            sensor_id, descriptor["name"], descriptor["capacity"],
        )
        return descriptor

    def __contains__(self, sensor_id: str) -> bool:
        return sensor_id in self._blocks

    def unlink_all(self) -> None:
        """Release every block (graceful worker shutdown after FLUSH)."""
        for shm in self._blocks.values():
            shm.close()
            _unlink(shm)
        self._blocks.clear()
        self._views.clear()


def read_committed_series(name: str) -> np.ndarray | None:
    """Parent-side recovery read: committed series from a dead worker's block.

    Attaches, copies out the committed prefix, then closes *and unlinks*
    the block (the worker that owned it is gone).  Returns ``None`` when
    the block no longer exists.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return None
    _untrack(shm)
    try:
        committed = int(np.ndarray((1,), dtype=np.int64, buffer=shm.buf)[0])
        capacity = (shm.size - _HEADER_BYTES) // 8
        committed = max(0, min(committed, capacity))
        data = np.ndarray((capacity,), dtype=np.float64, buffer=shm.buf,
                          offset=_HEADER_BYTES)
        series = np.array(data[:committed], dtype=np.float64, copy=True)
    finally:
        shm.close()
        _unlink(shm)
    return series
