"""In-process engines: the sequential path and thread-pool lanes.

Both run the shared op interpreter (:func:`repro.exec.base.execute_ops`)
on the serving process; they differ only in *where* each lane runs.
This module is the old ``PredictionService._run_lanes`` carved out
behind the engine seam — the telemetry shape (one root span adopting one
``lane`` child per shard, queue-wait/execute attribution, connected
across worker threads) is unchanged.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from ..obs import context as reqctx
from ..obs import hooks as obs
from .base import ExecutionEngine, LaneTask, execute_ops

__all__ = ["InlineEngine", "ThreadLaneEngine"]


class InlineEngine(ExecutionEngine):
    """Every lane on the calling thread — the exact sequential path."""

    name = "inline"

    def run_batch(self, entry_point, scope, tasks):
        return _run_lanes(self, entry_point, scope, tasks, workers=1)

    def forecast_single(self, sensor_id, horizon, level):
        return self._service._forecast_local(sensor_id, horizon, level)

    def ingest_single(self, sensor_id, value):
        self._service._ingest_local(sensor_id, value)


class ThreadLaneEngine(ExecutionEngine):
    """One thread-pool lane per backend shard.

    Lanes overlap wherever NumPy drops the GIL; per-backend op order —
    and therefore every numeric result — is identical to
    :class:`InlineEngine` because each backend's whole op stream stays
    on exactly one lane.  ``max_workers`` (from
    :class:`~repro.service.ServiceConfig`) bounds the pool; a single
    lane or a single worker degenerates to the inline path.
    """

    name = "thread"

    def run_batch(self, entry_point, scope, tasks):
        return _run_lanes(
            self, entry_point, scope, tasks,
            workers=self._service.max_workers,
        )

    def forecast_single(self, sensor_id, horizon, level):
        return self._service._forecast_local(sensor_id, horizon, level)

    def ingest_single(self, sensor_id, value):
        self._service._ingest_local(sensor_id, value)


def _run_lanes(
    engine: ExecutionEngine,
    name: str,
    scope: reqctx.RequestScope,
    tasks: list[LaneTask],
    workers: int,
) -> list[list]:
    """Run every lane under one root span; returns per-lane outcomes.

    The telemetry contract: one request yields one *connected* trace
    tree.  Sequentially, each ``lane`` span nests under the root via the
    tracer's thread-local stack.  Concurrently, executor threads inherit
    neither the request context nor the span stack — each lane re-binds
    the parent's :class:`~repro.obs.context.RequestContext` and opens a
    *detached* span rooted on its own thread; the root adopts the
    completed lane spans after the join, in lane order, so tree assembly
    is race-free and deterministic.  Per-lane queue-wait (submit → lane
    start) and execute time land on the span and in the
    ``smiler_lane_*`` metrics.
    """
    service = engine.service
    submit_s = time.perf_counter()
    concurrent = len(tasks) > 1 and workers > 1

    def run_lane(task: LaneTask):
        queue_wait_s = time.perf_counter() - submit_s
        plan = task.plan
        backend = service.backends[plan.backend_index]
        with reqctx.adopt(scope.context):
            span_cm = (
                obs.detached_span("lane") if concurrent else obs.span("lane")
            )
            with span_cm as lane_sp:
                if lane_sp is not None:
                    lane_sp.attrs["lane"] = plan.lane_index
                    lane_sp.attrs["backend"] = plan.backend_index
                    lane_sp.attrs["backend_id"] = getattr(
                        backend, "backend_id", f"backend-{plan.backend_index}"
                    )
                    lane_sp.attrs["queue_wait_s"] = queue_wait_s
                    lane_sp.attrs["n_sensors"] = len(plan.sensor_ids)
                    lane_sp.attrs["request_id"] = scope.request_id
                t_exec = time.perf_counter()
                outcomes = execute_ops(service, task.ops)
            obs.observe_lane(
                plan.lane_index, plan.backend_index, queue_wait_s,
                time.perf_counter() - t_exec, len(plan.sensor_ids),
            )
        return outcomes, lane_sp

    with obs.span(name) as root:
        if root is not None:
            root.attrs["request_id"] = scope.request_id
            root.attrs["n_lanes"] = len(tasks)
            root.attrs["workers"] = (
                min(workers, len(tasks)) if concurrent else 1
            )
        if not concurrent:
            outputs = [run_lane(task) for task in tasks]
        else:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(tasks)),
                thread_name_prefix=f"smiler-{name}",
            ) as executor:
                # list() drains the iterator so lane exceptions propagate.
                outputs = list(executor.map(run_lane, tasks))
            if root is not None:
                for _, lane_sp in outputs:
                    if lane_sp is not None:
                        root.adopt(lane_sp)
    if root is not None:
        service._last_trace = root
    return [outcomes for outcomes, _ in outputs]
