"""Wire codecs for the process engine's command channel.

The parent and each shard worker talk JSON over a
:class:`multiprocessing.connection.Connection` using the raw
``send_bytes``/``recv_bytes`` frames — no pickle on the command path, so
a malformed or hostile peer can at worst produce a ``ValueError``, never
code execution.  (The one pickled transfer — shipping a quiesced shard's
state back on FLUSH — is a separate, explicit frame; see
``repro.exec.process``.)

JSON round-trips every finite float exactly (``repr``-based encoding),
which is what lets forecasts cross the boundary while staying
bit-identical to the inline engine's.  Exceptions cross as a small
``{type, message, args}`` record and are rebuilt from an allow-list of
known service/backend error types; anything unrecognised degrades to a
``RuntimeError`` that embeds the original type name.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from ..service import Forecast

__all__ = [
    "error_from_wire",
    "error_to_wire",
    "forecast_from_wire",
    "forecast_to_wire",
    "recv_json",
    "send_json",
]

_FORECAST_FIELDS = (
    "sensor_id",
    "horizon",
    "mean",
    "std",
    "interval_low",
    "interval_high",
    "level",
    "source",
    "degraded",
    "request_id",
)


def send_json(conn: Connection, obj: dict) -> None:
    """Send one JSON frame (compact encoding, UTF-8)."""
    conn.send_bytes(json.dumps(obj, separators=(",", ":")).encode("utf-8"))


def recv_json(conn: Connection) -> dict:
    """Receive one JSON frame."""
    return json.loads(conn.recv_bytes().decode("utf-8"))


# ------------------------------------------------------------- forecasts
def forecast_to_wire(forecast: Forecast) -> dict:
    """Flatten a :class:`~repro.service.Forecast` to a JSON-safe dict."""
    return {name: getattr(forecast, name) for name in _FORECAST_FIELDS}


def forecast_from_wire(record: dict) -> Forecast:
    """Rebuild a :class:`~repro.service.Forecast` from its wire record."""
    from ..service import Forecast

    return Forecast(**{name: record[name] for name in _FORECAST_FIELDS})


# ------------------------------------------------------------ exceptions
def _error_types() -> dict[str, type[BaseException]]:
    # Lazy: repro.service imports this package at module load.
    from ..faults.backend import BackendDeadError, FaultError, KernelFaultError
    from ..gpu.device import GpuMemoryError
    from ..service import ForecastError, SnapshotCorruptionError

    return {
        "ForecastError": ForecastError,
        "SnapshotCorruptionError": SnapshotCorruptionError,
        "FaultError": FaultError,
        "KernelFaultError": KernelFaultError,
        "BackendDeadError": BackendDeadError,
        "GpuMemoryError": GpuMemoryError,
        "MemoryError": MemoryError,
        "KeyError": KeyError,
        "ValueError": ValueError,
        "RuntimeError": RuntimeError,
    }


def _json_safe_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


def error_to_wire(error: BaseException) -> dict:
    """Flatten an exception to ``{type, message, args}``.

    ``args`` ships only when every element is a JSON-safe scalar (the
    common case for the service's own error types); otherwise the
    receiving side reconstructs from ``message`` alone.
    """
    args: list | None = list(error.args)
    if not all(_json_safe_scalar(a) for a in args):
        args = None
    return {"type": type(error).__name__, "message": str(error), "args": args}


def error_from_wire(record: dict) -> BaseException:
    """Rebuild the closest equivalent of a shipped exception."""
    types = _error_types()
    cls = types.get(record["type"])
    if cls is None:
        return RuntimeError(f"{record['type']}: {record['message']}")
    args = record.get("args")
    if args is not None:
        try:
            return cls(*args)
        except Exception:  # pragma: no cover - unusual signature
            pass
    return cls(record["message"])
