"""The :class:`ExecutionEngine` contract and the shared op interpreter.

An engine receives *lane tasks*: one per backend shard, each carrying a
:class:`LanePlan` (which backend, which sensors, in which order) and a
flat tuple of declarative operations.  Ops are plain tuples so they can
cross a process boundary without pickling::

    ("forecast", sensor_id, horizon | None, level)
    ("ingest",   sensor_id, value)

The engine must execute every lane's ops **in order** — that per-backend
op order is the whole bit-identical concurrency contract (each backend's
kernel stream, simulated-time ledger and fault-injection tick sequence
depend only on it) — and return one outcome per op::

    ("ok", Forecast | None)    # forecast served / reading applied
    ("err", Exception)         # forecast failed; lands in batch.errors

Engines also own the batch telemetry shape: one root span per request
with one adopted ``lane`` child per shard, per-lane queue-wait/execute
attribution via :func:`repro.obs.hooks.observe_lane`, and
``service._last_trace`` pointed at the connected tree.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> exec)
    from ..obs.context import RequestScope
    from ..service import PredictionService

__all__ = [
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "ExecutionEngine",
    "LanePlan",
    "LaneTask",
    "execute_ops",
    "make_engine",
    "resolve_engine_name",
]

#: Environment variable selecting the engine when
#: :attr:`~repro.service.ServiceConfig.engine` is unset.
ENGINE_ENV_VAR = "REPRO_EXEC"

#: Engine names accepted by config / environment / ``--engine``.
ENGINE_NAMES = ("inline", "thread", "process")


@dataclass(frozen=True)
class LanePlan:
    """One backend shard's slice of a batch: an engine-consumable view
    of the pool's placement snapshot (see
    :func:`repro.core.scaleout.plan_lanes`)."""

    lane_index: int
    backend_index: int
    sensor_ids: tuple[str, ...]


@dataclass(frozen=True)
class LaneTask:
    """A lane plan plus the ops to run on it, in execution order."""

    plan: LanePlan
    ops: tuple[tuple, ...]


def execute_ops(service: "PredictionService", ops: Sequence[tuple]) -> list:
    """Interpret one lane's op stream against a service, in order.

    This is the one interpreter every engine funnels through — inline
    and thread lanes run it on the serving process, the process engine
    runs it inside each shard's worker — so op semantics (what a
    ``forecast`` op catches, what an ``ingest`` op propagates) cannot
    drift between engines.
    """
    outcomes: list = []
    for op in ops:
        if op[0] == "forecast":
            _, sensor_id, horizon, level = op
            try:
                outcomes.append(("ok", service.forecast(sensor_id, horizon, level)))
            except Exception as error:  # noqa: BLE001 - per-sensor side-channel
                outcomes.append(("err", error))
        elif op[0] == "ingest":
            _, sensor_id, value = op
            # Validation happened at the batch entry point; failures here
            # are absorbed by the resilience path, so an ingest op only
            # propagates genuinely unexpected errors (failing the lane,
            # exactly as the pre-engine sequential path did).
            service._observe_resilient(sensor_id, value)
            outcomes.append(("ok", None))
        else:  # pragma: no cover - programming error
            raise ValueError(f"unknown lane op {op[0]!r}")
    return outcomes


class ExecutionEngine(abc.ABC):
    """Strategy object owning how a service's lanes actually execute."""

    #: Engine name as selected by config / ``REPRO_EXEC`` / ``--engine``.
    name: str = "abstract"

    def __init__(self, service: "PredictionService") -> None:
        self._service = service

    @property
    def service(self) -> "PredictionService":
        return self._service

    @abc.abstractmethod
    def run_batch(
        self,
        entry_point: str,
        scope: "RequestScope",
        tasks: list[LaneTask],
    ) -> list[list]:
        """Run every lane's ops; return per-lane outcome lists, in lane
        order.  Must execute each lane's ops in op order and leave
        ``service._last_trace`` pointing at the request's root span when
        observability is enabled."""

    @abc.abstractmethod
    def forecast_single(self, sensor_id: str, horizon: int, level: float):
        """Serve one validated single-sensor forecast."""

    @abc.abstractmethod
    def ingest_single(self, sensor_id: str, value: float) -> None:
        """Apply one validated single-sensor reading."""

    def mutating(self):
        """Context manager the service enters around any fleet-membership
        mutation (register / deregister / restore / evacuate / snapshot).
        Engines that replicate state elsewhere use it to reclaim
        authority first; local engines need nothing."""
        import contextlib

        return contextlib.nullcontext()

    def refresh(self) -> None:
        """Make the service's in-process view of sensor state current
        (no-op for engines that never move state off-process)."""

    def reset_time(self) -> None:
        """Zero every backend's simulated-time ledger, wherever the
        authoritative backend objects currently live."""
        for backend in self._service.backends:
            backend.reset_time()

    def close(self) -> None:
        """Release engine resources (worker processes, shared memory).
        The service remains usable; a later batch may restart workers."""


def resolve_engine_name(explicit: str | None, resolved_workers: int) -> str:
    """Engine selection: explicit config beats ``REPRO_EXEC`` beats the
    historical default (threads when ``max_workers`` > 1, else inline)."""
    for origin, value in (("engine=", explicit), (ENGINE_ENV_VAR, None)):
        if origin == ENGINE_ENV_VAR:
            value = os.environ.get(ENGINE_ENV_VAR)
            if value is not None:
                value = value.strip()
            if not value:
                continue
        if value is None:
            continue
        if value not in ENGINE_NAMES:
            raise ValueError(
                f"unknown execution engine {value!r} (from {origin}); "
                f"available: {ENGINE_NAMES}"
            )
        return value
    return "thread" if resolved_workers > 1 else "inline"


def make_engine(name: str, service: "PredictionService") -> ExecutionEngine:
    """Construct an engine by resolved name."""
    from .local import InlineEngine, ThreadLaneEngine
    from .process import ProcessShardEngine

    if name == "inline":
        return InlineEngine(service)
    if name == "thread":
        return ThreadLaneEngine(service)
    if name == "process":
        return ProcessShardEngine(service)
    raise ValueError(
        f"unknown execution engine {name!r}; available: {ENGINE_NAMES}"
    )
