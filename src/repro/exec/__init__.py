"""Pluggable execution engines for the serving layer.

:class:`~repro.service.PredictionService` decides *what* to run — which
sensors, which ops, in which per-backend order — and hands the resulting
lane plans to an :class:`ExecutionEngine`, which decides *where and how*
they run:

* :class:`InlineEngine` — everything on the calling thread (the exact
  sequential path; the default).
* :class:`ThreadLaneEngine` — one thread-pool lane per backend shard
  (overlaps NumPy kernel time; the GIL serialises the rest).
* :class:`ProcessShardEngine` — one long-lived worker process per
  backend shard, readings held in ``multiprocessing.shared_memory``,
  commands on a pickle-free JSON channel (real wall-clock parallelism).

All three serve **bit-identical** results because the per-backend
operation order — the only thing the numerics can see — is fixed by the
lane plan, not by the engine.  See ``docs/architecture.md`` ("Execution
engines") and ``tests/test_exec_parity.py``.
"""

from .base import (
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    ExecutionEngine,
    LanePlan,
    LaneTask,
    make_engine,
    resolve_engine_name,
)
from .local import InlineEngine, ThreadLaneEngine
from .process import ProcessShardEngine

__all__ = [
    "ENGINE_ENV_VAR",
    "ENGINE_NAMES",
    "ExecutionEngine",
    "InlineEngine",
    "LanePlan",
    "LaneTask",
    "ProcessShardEngine",
    "ThreadLaneEngine",
    "make_engine",
    "resolve_engine_name",
]
