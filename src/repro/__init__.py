"""SMiLer — a semi-lazy time series prediction system for sensors.

Reproduction of Zhou & Tung, SIGMOD 2015.  The public API re-exports the
pieces a downstream user needs:

* :class:`repro.core.SMiLer` — the full system (search step + prediction
  step + auto-tuning) for one sensor,
* :class:`repro.core.SensorFleet` — many sensors processed the same way,
* :mod:`repro.timeseries` — data containers and synthetic datasets,
* :mod:`repro.dtw` / :mod:`repro.index` — the Suffix kNN search engine,
* :mod:`repro.gp` — Gaussian Process stack (exact, sparse, variational),
* :mod:`repro.baselines` — the paper's ten competitor forecasters.
"""

__version__ = "1.0.0"

import logging as _logging

# Library convention: emit records, never configure handlers — the
# application decides where `repro.*` logs go.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from . import (
    backend,
    baselines,
    core,
    dtw,
    gp,
    gpu,
    harness,
    index,
    metrics,
    obs,
    timeseries,
)
from .core import SensorFleet, SMiLer, SMiLerConfig
from .service import Forecast, PredictionService, ServiceConfig

__all__ = [
    "SMiLer",
    "SMiLerConfig",
    "SensorFleet",
    "Forecast",
    "PredictionService",
    "ServiceConfig",
    "backend",
    "baselines",
    "core",
    "dtw",
    "gp",
    "gpu",
    "harness",
    "index",
    "metrics",
    "obs",
    "timeseries",
]
