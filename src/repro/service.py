"""A deployment-shaped facade: register sensors, ingest readings, serve
forecasts.

:class:`PredictionService` wraps the per-sensor SMiLer machinery in the
API an application backend actually calls:

* ``register(sensor_id, history)`` — admit a sensor (z-normalisation is
  handled internally; forecasts are served on the *raw* scale),
* ``ingest(sensor_id, value)`` — one new raw reading,
* ``forecast(sensor_id, horizon)`` — raw-scale mean, standard deviation
  and a central interval,
* ``snapshot(directory)`` / ``restore(directory)`` — persist every
  sensor's state across restarts,
* ``status()`` — fleet-level diagnostics.

The service is synchronous and single-threaded by design (SMiLer's step
cost is milliseconds; a sensor fleet at 5-10 minute sampling needs no
concurrency) — callers that want parallelism shard sensors across
processes exactly as the paper shards them across GPUs.
"""

from __future__ import annotations

import logging
import pathlib
import time
from dataclasses import dataclass

import numpy as np
from scipy.special import erfinv

from .core.config import SMiLerConfig
from .core.persistence import load_smiler, save_smiler
from .core.smiler import SMiLer
from .gpu.device import Allocation, GpuDevice
from .obs import hooks as obs
from .obs.exposition import to_json
from .obs.tracing import Span
from .timeseries.series import ZNormStats

__all__ = ["Forecast", "PredictionService"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Forecast:
    """A raw-scale forecast for one sensor at one horizon."""

    sensor_id: str
    horizon: int
    mean: float
    std: float
    interval_low: float
    interval_high: float
    level: float

    def as_dict(self) -> dict:
        """JSON-friendly record."""
        return {
            "sensor_id": self.sensor_id,
            "horizon": self.horizon,
            "mean": self.mean,
            "std": self.std,
            "interval": [self.interval_low, self.interval_high],
            "level": self.level,
        }


class PredictionService:
    """Multi-sensor forecast service on one simulated device."""

    def __init__(
        self,
        config: SMiLerConfig | None = None,
        device: GpuDevice | None = None,
        min_history: int = 256,
    ) -> None:
        if min_history <= 0:
            raise ValueError(f"min_history must be positive, got {min_history}")
        self.config = config or SMiLerConfig()
        self.device = device or GpuDevice()
        self.min_history = min_history
        self._sensors: dict[str, SMiLer] = {}
        self._norms: dict[str, ZNormStats] = {}
        self._allocations: dict[str, Allocation] = {}
        self._last_trace: Span | None = None

    # ------------------------------------------------------------ lifecycle
    def register(self, sensor_id: str, history: np.ndarray) -> None:
        """Admit a sensor with its raw history."""
        if sensor_id in self._sensors:
            raise ValueError(f"sensor {sensor_id!r} is already registered")
        history = np.asarray(history, dtype=np.float64)
        if history.size < self.min_history:
            raise ValueError(
                f"sensor {sensor_id!r} needs at least {self.min_history} "
                f"historical points, got {history.size}"
            )
        if not np.isfinite(history).all():
            raise ValueError(
                f"sensor {sensor_id!r} history contains non-finite values; "
                "repair with repro.timeseries.fill_missing first"
            )
        std = float(np.std(history))
        stats = ZNormStats(mean=float(np.mean(history)), std=max(std, 1e-12))
        smiler = SMiLer(
            stats.apply(history), self.config, device=self.device,
            sensor_id=sensor_id,
        )
        self._allocations[sensor_id] = self.device.malloc(
            smiler.memory_bytes(), label=sensor_id
        )
        self._sensors[sensor_id] = smiler
        self._norms[sensor_id] = stats
        logger.debug(
            "registered sensor %s: %d history points, %d index bytes",
            sensor_id, history.size, smiler.memory_bytes(),
        )

    def deregister(self, sensor_id: str) -> None:
        """Remove a sensor from the service and free its device memory."""
        self._require(sensor_id)
        del self._sensors[sensor_id]
        del self._norms[sensor_id]
        self.device.free(self._allocations.pop(sensor_id))
        logger.debug("deregistered sensor %s", sensor_id)

    @property
    def sensor_ids(self) -> list[str]:
        """Registered sensor identifiers, sorted."""
        return sorted(self._sensors)

    def _require(self, sensor_id: str) -> SMiLer:
        if sensor_id not in self._sensors:
            raise KeyError(f"unknown sensor {sensor_id!r}")
        return self._sensors[sensor_id]

    # --------------------------------------------------------------- serving
    def ingest(self, sensor_id: str, value: float) -> None:
        """Feed one new raw reading (auto-tunes and advances the index)."""
        smiler = self._require(sensor_id)
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(
                f"non-finite reading for {sensor_id!r}; impute before ingest"
            )
        smiler.observe(self._norms[sensor_id].apply(np.array([value]))[0])

    def forecast(
        self, sensor_id: str, horizon: int | None = None, level: float = 0.95
    ) -> Forecast:
        """Raw-scale forecast with a central predictive interval."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        smiler = self._require(sensor_id)
        if horizon is None:
            horizon = min(self.config.horizons)
        elif horizon <= 0:
            # Explicit None-check above: `horizon or default` would
            # silently remap a (buggy) horizon=0 to the default.
            raise ValueError(f"horizon must be positive, got {horizon}")
        t0 = time.perf_counter()
        with obs.span("forecast", self.device) as sp:
            if sp is not None:
                sp.attrs["sensor_id"] = sensor_id
                sp.attrs["horizon"] = horizon
            output = smiler.predict(horizon=horizon)[horizon]
        if sp is not None:
            self._last_trace = sp
        obs.observe_forecast(sensor_id, horizon, time.perf_counter() - t0)
        stats = self._norms[sensor_id]
        mean = float(stats.invert(np.array([output.mean]))[0])
        std = float(np.sqrt(stats.invert_variance(np.array([output.variance]))[0]))
        z = float(np.sqrt(2.0) * erfinv(level))
        return Forecast(
            sensor_id=sensor_id, horizon=horizon, mean=mean, std=std,
            interval_low=mean - z * std, interval_high=mean + z * std,
            level=level,
        )

    def forecast_all(
        self, horizon: int | None = None, level: float = 0.95
    ) -> dict[str, Forecast]:
        """Forecasts for every registered sensor."""
        return {
            sensor_id: self.forecast(sensor_id, horizon, level)
            for sensor_id in self.sensor_ids
        }

    # ------------------------------------------------------------ snapshots
    def snapshot(self, directory) -> list[pathlib.Path]:
        """Persist every sensor's state; returns the written paths."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for sensor_id, smiler in self._sensors.items():
            path = directory / f"{sensor_id}.npz"
            save_smiler(smiler, path)
            paths.append(path)
        # Normalisation stats ride along in one extra archive.
        norms = {
            f"{sid}_mean": np.array([st.mean])
            for sid, st in self._norms.items()
        }
        norms.update(
            {f"{sid}_std": np.array([st.std]) for sid, st in self._norms.items()}
        )
        np.savez(directory / "_norms.npz", **norms)
        paths.append(directory / "_norms.npz")
        return paths

    def restore(self, directory) -> None:
        """Load every snapshotted sensor into this (empty) service."""
        if self._sensors:
            raise RuntimeError("restore() requires an empty service")
        directory = pathlib.Path(directory)
        norm_path = directory / "_norms.npz"
        if not norm_path.exists():
            raise FileNotFoundError(f"no snapshot at {directory}")
        with np.load(norm_path) as archive:
            raw = {name: float(archive[name][0]) for name in archive.files}
        for path in sorted(directory.glob("*.npz")):
            if path.name == "_norms.npz":
                continue
            smiler = load_smiler(path, device=self.device)
            sensor_id = smiler.sensor_id
            self._sensors[sensor_id] = smiler
            self._norms[sensor_id] = ZNormStats(
                mean=raw[f"{sensor_id}_mean"], std=raw[f"{sensor_id}_std"]
            )
            self._allocations[sensor_id] = self.device.malloc(
                smiler.memory_bytes(), label=sensor_id
            )

    # ------------------------------------------------------- observability
    def metrics(self) -> dict:
        """JSON snapshot of the process-wide metrics registry.

        Empty until :func:`repro.obs.enable` is called — instrumentation
        is off by default and free when off.
        """
        return to_json(obs.get_registry())

    def trace_last_request(self) -> Span | None:
        """Span tree of the most recent instrumented ``forecast()`` call.

        ``None`` until a forecast runs with observability enabled.
        """
        return self._last_trace

    # ------------------------------------------------------------- status
    def status(self) -> dict:
        """Fleet diagnostics: memory, simulated time, per-sensor state."""
        return {
            "n_sensors": len(self._sensors),
            "device_memory_bytes": self.device.allocated_bytes,
            "device_sim_seconds": self.device.elapsed_s,
            "sensors": {
                sensor_id: smiler.diagnostics()
                for sensor_id, smiler in self._sensors.items()
            },
        }
