"""A deployment-shaped facade: register sensors, ingest readings, serve
forecasts.

:class:`PredictionService` wraps the per-sensor SMiLer machinery in the
API an application backend actually calls:

* ``register(sensor_id, history)`` — admit a sensor (z-normalisation is
  handled internally; forecasts are served on the *raw* scale),
* ``ingest(sensor_id, value)`` / ``ingest_many({id: value})`` — new raw
  readings, singly or batched,
* ``forecast(sensor_id, horizon)`` — raw-scale mean, standard deviation
  and a central interval; ``forecast_all()`` serves the whole fleet,
  grouping work per backend,
* ``snapshot(directory)`` / ``restore(directory)`` — persist every
  sensor's state across restarts,
* ``status()`` — fleet-level diagnostics.

The service shards sensors over a :class:`~repro.backend.BackendPool`:
pass ``backends=[...]`` to spread the fleet across several devices
(Section 6.4.1's scale-out option 1) or a single
:class:`~repro.backend.NativeBackend` for a pure-NumPy serving fast
path.  Every admission — ``register``, ``restore`` — estimates the
sensor's memory first and routes through the pool's one greedy
placement policy, so an index is only ever built once, on the backend
that will host it.

The service is synchronous and single-threaded by design (SMiLer's step
cost is milliseconds; a sensor fleet at 5-10 minute sampling needs no
concurrency) — callers that want parallelism shard sensors across
processes exactly as the paper shards them across GPUs.
"""

from __future__ import annotations

import logging
import pathlib
import re
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np
from scipy.special import erfinv

from .backend.base import ComputeBackend
from .backend.pool import BackendPool, Placement
from .core.config import SMiLerConfig
from .core.persistence import build_smiler, load_snapshot, save_smiler
from .core.smiler import SMiLer
from .obs import hooks as obs
from .obs.exposition import to_json
from .obs.tracing import Span
from .timeseries.series import ZNormStats

__all__ = ["Forecast", "PredictionService", "SnapshotCorruptionError"]

logger = logging.getLogger(__name__)

#: Sensor ids become snapshot filenames, so they must be safe path
#: components: leading alphanumeric (rules out ``_norms`` and dotfiles),
#: then alphanumerics and ``. _ : -`` (no separators, no traversal).
_SENSOR_ID_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._:-]*")


class SnapshotCorruptionError(RuntimeError):
    """A snapshot directory is internally inconsistent (orphan or
    hand-edited archives); the message names the offending file."""


def _validate_sensor_id(sensor_id: str) -> str:
    if not isinstance(sensor_id, str) or not _SENSOR_ID_RE.fullmatch(sensor_id):
        raise ValueError(
            f"invalid sensor id {sensor_id!r}: ids must match "
            f"{_SENSOR_ID_RE.pattern!r} (they become snapshot filenames)"
        )
    return sensor_id


@dataclass(frozen=True)
class Forecast:
    """A raw-scale forecast for one sensor at one horizon."""

    sensor_id: str
    horizon: int
    mean: float
    std: float
    interval_low: float
    interval_high: float
    level: float

    def as_dict(self) -> dict:
        """JSON-friendly record."""
        return {
            "sensor_id": self.sensor_id,
            "horizon": self.horizon,
            "mean": self.mean,
            "std": self.std,
            "interval": [self.interval_low, self.interval_high],
            "level": self.level,
        }


class PredictionService:
    """Multi-sensor forecast service sharded over a backend pool."""

    def __init__(
        self,
        config: SMiLerConfig | None = None,
        backends: ComputeBackend | Iterable[object] | None = None,
        min_history: int = 256,
        normalize: bool = True,
    ) -> None:
        if min_history <= 0:
            raise ValueError(f"min_history must be positive, got {min_history}")
        self.config = config or SMiLerConfig()
        if backends is None:
            backends = [None]
        elif isinstance(backends, (list, tuple)):
            backends = list(backends)
        else:
            backends = [backends]
        self._pool = BackendPool(backends)
        self.min_history = min_history
        self.normalize = normalize
        self._sensors: dict[str, SMiLer] = {}
        self._norms: dict[str, ZNormStats] = {}
        self._placements: dict[str, Placement] = {}
        self._last_trace: Span | None = None

    # ------------------------------------------------------------- backends
    @property
    def backends(self) -> list[ComputeBackend]:
        """The pool's backends, in placement-index order."""
        return self._pool.backends

    @property
    def device(self) -> ComputeBackend:
        """Deprecated alias: the first backend (pre-pool name)."""
        return self._pool.backends[0]

    def placement_of(self, sensor_id: str) -> int:
        """Index of the backend hosting a sensor."""
        self._require(sensor_id)
        return self._placements[sensor_id].backend_index

    def sensors_per_backend(self) -> list[int]:
        """Sensor count hosted on each backend."""
        counts = [0] * len(self._pool)
        for placement in self._placements.values():
            counts[placement.backend_index] += 1
        return counts

    def _admit(
        self,
        sensor_id: str,
        n_points: int,
        config: SMiLerConfig,
        build: Callable[[ComputeBackend], SMiLer],
    ) -> SMiLer:
        """The one admission path: estimate, place, build once, record.

        The analytic estimate lets the pool pick a backend *before* the
        index is built, so construction happens exactly once, on the
        backend that hosts the sensor.
        """
        estimate = SMiLer.estimate_memory_bytes(n_points, config)
        placement = self._pool.allocate(estimate, label=sensor_id)
        try:
            smiler = build(self._pool.backend(placement))
        except Exception:
            self._pool.release(placement)
            raise
        actual = smiler.memory_bytes()
        if actual != placement.allocation.nbytes:
            placement = self._pool.resize(placement, actual)
        self._sensors[sensor_id] = smiler
        self._placements[sensor_id] = placement
        return smiler

    # ------------------------------------------------------------ lifecycle
    def register(self, sensor_id: str, history: np.ndarray) -> None:
        """Admit a sensor with its raw history."""
        _validate_sensor_id(sensor_id)
        if sensor_id in self._sensors:
            raise ValueError(f"sensor {sensor_id!r} is already registered")
        history = np.asarray(history, dtype=np.float64)
        if history.size < self.min_history:
            raise ValueError(
                f"sensor {sensor_id!r} needs at least {self.min_history} "
                f"historical points, got {history.size}"
            )
        if not np.isfinite(history).all():
            raise ValueError(
                f"sensor {sensor_id!r} history contains non-finite values; "
                "repair with repro.timeseries.fill_missing first"
            )
        if self.normalize:
            std = float(np.std(history))
            stats = ZNormStats(mean=float(np.mean(history)), std=max(std, 1e-12))
        else:
            stats = ZNormStats(mean=0.0, std=1.0)
        normalised = stats.apply(history)
        smiler = self._admit(
            sensor_id,
            normalised.size,
            self.config,
            lambda backend: SMiLer(
                normalised, self.config, backend=backend, sensor_id=sensor_id
            ),
        )
        self._norms[sensor_id] = stats
        logger.debug(
            "registered sensor %s: %d history points, %d index bytes on "
            "backend %d",
            sensor_id, history.size, smiler.memory_bytes(),
            self._placements[sensor_id].backend_index,
        )

    def deregister(self, sensor_id: str) -> None:
        """Remove a sensor from the service and free its device memory."""
        self._require(sensor_id)
        del self._sensors[sensor_id]
        del self._norms[sensor_id]
        self._pool.release(self._placements.pop(sensor_id))
        logger.debug("deregistered sensor %s", sensor_id)

    @property
    def sensor_ids(self) -> list[str]:
        """Registered sensor identifiers, sorted."""
        return sorted(self._sensors)

    def sensor(self, sensor_id: str) -> SMiLer:
        """The SMiLer instance serving one sensor."""
        return self._require(sensor_id)

    def _require(self, sensor_id: str) -> SMiLer:
        if sensor_id not in self._sensors:
            raise KeyError(f"unknown sensor {sensor_id!r}")
        return self._sensors[sensor_id]

    # --------------------------------------------------------------- serving
    def ingest(self, sensor_id: str, value: float) -> None:
        """Feed one new raw reading (auto-tunes and advances the index)."""
        smiler = self._require(sensor_id)
        value = float(value)
        if not np.isfinite(value):
            raise ValueError(
                f"non-finite reading for {sensor_id!r}; impute before ingest"
            )
        smiler.observe(self._norms[sensor_id].apply(np.array([value]))[0])

    def ingest_many(self, readings: Mapping[str, float]) -> None:
        """Feed one batch of raw readings, one per sensor.

        The whole batch is validated before any sensor advances, so a bad
        reading leaves every stream untouched (no half-applied ticks).
        """
        checked: dict[str, float] = {}
        for sensor_id, value in readings.items():
            self._require(sensor_id)
            value = float(value)
            if not np.isfinite(value):
                raise ValueError(
                    f"non-finite reading for {sensor_id!r}; impute before "
                    "ingest"
                )
            checked[sensor_id] = value
        for sensor_id, value in checked.items():
            self._sensors[sensor_id].observe(
                self._norms[sensor_id].apply(np.array([value]))[0]
            )

    def forecast(
        self, sensor_id: str, horizon: int | None = None, level: float = 0.95
    ) -> Forecast:
        """Raw-scale forecast with a central predictive interval."""
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        smiler = self._require(sensor_id)
        if horizon is None:
            horizon = min(self.config.horizons)
        elif horizon <= 0:
            # Explicit None-check above: `horizon or default` would
            # silently remap a (buggy) horizon=0 to the default.
            raise ValueError(f"horizon must be positive, got {horizon}")
        t0 = time.perf_counter()
        with obs.span("forecast", smiler.backend) as sp:
            if sp is not None:
                sp.attrs["sensor_id"] = sensor_id
                sp.attrs["horizon"] = horizon
            output = smiler.predict(horizon=horizon)[horizon]
        if sp is not None:
            self._last_trace = sp
        obs.observe_forecast(sensor_id, horizon, time.perf_counter() - t0)
        stats = self._norms[sensor_id]
        mean = float(stats.invert(np.array([output.mean]))[0])
        std = float(np.sqrt(stats.invert_variance(np.array([output.variance]))[0]))
        z = float(np.sqrt(2.0) * erfinv(level))
        return Forecast(
            sensor_id=sensor_id, horizon=horizon, mean=mean, std=std,
            interval_low=mean - z * std, interval_high=mean + z * std,
            level=level,
        )

    def forecast_all(
        self, horizon: int | None = None, level: float = 0.95
    ) -> dict[str, Forecast]:
        """Forecasts for every registered sensor, grouped per backend.

        Sensors sharing a backend run back-to-back (good locality on a
        real device; on the simulated one it keeps each device's time
        ledger contiguous); the returned dict is sorted by sensor id.
        """
        by_backend: dict[int, list[str]] = {}
        for sensor_id in self.sensor_ids:
            index = self._placements[sensor_id].backend_index
            by_backend.setdefault(index, []).append(sensor_id)
        results: dict[str, Forecast] = {}
        for index in sorted(by_backend):
            for sensor_id in by_backend[index]:
                results[sensor_id] = self.forecast(sensor_id, horizon, level)
        return dict(sorted(results.items()))

    # ------------------------------------------------------------ snapshots
    def snapshot(self, directory) -> list[pathlib.Path]:
        """Persist every sensor's state; returns the written paths."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for sensor_id, smiler in self._sensors.items():
            # Ids are validated at register(); re-check here so a future
            # bypass can never write outside the snapshot directory.
            _validate_sensor_id(sensor_id)
            path = directory / f"{sensor_id}.npz"
            save_smiler(smiler, path)
            paths.append(path)
        # Normalisation stats ride along in one extra archive.
        norms = {
            f"{sid}_mean": np.array([st.mean])
            for sid, st in self._norms.items()
        }
        norms.update(
            {f"{sid}_std": np.array([st.std]) for sid, st in self._norms.items()}
        )
        np.savez(directory / "_norms.npz", **norms)
        paths.append(directory / "_norms.npz")
        return paths

    def restore(self, directory) -> None:
        """Load every snapshotted sensor into this (empty) service.

        Each archive is parsed first, its memory estimated, and the pool
        picks the hosting backend before the index is rebuilt — the same
        admission path as :meth:`register`.
        """
        if self._sensors:
            raise RuntimeError("restore() requires an empty service")
        directory = pathlib.Path(directory)
        norm_path = directory / "_norms.npz"
        if not norm_path.exists():
            raise FileNotFoundError(f"no snapshot at {directory}")
        with np.load(norm_path) as archive:
            raw = {name: float(archive[name][0]) for name in archive.files}
        for path in sorted(directory.glob("*.npz")):
            if path.name == "_norms.npz":
                continue
            snapshot = load_snapshot(path)
            sensor_id = snapshot.sensor_id
            if not _SENSOR_ID_RE.fullmatch(sensor_id):
                raise SnapshotCorruptionError(
                    f"archive {path.name!r} declares invalid sensor id "
                    f"{sensor_id!r}"
                )
            mean_key, std_key = f"{sensor_id}_mean", f"{sensor_id}_std"
            if mean_key not in raw or std_key not in raw:
                raise SnapshotCorruptionError(
                    f"archive {path.name!r} holds sensor {sensor_id!r} but "
                    f"{norm_path.name!r} has no normalisation stats for it "
                    "— orphan archive from another snapshot?"
                )
            self._admit(
                sensor_id,
                snapshot.series.size,
                snapshot.config,
                lambda backend, snap=snapshot: build_smiler(
                    snap, backend=backend
                ),
            )
            self._norms[sensor_id] = ZNormStats(
                mean=raw[mean_key], std=raw[std_key]
            )

    # ------------------------------------------------------- observability
    def metrics(self) -> dict:
        """JSON snapshot of the process-wide metrics registry.

        Empty until :func:`repro.obs.enable` is called — instrumentation
        is off by default and free when off.
        """
        return to_json(obs.get_registry())

    def trace_last_request(self) -> Span | None:
        """Span tree of the most recent instrumented ``forecast()`` call.

        ``None`` until a forecast runs with observability enabled.
        """
        return self._last_trace

    # ------------------------------------------------------------- status
    def status(self) -> dict:
        """Fleet diagnostics: memory, simulated time, per-sensor state."""
        counts = self.sensors_per_backend()
        return {
            "n_sensors": len(self._sensors),
            "device_memory_bytes": self._pool.allocated_bytes,
            "device_sim_seconds": self._pool.elapsed_s,
            "backends": [
                {
                    "name": backend.name,
                    "n_sensors": counts[i],
                    "allocated_bytes": backend.allocated_bytes,
                    "sim_seconds": backend.elapsed_s,
                }
                for i, backend in enumerate(self._pool.backends)
            ],
            "sensors": {
                sensor_id: smiler.diagnostics()
                for sensor_id, smiler in self._sensors.items()
            },
        }
