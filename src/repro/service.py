"""A deployment-shaped facade: register sensors, ingest readings, serve
forecasts.

:class:`PredictionService` wraps the per-sensor SMiLer machinery in the
API an application backend actually calls:

* ``register(sensor_id, history)`` — admit a sensor (z-normalisation is
  handled internally; forecasts are served on the *raw* scale),
* ``ingest(sensor_id, value)`` / ``ingest_many({id: value})`` — new raw
  readings, singly or batched,
* ``forecast(sensor_id, horizon)`` — raw-scale mean, standard deviation
  and a central interval; ``forecast_all()`` serves the whole fleet,
  grouping work per backend,
* ``snapshot(directory)`` / ``restore(directory)`` — persist every
  sensor's state across restarts,
* ``status()`` — fleet-level diagnostics.

The service shards sensors over a :class:`~repro.backend.BackendPool`:
pass ``backends=[...]`` to spread the fleet across several devices
(Section 6.4.1's scale-out option 1) or a single
:class:`~repro.backend.NativeBackend` for a pure-NumPy serving fast
path.  Every admission — ``register``, ``restore`` — estimates the
sensor's memory first and routes through the pool's one greedy
placement policy, so an index is only ever built once, on the backend
that will host it.

*How* lanes execute is delegated to a pluggable
:class:`~repro.exec.ExecutionEngine` (``ServiceConfig(engine=...)``, the
``REPRO_EXEC`` environment variable, or the CLI's ``--engine``): the
service decides the per-backend operation order, the engine decides
where it runs — inline on the calling thread (the default), on a thread
pool with **one worker lane per backend shard**
(``max_workers`` / ``REPRO_MAX_WORKERS`` / ``--workers``), or on one
long-lived worker *process* per shard.  Each lane walks its own
backend's sensors in the same order the sequential path would, so
per-backend kernel streams, simulated-time ledgers and fault-injection
tick sequences are identical — results are bit-identical to sequential
ones across every engine (same :class:`Forecast` floats, same
:attr:`ForecastBatch.errors`), pinned by ``tests/test_concurrency.py``
and ``tests/test_exec_parity.py``.  The execution model (what is
locked, what is lock-free, what crosses process boundaries) is
documented in ``docs/architecture.md``.
"""

from __future__ import annotations

import logging
import os
import pathlib
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np
from scipy.special import erfinv

from .backend.base import ComputeBackend
from .backend.pool import BackendPool, BreakerConfig, Placement
from .baselines.autoregressive import fit_ar
from .core.config import SMiLerConfig
from .core.persistence import build_smiler, load_snapshot, save_smiler
from .core.scaleout import plan_lanes
from .core.smiler import SMiLer
from .exec.base import (
    ENGINE_NAMES,
    ExecutionEngine,
    LaneTask,
    make_engine,
    resolve_engine_name,
)
from .obs import context as reqctx
from .obs import hooks as obs
from .obs.exposition import to_json
from .obs.tracing import Span
from .timeseries.series import ZNormStats

__all__ = [
    "Forecast",
    "ForecastBatch",
    "ForecastError",
    "PredictionService",
    "ResiliencePolicy",
    "ServiceConfig",
    "SnapshotCorruptionError",
    "WORKERS_ENV_VAR",
]

logger = logging.getLogger(__name__)

#: Sensor ids become snapshot filenames, so they must be safe path
#: components: leading alphanumeric (rules out ``_norms`` and dotfiles),
#: then alphanumerics and ``. _ : -`` (no separators, no traversal).
_SENSOR_ID_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._:-]*")


class SnapshotCorruptionError(RuntimeError):
    """A snapshot directory is internally inconsistent (orphan or
    hand-edited archives); the message names the offending file."""


class ForecastError(RuntimeError):
    """Every rung of the degradation ladder failed for one sensor (only
    reachable with a truncated :class:`ResiliencePolicy` ladder — the
    ``naive`` rung never fails)."""


#: The degradation ladder, best rung first (see ``docs/robustness.md``).
DEGRADATION_LADDER = ("ensemble", "reduced", "ar", "naive")

#: Environment variable supplying the default worker-lane count when
#: :attr:`ServiceConfig.max_workers` is left unset (sequential when both
#: are absent).
WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"


@dataclass(frozen=True)
class ServiceConfig:
    """Serving-layer tuning, distinct from the per-sensor
    :class:`~repro.core.config.SMiLerConfig`.

    ``max_workers`` bounds the thread-pool lanes ``forecast_all`` /
    ``ingest_many`` fan out over.  Work is sharded one lane per backend,
    so lanes beyond the pool size sit idle; ``1`` (the default) keeps
    the exact sequential code path.  ``None`` defers to the
    ``REPRO_MAX_WORKERS`` environment variable, read once at service
    construction.

    ``engine`` picks the :class:`~repro.exec.ExecutionEngine` by name
    (``"inline"``, ``"thread"`` or ``"process"``).  ``None`` defers to
    the ``REPRO_EXEC`` environment variable and then to the historical
    default: threads when the resolved worker count exceeds 1, else
    inline.  ``engine_timeout_s`` bounds how long the process engine
    waits on an unresponsive shard worker before declaring it hung and
    evacuating its sensors (local engines never time out).
    """

    max_workers: int | None = None
    engine: str | None = None
    engine_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.engine is not None and self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown execution engine {self.engine!r}; available: "
                f"{ENGINE_NAMES}"
            )
        if self.engine_timeout_s <= 0.0:
            raise ValueError(
                f"engine_timeout_s must be positive, got {self.engine_timeout_s}"
            )

    def resolved_workers(self) -> int:
        """The effective lane count: explicit value, else environment,
        else 1 (sequential)."""
        if self.max_workers is not None:
            return self.max_workers
        raw = os.environ.get(WORKERS_ENV_VAR)
        if raw is None or not raw.strip():
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR}={raw!r} is not an integer"
            ) from None
        if workers <= 0:
            raise ValueError(
                f"{WORKERS_ENV_VAR} must be positive, got {workers}"
            )
        return workers

    def resolved_engine(self, resolved_workers: int) -> str:
        """The effective engine name: explicit value, else the
        ``REPRO_EXEC`` environment variable, else the worker-count
        default."""
        return resolve_engine_name(self.engine, resolved_workers)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How :meth:`PredictionService.forecast` behaves under failure.

    ``attempts`` bounds the retries of the full-ensemble rung (transient
    kernel faults usually pass on retry); after that the ladder descends:
    ``reduced`` (single smallest ensemble cell, reusing cached kNN
    answers), ``ar`` (host-side AR fit on recent history — no backend),
    ``naive`` (last value — cannot fail).  ``failover`` lets a forecast
    that trips a backend's circuit breaker evacuate that backend's
    sensors onto healthy peers mid-request.
    """

    attempts: int = 2
    ladder: tuple[str, ...] = DEGRADATION_LADDER
    failover: bool = True

    def __post_init__(self) -> None:
        if self.attempts <= 0:
            raise ValueError(f"attempts must be positive, got {self.attempts}")
        if not self.ladder:
            raise ValueError("the degradation ladder must have at least one rung")
        unknown = [r for r in self.ladder if r not in DEGRADATION_LADDER]
        if unknown:
            raise ValueError(
                f"unknown ladder rungs {unknown}; available: "
                f"{DEGRADATION_LADDER}"
            )


def _validate_sensor_id(sensor_id: str) -> str:
    if not isinstance(sensor_id, str) or not _SENSOR_ID_RE.fullmatch(sensor_id):
        raise ValueError(
            f"invalid sensor id {sensor_id!r}: ids must match "
            f"{_SENSOR_ID_RE.pattern!r} (they become snapshot filenames)"
        )
    return sensor_id


@dataclass(frozen=True)
class Forecast:
    """A raw-scale forecast for one sensor at one horizon.

    ``source`` names the degradation-ladder rung that produced it
    (``"ensemble"`` is the full system); ``degraded`` is True for any
    rung below the top.  ``request_id`` is the serving request that
    produced the forecast — telemetry identity, excluded from equality
    so the bit-identical concurrency contract compares *forecasts*, not
    which request happened to compute them.
    """

    sensor_id: str
    horizon: int
    mean: float
    std: float
    interval_low: float
    interval_high: float
    level: float
    source: str = "ensemble"
    degraded: bool = False
    request_id: str = field(default="", compare=False)

    def as_dict(self) -> dict:
        """JSON-friendly record."""
        return {
            "sensor_id": self.sensor_id,
            "horizon": self.horizon,
            "mean": self.mean,
            "std": self.std,
            "interval": [self.interval_low, self.interval_high],
            "level": self.level,
            "source": self.source,
            "degraded": self.degraded,
            "request_id": self.request_id,
        }


class ForecastBatch(dict):
    """``sensor_id -> Forecast`` mapping with a per-sensor error
    side-channel.

    Behaves exactly like the plain dict :meth:`PredictionService.forecast_all`
    used to return; sensors whose forecast raised land in :attr:`errors`
    (``sensor_id -> exception``) instead of silently sinking the rest of
    the batch."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.errors: dict[str, Exception] = {}

    @property
    def ok(self) -> bool:
        """True when every sensor produced a forecast."""
        return not self.errors


class PredictionService:
    """Multi-sensor forecast service sharded over a backend pool."""

    def __init__(
        self,
        config: SMiLerConfig | None = None,
        backends: ComputeBackend | Iterable[object] | None = None,
        min_history: int = 256,
        normalize: bool = True,
        resilience: ResiliencePolicy | None = None,
        breaker: BreakerConfig | None = None,
        service_config: ServiceConfig | None = None,
    ) -> None:
        if min_history <= 0:
            raise ValueError(f"min_history must be positive, got {min_history}")
        self.config = config or SMiLerConfig()
        if backends is None:
            backends = [None]
        elif isinstance(backends, (list, tuple)):
            backends = list(backends)
        else:
            backends = [backends]
        self._pool = BackendPool(backends, breaker=breaker)
        self.resilience = resilience or ResiliencePolicy()
        self.service_config = service_config or ServiceConfig()
        #: Effective lane count, resolved once (environment included).
        self.max_workers = self.service_config.resolved_workers()
        self.min_history = min_history
        self.normalize = normalize
        self._sensors: dict[str, SMiLer] = {}
        self._norms: dict[str, ZNormStats] = {}
        self._placements: dict[str, Placement] = {}
        self._last_trace: Span | None = None
        # Serializes fleet-membership mutations (register / deregister /
        # restore / evacuate) against each other; per-sensor serving work
        # needs no service-level lock because each backend shard is
        # walked by exactly one lane.  Lock order: an engine's operation
        # lock (``mutating()``) is always taken *before* this one.
        self._admission_lock = threading.RLock()
        self._engine: ExecutionEngine = make_engine(
            self.service_config.resolved_engine(self.max_workers), self
        )

    # ------------------------------------------------------------- backends
    @property
    def backends(self) -> list[ComputeBackend]:
        """The pool's backends, in placement-index order."""
        return self._pool.backends

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine serving this service's lanes."""
        return self._engine

    def placement_of(self, sensor_id: str) -> int:
        """Index of the backend hosting a sensor."""
        self._engine.refresh()
        self._require(sensor_id)
        return self._placements[sensor_id].backend_index

    def sensors_per_backend(self) -> list[int]:
        """Sensor count hosted on each backend."""
        with self._admission_lock:
            counts = [0] * len(self._pool)
            for placement in self._placements.values():
                counts[placement.backend_index] += 1
            return counts

    def _admit(
        self,
        sensor_id: str,
        n_points: int,
        config: SMiLerConfig,
        build: Callable[[ComputeBackend], SMiLer],
    ) -> SMiLer:
        """The one admission path: estimate, place, build once, record.

        The analytic estimate lets the pool pick a backend *before* the
        index is built, so construction happens exactly once, on the
        backend that hosts the sensor.
        """
        estimate = SMiLer.estimate_memory_bytes(n_points, config)
        placement = self._pool.allocate(estimate, label=sensor_id)
        try:
            smiler = build(self._pool.backend(placement))
            actual = smiler.memory_bytes()
            if actual != placement.allocation.nbytes:
                placement = self._pool.resize(placement, actual)
        except Exception as error:
            # A failed tight-fit resize re-handles the reservation; adopt
            # the restored placement so the release below frees the right
            # allocation.  The release itself is best-effort: a backend
            # that just died mid-admission may refuse it.
            placement = getattr(error, "placement", placement)
            try:
                self._pool.release(placement)
            except Exception:
                logger.debug(
                    "could not release %r after failed admission of %s",
                    placement, sensor_id, exc_info=True,
                )
            raise
        self._sensors[sensor_id] = smiler
        self._placements[sensor_id] = placement
        return smiler

    def evacuate(self, backend_index: int) -> list[str]:
        """Move every sensor off one backend onto healthy peers.

        The backend's circuit breaker is forced open first, so the
        re-admissions (the same estimate-first path as :meth:`register`,
        with the index rebuilt from each sensor's accrued history via
        :meth:`SMiLer.rebind`) land elsewhere.  A sensor whose
        re-admission fails keeps its old placement — it stays served by
        the degradation ladder instead of vanishing.  Returns the ids of
        the sensors that actually moved.
        """
        if not 0 <= backend_index < len(self._pool):
            raise IndexError(
                f"backend index {backend_index} out of range for a pool of "
                f"{len(self._pool)}"
            )
        with self._engine.mutating():
            with self._admission_lock:
                return self._evacuate_locked(backend_index)

    def _evacuate_locked(self, backend_index: int) -> list[str]:
        self._pool.mark_unhealthy(backend_index)
        stranded = sorted(
            sid for sid, placement in self._placements.items()
            if placement.backend_index == backend_index
        )
        moved = []
        for sensor_id in stranded:
            old = self._placements[sensor_id]
            smiler = self._sensors[sensor_id]
            try:
                self._admit(
                    sensor_id,
                    smiler.series.size,
                    smiler.config,
                    lambda backend, s=smiler: s.rebind(backend),
                )
            except Exception:
                logger.warning(
                    "evacuation of sensor %s from backend %d failed; it "
                    "stays on the unhealthy backend (served degraded)",
                    sensor_id, backend_index, exc_info=True,
                )
                continue
            moved.append(sensor_id)
            try:
                self._pool.release(old)
            except Exception:
                logger.debug(
                    "could not free %s on unhealthy backend %d",
                    sensor_id, backend_index, exc_info=True,
                )
        logger.info(
            "evacuated %d/%d sensors off backend %d",
            len(moved), len(stranded), backend_index,
        )
        obs.observe_evacuation(backend_index, len(moved))
        return moved

    # ------------------------------------------------------------ lifecycle
    def register(self, sensor_id: str, history: np.ndarray) -> None:
        """Admit a sensor with its raw history."""
        _validate_sensor_id(sensor_id)
        with self._engine.mutating():
            with self._admission_lock:
                self._register_locked(sensor_id, history)

    def _register_locked(self, sensor_id: str, history: np.ndarray) -> None:
        if sensor_id in self._sensors:
            raise ValueError(f"sensor {sensor_id!r} is already registered")
        history = np.asarray(history, dtype=np.float64)
        if history.size < self.min_history:
            raise ValueError(
                f"sensor {sensor_id!r} needs at least {self.min_history} "
                f"historical points, got {history.size}"
            )
        if not np.isfinite(history).all():
            raise ValueError(
                f"sensor {sensor_id!r} history contains non-finite values; "
                "repair with repro.timeseries.fill_missing first"
            )
        if self.normalize:
            std = float(np.std(history))
            stats = ZNormStats(mean=float(np.mean(history)), std=max(std, 1e-12))
        else:
            stats = ZNormStats(mean=0.0, std=1.0)
        normalised = stats.apply(history)
        smiler = self._admit(
            sensor_id,
            normalised.size,
            self.config,
            lambda backend: SMiLer(
                normalised, self.config, backend=backend, sensor_id=sensor_id
            ),
        )
        self._norms[sensor_id] = stats
        logger.debug(
            "registered sensor %s: %d history points, %d index bytes on "
            "backend %d",
            sensor_id, history.size, smiler.memory_bytes(),
            self._placements[sensor_id].backend_index,
        )

    def deregister(self, sensor_id: str) -> None:
        """Remove a sensor from the service and free its device memory."""
        with self._engine.mutating():
            with self._admission_lock:
                self._require(sensor_id)
                del self._sensors[sensor_id]
                del self._norms[sensor_id]
                self._pool.release(self._placements.pop(sensor_id))
        logger.debug("deregistered sensor %s", sensor_id)

    @property
    def sensor_ids(self) -> list[str]:
        """Registered sensor identifiers, sorted."""
        return sorted(self._sensors)

    def sensor(self, sensor_id: str) -> SMiLer:
        """The SMiLer instance serving one sensor.

        Engines that move state off-process sync it back first
        (:meth:`repro.exec.ExecutionEngine.refresh`), so the returned
        object always reflects every reading served so far.
        """
        self._engine.refresh()
        return self._require(sensor_id)

    def _require(self, sensor_id: str) -> SMiLer:
        if sensor_id not in self._sensors:
            raise KeyError(f"unknown sensor {sensor_id!r}")
        return self._sensors[sensor_id]

    # --------------------------------------------------------------- serving
    def _observe_resilient(self, sensor_id: str, value: float) -> None:
        """Feed one validated raw reading; absorb backend failures.

        ``SMiLer.observe`` appends the reading host-side *before* the
        backend search, so a failure here never loses data — it only
        leaves the sensor's kNN answers stale (the next forecast
        re-searches, on a healthy backend after failover).  The failure
        is charged to the hosting backend's breaker and, once it trips,
        triggers the same evacuation as a failing forecast.
        """
        smiler = self._sensors[sensor_id]
        z_value = self._norms[sensor_id].apply(np.array([value]))[0]
        index = self._placements[sensor_id].backend_index
        try:
            smiler.observe(z_value)
        except Exception as error:
            self._pool.record_failure(index)
            logger.warning(
                "ingest search failed for sensor %s on backend %d "
                "(reading retained, answers invalidated): %s",
                sensor_id, index, error,
            )
            if (
                self.resilience.failover
                and len(self._pool) > 1
                and self._pool.state(index) == "open"
            ):
                self.evacuate(index)
        else:
            self._pool.record_success(index)

    def ingest(self, sensor_id: str, value: float) -> None:
        """Feed one new raw reading (auto-tunes and advances the index)."""
        self._engine.ingest_single(sensor_id, value)

    def _ingest_local(self, sensor_id: str, value: float) -> None:
        """The in-process ingest body (engines dispatch here or to a
        shard worker running exactly this code)."""
        with reqctx.begin_request("ingest") as scope:
            t0 = time.perf_counter()
            if scope.minted:
                obs.observe_request_start("ingest", scope.request_id)
            ok = False
            try:
                self._require(sensor_id)
                value = float(value)
                if not np.isfinite(value):
                    raise ValueError(
                        f"non-finite reading for {sensor_id!r}; impute "
                        "before ingest"
                    )
                self._observe_resilient(sensor_id, value)
                ok = True
            finally:
                if scope.minted:
                    obs.observe_request_end(
                        "ingest", scope.request_id,
                        time.perf_counter() - t0, ok=ok,
                    )

    def ingest_many(self, readings: Mapping[str, float]) -> None:
        """Feed one batch of raw readings, one per sensor.

        The whole batch is validated before any sensor advances, so a bad
        reading leaves every stream untouched (no half-applied ticks).
        The validated batch fans out one lane per backend shard on the
        configured engine; each lane applies its backend's readings in
        batch order, so every backend sees the same operation sequence
        as the sequential path and the end state is identical.
        """
        with reqctx.begin_request("ingest_many") as scope:
            t0 = time.perf_counter()
            if scope.minted:
                obs.observe_request_start(
                    "ingest_many", scope.request_id, n_items=len(readings)
                )
            ok = False
            try:
                checked: dict[str, float] = {}
                for sensor_id, value in readings.items():
                    self._require(sensor_id)
                    value = float(value)
                    if not np.isfinite(value):
                        raise ValueError(
                            f"non-finite reading for {sensor_id!r}; impute "
                            "before ingest"
                        )
                    checked[sensor_id] = value
                tasks = self._plan_tasks(
                    checked, lambda sid: ("ingest", sid, checked[sid])
                )
                self._engine.run_batch("ingest_many", scope, tasks)
                ok = True
            finally:
                if scope.minted:
                    obs.observe_request_end(
                        "ingest_many", scope.request_id,
                        time.perf_counter() - t0, ok=ok,
                        n_items=len(readings),
                    )

    def _plan_tasks(
        self,
        sensor_ids: Iterable[str],
        op_of: Callable[[str], tuple],
    ) -> list[LaneTask]:
        """Partition sensors into one :class:`LaneTask` per hosting
        backend, keeping the given order within each lane (a snapshot:
        mid-batch failover may re-place a sensor, but its lane
        assignment is decided here, exactly as the sequential path
        decides its grouping up front)."""
        with self._admission_lock:
            placements = {
                sid: placement.backend_index
                for sid, placement in self._placements.items()
            }
        return [
            LaneTask(
                plan=plan,
                ops=tuple(op_of(sid) for sid in plan.sensor_ids),
            )
            for plan in plan_lanes(placements, sensor_ids)
        ]

    def _resolve_horizon(self, horizon: int | None) -> int:
        if horizon is None:
            return min(self.config.horizons)
        if horizon <= 0:
            # Explicit None-check above: `horizon or default` would
            # silently remap a (buggy) horizon=0 to the default.
            raise ValueError(f"horizon must be positive, got {horizon}")
        if horizon not in self.config.horizons:
            raise KeyError(
                f"horizon {horizon} not configured; available: "
                f"{self.config.horizons}"
            )
        return horizon

    @staticmethod
    def _validate_prediction(mean: float, variance: float) -> None:
        """A rung's output must be a usable Gaussian — NaN means or
        non-positive/non-finite variances (a non-PSD GP fit, a corrupted
        kernel) are failures, never served."""
        if not np.isfinite(mean):
            raise ValueError(f"non-finite predictive mean {mean!r}")
        if not np.isfinite(variance) or variance <= 0.0:
            raise ValueError(f"invalid predictive variance {variance!r}")

    def _predict_resilient(
        self, sensor_id: str, horizon: int
    ) -> tuple[float, float, str]:
        """Walk the degradation ladder; returns ``(mean, variance, source)``
        in normalised space."""
        policy = self.resilience
        last_error: Exception | None = None
        for rung in policy.ladder:
            if rung == "ensemble":
                budget = policy.attempts
                evacuated: set[int] = set()
                while budget > 0:
                    budget -= 1
                    smiler = self._sensors[sensor_id]
                    index = self._placements[sensor_id].backend_index
                    try:
                        output = smiler.predict(horizon=horizon)[horizon]
                        self._validate_prediction(output.mean, output.variance)
                    except Exception as error:
                        last_error = error
                        self._pool.record_failure(index)
                        logger.debug(
                            "ensemble rung failed for %s on backend %d: %s",
                            sensor_id, index, error,
                        )
                        if (
                            policy.failover
                            and len(self._pool) > 1
                            and index not in evacuated
                            and self._pool.state(index) == "open"
                        ):
                            self.evacuate(index)
                            evacuated.add(index)
                            # The sensor sits on a fresh backend now; give
                            # the full rung a fresh chance there.
                            budget = max(budget, policy.attempts)
                        continue
                    self._pool.record_success(index)
                    return output.mean, output.variance, "ensemble"
            elif rung == "reduced":
                smiler = self._sensors[sensor_id]
                try:
                    prediction = smiler.predict_reduced(horizon)
                    self._validate_prediction(
                        prediction.mean, prediction.variance
                    )
                    return prediction.mean, prediction.variance, "reduced"
                except Exception as error:
                    last_error = error
                    logger.debug(
                        "reduced rung failed for %s: %s", sensor_id, error
                    )
            elif rung == "ar":
                try:
                    mean, variance = self._ar_fallback(sensor_id, horizon)
                    self._validate_prediction(mean, variance)
                    return mean, variance, "ar"
                except Exception as error:
                    last_error = error
                    logger.debug("ar rung failed for %s: %s", sensor_id, error)
            elif rung == "naive":
                mean, variance = self._naive_fallback(sensor_id, horizon)
                return mean, variance, "naive"
        raise ForecastError(
            f"every degradation rung {policy.ladder} failed for sensor "
            f"{sensor_id!r}: {last_error}"
        ) from last_error

    def _ar_fallback(self, sensor_id: str, horizon: int) -> tuple[float, float]:
        """Host-side AR(d) on the recent normalised history — no backend
        involved, so it survives any compute-layer failure."""
        series = np.asarray(self._sensors[sensor_id].series, dtype=np.float64)
        tail = series[-512:]
        order = min(min(self.config.elv), max(2, tail.size // 4))
        model = fit_ar(tail, order)
        return model.forecast(tail, horizon)

    def _naive_fallback(self, sensor_id: str, horizon: int) -> tuple[float, float]:
        """Last-value forecast with a random-walk variance; cannot fail."""
        series = np.asarray(self._sensors[sensor_id].series, dtype=np.float64)
        mean = float(series[-1])
        diffs = np.diff(series[-65:])
        variance = float(np.mean(diffs**2)) * horizon if diffs.size else 0.0
        if not np.isfinite(variance) or variance <= 0.0:
            variance = 1e-8
        return mean, variance

    def forecast(
        self, sensor_id: str, horizon: int | None = None, level: float = 0.95
    ) -> Forecast:
        """Raw-scale forecast with a central predictive interval.

        Failures descend the :class:`ResiliencePolicy` ladder instead of
        propagating: transient kernel faults are retried, a tripped
        backend is evacuated mid-request (when the pool has healthy
        peers), and the served rung is visible on
        :attr:`Forecast.source` / :attr:`Forecast.degraded` and in the
        ``smiler_forecast_degraded_total`` metric.
        """
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        self._require(sensor_id)
        horizon = self._resolve_horizon(horizon)
        return self._engine.forecast_single(sensor_id, horizon, level)

    def _forecast_local(
        self, sensor_id: str, horizon: int, level: float
    ) -> Forecast:
        """The in-process forecast body for a validated request (engines
        dispatch here or to a shard worker running exactly this code)."""
        with reqctx.begin_request("forecast") as scope:
            t0 = time.perf_counter()
            if scope.minted:
                obs.observe_request_start("forecast", scope.request_id)
            ok = False
            try:
                with obs.span(
                    "forecast", self._sensors[sensor_id].backend
                ) as sp:
                    if sp is not None:
                        sp.attrs["sensor_id"] = sensor_id
                        sp.attrs["horizon"] = horizon
                        sp.attrs["request_id"] = scope.request_id
                    z_mean, z_variance, source = self._predict_resilient(
                        sensor_id, horizon
                    )
                    if sp is not None:
                        sp.attrs["source"] = source
                if sp is not None and scope.minted:
                    # Batch entry points re-point this at their root span
                    # after the lanes join; a nested forecast must not
                    # clobber the connected tree mid-batch.
                    self._last_trace = sp
                obs.observe_forecast(
                    sensor_id, horizon, time.perf_counter() - t0
                )
                ok = True
            finally:
                if scope.minted:
                    obs.observe_request_end(
                        "forecast", scope.request_id,
                        time.perf_counter() - t0, ok=ok,
                    )
            degraded = source != "ensemble"
            if degraded:
                obs.observe_degraded_forecast(sensor_id, source)
                logger.info(
                    "sensor %s served degraded (%s rung) at horizon %d",
                    sensor_id, source, horizon,
                )
            stats = self._norms[sensor_id]
            mean = float(stats.invert(np.array([z_mean]))[0])
            raw_variance = float(
                stats.invert_variance(np.array([z_variance]))[0]
            )
            # The rung validated z_variance > 0; de-normalisation scales by
            # std^2 > 0, so this is a pure belt-and-braces clamp.
            std = float(np.sqrt(max(raw_variance, 0.0)))
            z = float(np.sqrt(2.0) * erfinv(level))
            return Forecast(
                sensor_id=sensor_id, horizon=horizon, mean=mean, std=std,
                interval_low=mean - z * std, interval_high=mean + z * std,
                level=level, source=source, degraded=degraded,
                request_id=scope.request_id,
            )

    def forecast_all(
        self, horizon: int | None = None, level: float = 0.95
    ) -> ForecastBatch:
        """Forecasts for every registered sensor, grouped per backend.

        Sensors sharing a backend run back-to-back (good locality on a
        real device; on the simulated one it keeps each device's time
        ledger contiguous); the returned mapping is sorted by sensor id.
        One sensor's failure no longer aborts the batch: completed
        forecasts are returned and the failure lands in
        :attr:`ForecastBatch.errors`.

        The per-backend groups run as one lane per shard on the
        configured engine.  Each lane preserves the sequential path's
        per-backend sensor order, so kernel dispatch, simulated-time
        attribution and fault-injection ticks are identical per backend
        and the batch — forecasts *and* errors — is bit-identical to an
        inline run on every engine.
        """
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        self._resolve_horizon(horizon)  # reject bad horizons up front
        with reqctx.begin_request("forecast_all") as scope:
            t0 = time.perf_counter()
            tasks = self._plan_tasks(
                self.sensor_ids, lambda sid: ("forecast", sid, horizon, level)
            )
            n_items = sum(len(task.plan.sensor_ids) for task in tasks)
            if scope.minted:
                obs.observe_request_start(
                    "forecast_all", scope.request_id, n_items=n_items
                )
            ok = False
            n_errors = 0
            try:
                lane_outcomes = self._engine.run_batch(
                    "forecast_all", scope, tasks
                )
                results: dict[str, Forecast] = {}
                errors: dict[str, Exception] = {}
                for task, outcomes in zip(tasks, lane_outcomes):
                    for sensor_id, (status, payload) in zip(
                        task.plan.sensor_ids, outcomes
                    ):
                        if status == "ok":
                            results[sensor_id] = payload
                        else:
                            logger.warning(
                                "forecast_all: sensor %s failed: %s",
                                sensor_id, payload,
                            )
                            errors[sensor_id] = payload
                batch = ForecastBatch(sorted(results.items()))
                batch.errors = dict(sorted(errors.items()))
                n_errors = len(batch.errors)
                ok = True
                return batch
            finally:
                if scope.minted:
                    obs.observe_request_end(
                        "forecast_all", scope.request_id,
                        time.perf_counter() - t0, ok=ok,
                        n_items=n_items, n_errors=n_errors,
                    )

    # ------------------------------------------------------------ snapshots
    def snapshot(self, directory) -> list[pathlib.Path]:
        """Persist every sensor's state; returns the written paths."""
        with self._engine.mutating():
            return self._snapshot_synced(directory)

    def _snapshot_synced(self, directory) -> list[pathlib.Path]:
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for sensor_id, smiler in self._sensors.items():
            # Ids are validated at register(); re-check here so a future
            # bypass can never write outside the snapshot directory.
            _validate_sensor_id(sensor_id)
            path = directory / f"{sensor_id}.npz"
            save_smiler(smiler, path)
            paths.append(path)
        # Normalisation stats ride along in one extra archive.
        norms = {
            f"{sid}_mean": np.array([st.mean])
            for sid, st in self._norms.items()
        }
        norms.update(
            {f"{sid}_std": np.array([st.std]) for sid, st in self._norms.items()}
        )
        np.savez(directory / "_norms.npz", **norms)
        paths.append(directory / "_norms.npz")
        return paths

    def restore(self, directory) -> None:
        """Load every snapshotted sensor into this (empty) service.

        Each archive is parsed first, its memory estimated, and the pool
        picks the hosting backend before the index is rebuilt — the same
        admission path as :meth:`register`.
        """
        with reqctx.begin_request("restore") as scope:
            t0 = time.perf_counter()
            if scope.minted:
                obs.observe_request_start("restore", scope.request_id)
            ok = False
            try:
                with self._engine.mutating():
                    with self._admission_lock:
                        self._restore_locked(directory)
                ok = True
            finally:
                if scope.minted:
                    obs.observe_request_end(
                        "restore", scope.request_id,
                        time.perf_counter() - t0, ok=ok,
                        n_items=len(self._sensors),
                    )

    def _restore_locked(self, directory) -> None:
        if self._sensors:
            raise RuntimeError("restore() requires an empty service")
        directory = pathlib.Path(directory)
        norm_path = directory / "_norms.npz"
        if not norm_path.exists():
            raise FileNotFoundError(f"no snapshot at {directory}")
        with np.load(norm_path) as archive:
            raw = {name: float(archive[name][0]) for name in archive.files}
        for path in sorted(directory.glob("*.npz")):
            if path.name == "_norms.npz":
                continue
            try:
                snapshot = load_snapshot(path)
            except SnapshotCorruptionError:
                raise
            except Exception as error:
                raise SnapshotCorruptionError(
                    f"archive {path.name!r} cannot be parsed as a sensor "
                    f"snapshot: {error}"
                ) from error
            series = np.asarray(snapshot.series)
            if series.ndim != 1 or series.size == 0:
                raise SnapshotCorruptionError(
                    f"archive {path.name!r} holds a series of shape "
                    f"{series.shape}; expected a non-empty 1-d array "
                    "— hand-edited snapshot?"
                )
            sensor_id = snapshot.sensor_id
            if not _SENSOR_ID_RE.fullmatch(sensor_id):
                raise SnapshotCorruptionError(
                    f"archive {path.name!r} declares invalid sensor id "
                    f"{sensor_id!r}"
                )
            mean_key, std_key = f"{sensor_id}_mean", f"{sensor_id}_std"
            if mean_key not in raw or std_key not in raw:
                raise SnapshotCorruptionError(
                    f"archive {path.name!r} holds sensor {sensor_id!r} but "
                    f"{norm_path.name!r} has no normalisation stats for it "
                    "— orphan archive from another snapshot?"
                )
            self._admit(
                sensor_id,
                snapshot.series.size,
                snapshot.config,
                lambda backend, snap=snapshot: build_smiler(
                    snap, backend=backend
                ),
            )
            self._norms[sensor_id] = ZNormStats(
                mean=raw[mean_key], std=raw[std_key]
            )

    # ------------------------------------------------------- observability
    def metrics(self) -> dict:
        """JSON snapshot of the process-wide metrics registry.

        Empty until :func:`repro.obs.enable` is called — instrumentation
        is off by default and free when off.
        """
        return to_json(obs.get_registry())

    def trace_last_request(self) -> Span | None:
        """Span tree of the most recent instrumented request.

        For a ``forecast()`` this is the single forecast span; for
        ``forecast_all()`` / ``ingest_many()`` it is the batch root span
        owning exactly one ``lane`` child per backend shard (connected
        across worker threads and worker processes — the engine adopts
        each completed lane subtree under the root).  ``None`` until a
        request runs with observability enabled.
        """
        return self._last_trace

    # ------------------------------------------------------------- status
    def status(self) -> dict:
        """Fleet diagnostics: memory, simulated time, per-sensor state.

        Health records are snapshotted atomically (``health_dict``) and
        fleet membership is read under the admission lock, so a status
        taken while lanes are serving never shows a torn breaker record
        or a half-registered sensor.  Engines that move state
        off-process sync it back first, so counters and ledgers reflect
        every batch served so far.
        """
        self._engine.refresh()
        with self._admission_lock:
            counts = self.sensors_per_backend()
            sensors = dict(self._sensors)
        event_log = obs.get_event_log()
        return {
            "n_sensors": len(sensors),
            "engine": self._engine.name,
            "device_memory_bytes": self._pool.allocated_bytes,
            "device_sim_seconds": self._pool.elapsed_s,
            "max_workers": self.max_workers,
            "slo": obs.get_slo_tracker().snapshot(),
            "events": {
                "retained": len(event_log),
                "emitted_total": event_log.emitted_total,
                "dropped_total": event_log.dropped_total,
            },
            "backends": [
                {
                    "name": backend.name,
                    "n_sensors": counts[i],
                    "allocated_bytes": backend.allocated_bytes,
                    "sim_seconds": backend.elapsed_s,
                    "health": self._pool.health_dict(i),
                }
                for i, backend in enumerate(self._pool.backends)
            ],
            "sensors": {
                sensor_id: smiler.diagnostics()
                for sensor_id, smiler in sensors.items()
            },
        }

    # ------------------------------------------------------------ lifecycle
    def reset_time(self) -> None:
        """Zero every backend's simulated-time ledger, wherever the
        authoritative backend objects currently live (benchmark warmup
        boundaries)."""
        self._engine.reset_time()

    def close(self) -> None:
        """Release engine resources (worker processes, shared memory),
        syncing any off-process state back first.  The service stays
        usable — a later batch restarts what it needs."""
        self._engine.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
