"""Ablation study runner: baseline-plus-one-component-off experiments.

The enumerator expands a component registry into **baseline + N runs**
(one per component, that component's patch applied), each with a stable
deterministic run ID — the SHA-256 of the canonicalised (disabled
component set, applied patch, workload config) triple.  The same study
on the same workload therefore produces the same IDs in every process
and every PR, which makes ``BENCH_ablation.json`` diffable across
commits and lets a re-run reuse previously recorded results
(``reuse=`` — resumability without a scheduler).

Every run measures two phases:

* **search phase** — a :class:`~repro.index.suffix_search.SuffixKnnEngine`
  driven through continuous steps on a seeded workload, collecting
  per-tier prune counts and simulated kernel seconds; skipped (recorded
  as ``null``) for components whose patch does not touch the search
  pipeline.  The final step is always cross-checked **bit-identically**
  against the full-DTW oracle
  (:func:`repro.index.reference.suffix_knn_reference`) — a search
  ablation that loses exactness fails the study.
* **serving phase** — a :class:`~repro.service.PredictionService` fleet
  serving ``forecast_all``/``ingest_many`` rounds, collecting wall and
  simulated latency, MAE against the revealed truth, and a bit-exact
  **forecast digest** (SHA-256 over every ``float.hex()`` mean/std).
  Components with ``claims_exact=True`` must reproduce the baseline
  digest; a divergence raises :class:`AblationExactnessError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..backend import make_backend
from ..backend.pool import BreakerConfig
from ..core.config import SMiLerConfig
from ..index.reference import suffix_knn_reference
from ..index.suffix_search import SuffixKnnEngine, SuffixSearchConfig
from ..service import PredictionService, ServiceConfig
from ..timeseries.datasets import make_dataset
from .registry import Component, default_registry, validate_registry

__all__ = [
    "AblationExactnessError",
    "AblationWorkload",
    "SMOKE_WORKLOAD",
    "PlannedRun",
    "RunResult",
    "StudyResult",
    "RunSetup",
    "apply_patch",
    "check_exactness",
    "enumerate_runs",
    "run_id",
    "run_study",
]


class AblationExactnessError(RuntimeError):
    """An ablation changed answers it declared it would not change."""


@dataclass(frozen=True)
class AblationWorkload:
    """The seeded workload every run of one study executes.

    Everything that shapes the measured numbers lives here, because the
    run-ID hash covers this dataclass verbatim: change any field and
    every ID changes (results from different workloads never collide).
    """

    # -- serving phase ---------------------------------------------------
    dataset: str = "ROAD"
    n_sensors: int = 6
    n_backends: int = 2
    n_points: int = 1600
    steps: int = 16
    predictor: str = "ar"
    elv: tuple[int, ...] = (8, 16)
    ekv: tuple[int, ...] = (4, 8)
    rho: int = 2
    omega: int = 4
    # -- search phase ----------------------------------------------------
    search_points: int = 12_000
    search_steps: int = 8
    search_item_lengths: tuple[int, ...] = (32, 64, 96)
    search_k_max: int = 8
    search_omega: int = 16
    search_rho: int = 24
    # -- shared ----------------------------------------------------------
    seed: int = 2015
    backend: str = "simulated"

    def base_smiler_config(self) -> SMiLerConfig:
        """The baseline (everything-on) SMiLer configuration."""
        return SMiLerConfig(
            elv=self.elv, ekv=self.ekv, rho=self.rho, omega=self.omega,
            horizons=(1,), predictor=self.predictor,
        )

    def base_search_config(self) -> SuffixSearchConfig:
        """The baseline (everything-on) search-phase configuration."""
        return SuffixSearchConfig(
            item_lengths=self.search_item_lengths,
            k_max=self.search_k_max,
            omega=self.search_omega,
            rho=self.search_rho,
            margin=1,
        )


#: CI-sized workload: seconds per run, exactness checks still in full.
SMOKE_WORKLOAD = AblationWorkload(
    n_sensors=4, n_points=900, steps=6,
    search_points=4_000, search_steps=4,
)


@dataclass(frozen=True)
class RunSetup:
    """Fully patched per-run configuration bundle."""

    smiler: SMiLerConfig
    search: SuffixSearchConfig
    service: ServiceConfig
    breaker: BreakerConfig
    backend_kind: str


def apply_patch(
    workload: AblationWorkload, component: Component | None
) -> RunSetup:
    """Baseline configs with one component's patch applied (none for the
    baseline run itself)."""
    smiler = workload.base_smiler_config()
    search = workload.base_search_config()
    service = ServiceConfig()
    breaker = BreakerConfig()
    backend_kind = workload.backend
    if component is None:
        return RunSetup(smiler, search, service, breaker, backend_kind)
    smiler_fields = {f.name for f in dataclasses.fields(SMiLerConfig)}
    for key, value in component.patch:
        prefix, _, field_name = key.partition(".")
        if prefix == "search":
            search = dataclasses.replace(search, **{field_name: value})
            # Search knobs mirrored on SMiLerConfig flow into the
            # serving phase too, so the ablation is end-to-end.
            if field_name in smiler_fields:
                smiler = dataclasses.replace(smiler, **{field_name: value})
        elif prefix == "smiler":
            smiler = dataclasses.replace(smiler, **{field_name: value})
        elif prefix == "service":
            service = dataclasses.replace(service, **{field_name: value})
        elif prefix == "breaker":
            breaker = dataclasses.replace(breaker, **{field_name: value})
        elif prefix == "backend":
            backend_kind = str(value)
        else:  # validate_component already rejects these
            raise ValueError(f"unknown patch target in {key!r}")
    return RunSetup(smiler, search, service, breaker, backend_kind)


# ---------------------------------------------------------------- run IDs
def _canonical(obj: object) -> object:
    """JSON-stable form: dataclasses to dicts, tuples to lists."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _canonical(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def run_id(
    workload: AblationWorkload, component: Component | None
) -> str:
    """Stable deterministic run ID.

    SHA-256 over the canonical JSON of (disabled component names, the
    applied patch, the workload config) — no process state, no clocks,
    no hash randomisation, so the same configuration yields the same ID
    in every process and across PRs.
    """
    payload = {
        "off": [] if component is None else [component.name],
        "patch": (
            [] if component is None
            else [[k, _canonical(v)] for k, v in component.patch]
        ),
        "workload": _canonical(workload),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "abl-" + hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PlannedRun:
    """One enumerated experiment: a run ID plus the component it ablates
    (``None`` = the baseline)."""

    run_id: str
    component: Component | None


def enumerate_runs(
    workload: AblationWorkload,
    components: tuple[Component, ...] | None = None,
) -> list[PlannedRun]:
    """Baseline plus exactly one run per component, IDs precomputed.

    Components are ordered by name so the enumeration (and therefore the
    emitted JSON) is deterministic regardless of registry order.
    """
    if components is None:
        components = default_registry()
    else:
        validate_registry(components)
    plans = [PlannedRun(run_id(workload, None), None)]
    for component in sorted(components, key=lambda c: c.name):
        plans.append(PlannedRun(run_id(workload, component), component))
    return plans


# ---------------------------------------------------------------- phases
def _run_search_phase(
    setup: RunSetup, workload: AblationWorkload
) -> dict:
    """Continuous suffix-kNN steps with per-tier accounting + oracle."""
    ds = make_dataset(
        workload.dataset, n_sensors=1,
        n_points=workload.search_points + workload.search_steps,
        test_points=workload.search_steps, seed=workload.seed,
    )
    history, tail = ds.sensor(0)
    engine = SuffixKnnEngine(
        history.values, setup.search, backend=make_backend(setup.backend_kind)
    )
    engine.search()  # warm-up: build indexes, seed threshold reuse
    engine.backend.reset_time()
    totals = {
        "candidates_total": 0, "candidates_unfiltered": 0,
        "candidates_verified": 0, "pruned_kim": 0, "pruned_window": 0,
        "pruned_improved": 0, "abandoned_early": 0,
    }
    sim_s = 0.0
    answers = None
    t0 = time.perf_counter()
    for point in tail:
        answers = engine.step(float(point))
        for a in answers.values():
            totals["candidates_total"] += a.candidates_total
            totals["candidates_unfiltered"] += a.candidates_unfiltered
            totals["candidates_verified"] += a.candidates_verified
            totals["pruned_kim"] += a.pruned_kim
            totals["pruned_window"] += a.pruned_window
            totals["pruned_improved"] += a.pruned_improved
            totals["abandoned_early"] += a.abandoned_early
            sim_s += a.verification_sim_s + a.selection_sim_s
    wall_s = time.perf_counter() - t0
    reference_exact = True
    assert answers is not None
    for d, answer in answers.items():
        ref_starts, ref_distances = suffix_knn_reference(
            engine.series, engine.item_query(d), setup.search.k_max,
            setup.search.rho, margin=setup.search.margin,
        )
        if not (
            np.array_equal(answer.starts, ref_starts)
            and np.array_equal(answer.distances, ref_distances)
        ):
            reference_exact = False
    total = max(totals["candidates_total"], 1)
    return {
        "wall_s": float(wall_s),
        "sim_s": float(sim_s),
        "candidates_total": totals["candidates_total"],
        "verified_rate": float(totals["candidates_verified"] / total),
        "unfiltered_rate": float(totals["candidates_unfiltered"] / total),
        "prune_rates": {
            "kim": float(totals["pruned_kim"] / total),
            "window": float(totals["pruned_window"] / total),
            "improved": float(totals["pruned_improved"] / total),
            "abandoned": float(totals["abandoned_early"] / total),
        },
        "reference_exact": bool(reference_exact),
    }


def _run_serving_phase(
    setup: RunSetup, workload: AblationWorkload
) -> dict:
    """Fleet serving rounds: latency, MAE and the bit-exact digest."""
    ds = make_dataset(
        workload.dataset, n_sensors=workload.n_sensors,
        n_points=workload.n_points + workload.steps,
        test_points=workload.steps, seed=workload.seed,
    )
    service = PredictionService(
        config=setup.smiler,
        backends=[
            make_backend(setup.backend_kind)
            for _ in range(workload.n_backends)
        ],
        min_history=min(256, workload.n_points),
        breaker=setup.breaker,
        service_config=setup.service,
    )
    tails: dict[str, np.ndarray] = {}
    try:
        for i in range(workload.n_sensors):
            history, tail = ds.sensor(i)
            sensor_id = f"s{i:03d}"
            service.register(sensor_id, history.values)
            tails[sensor_id] = tail
        service.reset_time()  # engine-aware: zeroes worker-held ledgers too
        digest = hashlib.sha256()
        abs_errors: list[float] = []
        latencies: list[float] = []
        degraded = 0
        t_start = time.perf_counter()
        for step in range(workload.steps):
            t0 = time.perf_counter()
            batch = service.forecast_all()
            latencies.append(time.perf_counter() - t0)
            if batch.errors:
                raise RuntimeError(
                    f"serving phase lost sensors {sorted(batch.errors)}"
                )
            for sensor_id in sorted(batch):
                forecast = batch[sensor_id]
                truth = float(tails[sensor_id][step])
                abs_errors.append(abs(forecast.mean - truth))
                degraded += int(forecast.degraded)
                digest.update(
                    f"{sensor_id}:{step}:{float(forecast.mean).hex()}:"
                    f"{float(forecast.std).hex()}\n".encode("ascii")
                )
            service.ingest_many(
                {sid: float(tails[sid][step]) for sid in tails}
            )
        wall_s = time.perf_counter() - t_start
    finally:
        service.close()  # flush worker-held ledgers/telemetry
    sim_seconds = [backend.elapsed_s for backend in service.backends]
    return {
        "backend": setup.backend_kind,
        "wall_s": float(wall_s),
        "p50_batch_s": float(np.percentile(np.asarray(latencies), 50)),
        "sim_s": float(sum(sim_seconds)),
        "sim_parallel_s": float(max(sim_seconds)),
        "mae": float(np.mean(abs_errors)),
        "degraded_forecasts": int(degraded),
        "forecast_digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------- study
@dataclass
class RunResult:
    """Measured metrics of one executed run."""

    run_id: str
    component: str | None
    layer: str | None
    claims_exact: bool
    search: dict | None
    serving: dict
    reused: bool = False

    def as_dict(self) -> dict:
        """JSON-friendly record (the ``runs`` rows of the bench file)."""
        return {
            "run_id": self.run_id,
            "component": self.component,
            "layer": self.layer,
            "claims_exact": self.claims_exact,
            "reused": self.reused,
            "search": self.search,
            "serving": self.serving,
        }


@dataclass
class StudyResult:
    """All runs of one study, baseline first."""

    workload: AblationWorkload
    runs: list[RunResult] = field(default_factory=list)

    @property
    def baseline(self) -> RunResult:
        """The everything-on run."""
        return self.runs[0]


def check_exactness(baseline: RunResult, run: RunResult) -> None:
    """Enforce the exactness contract of one ablation run.

    * The search oracle is unconditional: any run that executed the
      search phase must match the full-DTW reference scan bit-for-bit.
    * Forecast parity is conditional on the declaration: a
      ``claims_exact`` component must reproduce the baseline's forecast
      digest.  An ablation that changes answers without declaring it is
      a failed run, not a data point.
    """
    if run.search is not None and not run.search["reference_exact"]:
        raise AblationExactnessError(
            f"run {run.run_id} ({run.component}): search answers diverged "
            "from the full-DTW reference oracle"
        )
    if run.claims_exact and (
        run.serving["forecast_digest"] != baseline.serving["forecast_digest"]
    ):
        raise AblationExactnessError(
            f"run {run.run_id} ({run.component}): declared exact but served "
            f"different forecasts (digest "
            f"{run.serving['forecast_digest'][:12]} != baseline "
            f"{baseline.serving['forecast_digest'][:12]})"
        )


def _execute(plan: PlannedRun, workload: AblationWorkload) -> RunResult:
    setup = apply_patch(workload, plan.component)
    component = plan.component
    run_search = component is None or component.touches_search
    search = _run_search_phase(setup, workload) if run_search else None
    serving = _run_serving_phase(setup, workload)
    return RunResult(
        run_id=plan.run_id,
        component=None if component is None else component.name,
        layer=None if component is None else component.layer,
        claims_exact=True if component is None else component.claims_exact,
        search=search,
        serving=serving,
    )


def run_study(
    workload: AblationWorkload | None = None,
    components: tuple[Component, ...] | None = None,
    reuse: dict[str, dict] | None = None,
    progress=None,
) -> StudyResult:
    """Execute baseline + one-off runs; enforce exactness per run.

    ``reuse`` maps previously recorded run IDs to their ``as_dict``
    rows (e.g. loaded from an earlier ``BENCH_ablation.json``); runs
    whose stable ID appears there are not re-executed.  The baseline is
    always executed fresh so digests stay comparable.
    """
    workload = workload or AblationWorkload()
    plans = enumerate_runs(workload, components)
    study = StudyResult(workload=workload)
    for plan in plans:
        stored = None if plan.component is None else (reuse or {}).get(
            plan.run_id
        )
        if stored is not None:
            result = RunResult(
                run_id=plan.run_id,
                component=stored.get("component"),
                layer=stored.get("layer"),
                claims_exact=bool(stored.get("claims_exact", True)),
                search=stored.get("search"),
                serving=stored["serving"],
                reused=True,
            )
        else:
            result = _execute(plan, workload)
        if plan.component is not None and not result.reused:
            check_exactness(study.baseline, result)
        study.runs.append(result)
        if progress is not None:
            name = result.component or "baseline"
            flag = " (reused)" if result.reused else ""
            progress(
                f"{result.run_id}  {name:<18} "
                f"serving {result.serving['wall_s']:.2f}s wall, "
                f"mae {result.serving['mae']:.4f}{flag}"
            )
    return study
