"""Declarative registry of ablatable system components.

Each :class:`Component` names one load-bearing mechanism of the system,
tags the layer it lives in, and carries the **config patch** that turns
it off (or swaps it for its baseline variant).  Patches are dotted
``target.field`` assignments against the real config dataclasses —
:class:`~repro.index.suffix_search.SuffixSearchConfig`,
:class:`~repro.core.config.SMiLerConfig`,
:class:`~repro.service.ServiceConfig`,
:class:`~repro.backend.pool.BreakerConfig` — plus the special
``backend.kind`` key selecting the compute backend.  Because patches
reference dataclass fields by name, :func:`validate_component` (and the
registry-completeness test) catches a knob rename the moment it happens
instead of silently ablating nothing.

``claims_exact`` declares the component a *pure optimisation*: turning
it off must not change a single served forecast bit.  The study runner
enforces the declaration — an exactness-declared ablation whose
forecasts diverge from baseline fails the whole run
(:class:`~repro.ablation.study.AblationExactnessError`), which is
exactly the property the cascade tiers inherit from Lemire's
``LB_Improved`` (arxiv 0811.3301) and the exact-indexing lower-bound
framework (arxiv 0906.2459): admissible bounds prune work, never
answers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..backend import BACKEND_NAMES
from ..backend.pool import BreakerConfig
from ..core.config import SMiLerConfig
from ..exec import ENGINE_NAMES
from ..index.suffix_search import SuffixSearchConfig
from ..service import ServiceConfig

__all__ = [
    "Component",
    "DEFAULT_COMPONENTS",
    "PATCH_TARGETS",
    "default_registry",
    "validate_component",
    "validate_registry",
]

#: Patch-key prefix -> the config dataclass it patches.  ``backend`` is
#: special-cased (``backend.kind`` selects the compute-backend name).
PATCH_TARGETS: dict[str, type] = {
    "search": SuffixSearchConfig,
    "smiler": SMiLerConfig,
    "service": ServiceConfig,
    "breaker": BreakerConfig,
}


@dataclass(frozen=True)
class Component:
    """One ablatable mechanism: a name, a layer tag and a config patch.

    ``patch`` maps dotted knob names to the ablated value, e.g.
    ``(("search.cascade", False),)``.  ``claims_exact`` promises the
    ablation changes *work*, never *answers* — enforced at run time
    against the baseline's forecast digest.
    """

    name: str
    layer: str
    description: str
    patch: tuple[tuple[str, object], ...]
    claims_exact: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.patch:
            raise ValueError("a component needs a name and a non-empty patch")

    @property
    def touches_search(self) -> bool:
        """Whether any patched knob lives in the search pipeline."""
        return any(key.split(".", 1)[0] == "search" for key, _ in self.patch)

    def patched_fields(self) -> dict[str, object]:
        """``dotted-key -> value`` view of the patch."""
        return dict(self.patch)


def validate_component(component: Component) -> None:
    """Raise ``ValueError`` unless every patched knob actually exists.

    This is the rename trip-wire: a patch naming a field that was
    renamed or removed from its config dataclass fails here, not as a
    silently-inert ablation.
    """
    for key, value in component.patch:
        prefix, _, field_name = key.partition(".")
        if not field_name:
            raise ValueError(
                f"component {component.name!r}: patch key {key!r} must be "
                "dotted (target.field)"
            )
        if prefix == "backend":
            if field_name != "kind":
                raise ValueError(
                    f"component {component.name!r}: unknown backend patch "
                    f"key {key!r} (only backend.kind is supported)"
                )
            if value not in BACKEND_NAMES:
                raise ValueError(
                    f"component {component.name!r}: unknown backend kind "
                    f"{value!r}; available: {BACKEND_NAMES}"
                )
            continue
        target = PATCH_TARGETS.get(prefix)
        if target is None:
            raise ValueError(
                f"component {component.name!r}: unknown patch target "
                f"{prefix!r}; available: "
                f"{tuple(PATCH_TARGETS)} + ('backend',)"
            )
        known = {f.name for f in dataclasses.fields(target)}
        if field_name not in known:
            raise ValueError(
                f"component {component.name!r}: {target.__name__} has no "
                f"field {field_name!r} (knob renamed?); fields: "
                f"{sorted(known)}"
            )
        if key == "service.engine" and value not in ENGINE_NAMES:
            raise ValueError(
                f"component {component.name!r}: unknown engine {value!r}; "
                f"available: {ENGINE_NAMES}"
            )


def validate_registry(components: tuple[Component, ...]) -> None:
    """Validate every component and reject duplicate names."""
    seen: set[str] = set()
    for component in components:
        if component.name in seen:
            raise ValueError(f"duplicate component name {component.name!r}")
        seen.add(component.name)
        validate_component(component)


#: The default ablation surface: every load-bearing knob the system has
#: grown, one component per mechanism.  Search-tier components are exact
#: by construction (admissible bounds); engine/worker/backend variants
#: are exact by the bit-identical serving contract pinned in
#: ``tests/test_exec_parity.py`` / ``tests/test_backend_parity.py``;
#: predict-layer components (ensemble, auto-tuning, sleep) genuinely
#: change forecasts and say so.
DEFAULT_COMPONENTS: tuple[Component, ...] = (
    Component(
        name="cascade",
        layer="search",
        description="tiered pruning cascade (off = single LB_w filter pass)",
        patch=(("search.cascade", False),),
    ),
    Component(
        name="lb-kim",
        layer="search",
        description="tier-0 O(1) first/last-point LB_Kim pre-filter",
        patch=(("search.lb_kim", False),),
    ),
    Component(
        name="lb-improved",
        layer="search",
        description="tier-2 two-pass Lemire LB_Improved filter",
        patch=(("search.lb_improved", False),),
    ),
    Component(
        name="early-abandon",
        layer="search",
        description="tier-3 early-abandoning banded DTW verification",
        patch=(("search.early_abandon", False),),
    ),
    Component(
        name="envelope-reuse",
        layer="search",
        description="O(rho) sliding reuse of per-item query envelopes",
        patch=(("search.reuse_envelopes", False),),
    ),
    Component(
        name="threshold-reuse",
        layer="search",
        description="previous-step kNN answers seeding the filter threshold",
        patch=(("search.reuse_threshold", False),),
    ),
    Component(
        name="engine-thread",
        layer="serving",
        description="thread-lane execution engine with 4 worker lanes "
        "(baseline serves inline/sequential)",
        patch=(("service.engine", "thread"), ("service.max_workers", 4)),
    ),
    Component(
        name="engine-process",
        layer="serving",
        description="process-per-shard execution engine with 4 lanes",
        patch=(("service.engine", "process"), ("service.max_workers", 4)),
    ),
    Component(
        name="breaker",
        layer="resilience",
        description="circuit breakers (off = breakers effectively never "
        "trip)",
        patch=(
            ("breaker.failure_threshold", 1_000_000_000),
            ("breaker.cooldown_ops", 1_000_000_000),
        ),
    ),
    Component(
        name="ensemble",
        layer="predict",
        description="the (k, d) ensemble matrix (off = single-cell "
        "SMiLerNE)",
        patch=(("smiler.ensemble", False),),
        claims_exact=False,
    ),
    Component(
        name="auto-tuning",
        layer="predict",
        description="self-adaptive ensemble weight updates (off = fixed "
        "weights, SMiLerNS)",
        patch=(("smiler.self_adaptive", False),),
        claims_exact=False,
    ),
    Component(
        name="sleep-scheduler",
        layer="predict",
        description="sleep-and-recovery scheduling of weak ensemble cells",
        patch=(("smiler.sleep_enabled", False),),
        claims_exact=False,
    ),
    Component(
        name="simulated-backend",
        layer="backend",
        description="SimulatedGpuBackend cost-model accounting (variant: "
        "plain-NumPy NativeBackend)",
        patch=(("backend.kind", "native"),),
    ),
)


def default_registry() -> tuple[Component, ...]:
    """The validated default component registry."""
    validate_registry(DEFAULT_COMPONENTS)
    return DEFAULT_COMPONENTS
