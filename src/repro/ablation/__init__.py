"""System-wide ablation harness: which components carry the wins?

The subsystem has three parts (see ``docs/architecture.md``):

* :mod:`repro.ablation.registry` — the declarative surface: every
  ablatable component as a (name, layer, config patch, exactness
  declaration) record, validated against the real config dataclasses so
  a knob rename is caught immediately.
* :mod:`repro.ablation.study` — the enumerator and runner: baseline +
  one-component-off runs with stable deterministic run IDs, per-run
  search/serving measurement, and hard exactness enforcement (full-DTW
  oracle + bit-exact forecast digests).
* :mod:`repro.ablation.report` — the scorer: deterministic per-component
  deltas, ranked importance, the text report and the
  ``BENCH_ablation.json`` payload.

Run it via ``python -m repro.cli ablate [--smoke]``; the committed
smoke baseline under ``benchmarks/baselines/`` is what
``benchmarks/gate.py`` regresses fresh runs against in CI.
"""

from .registry import (
    Component,
    DEFAULT_COMPONENTS,
    default_registry,
    validate_component,
    validate_registry,
)
from .report import ComponentScore, bench_payload, render_report, score_study
from .study import (
    AblationExactnessError,
    AblationWorkload,
    PlannedRun,
    RunResult,
    SMOKE_WORKLOAD,
    StudyResult,
    apply_patch,
    check_exactness,
    enumerate_runs,
    run_id,
    run_study,
)

__all__ = [
    "AblationExactnessError",
    "AblationWorkload",
    "Component",
    "ComponentScore",
    "DEFAULT_COMPONENTS",
    "PlannedRun",
    "RunResult",
    "SMOKE_WORKLOAD",
    "StudyResult",
    "apply_patch",
    "bench_payload",
    "check_exactness",
    "default_registry",
    "enumerate_runs",
    "render_report",
    "run_id",
    "run_study",
    "score_study",
    "validate_component",
    "validate_registry",
]
