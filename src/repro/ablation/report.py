"""Scoring and reporting: per-component deltas → ranked importance.

The importance score is built **only from deterministic metrics** —
simulated kernel seconds (the cost model's ledger), the verified-rate
of the search cascade, and MAE — never from wall-clock, so the ranking
is bit-reproducible for a given workload seed and stable across hosts.
Wall-clock deltas are reported alongside as informational columns,
flagged meaningless on starved hosts the same way the serving bench
flags them.

Sign convention: a **positive** delta means the system got *worse* with
the component off (more simulated work, higher MAE, more candidates
verified) — i.e. the component carries a win.  A negative importance
flags a harmful component: the system measured *better* without it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.reporting import format_seconds, render_table
from .study import RunResult, StudyResult

__all__ = ["ComponentScore", "score_study", "render_report", "bench_payload"]

#: Guard for relative deltas against near-zero baselines.
_EPS = 1e-12


@dataclass(frozen=True)
class ComponentScore:
    """Deltas of one component-off run against the baseline."""

    component: str
    layer: str
    run_id: str
    claims_exact: bool
    #: Relative change in search-phase simulated seconds (None when the
    #: component does not touch the search pipeline).
    search_sim_delta: float | None
    #: Absolute change in the fraction of candidates whose true DTW was
    #: computed (percentage points / 100).
    verified_rate_delta: float | None
    #: Relative change in serving-phase simulated seconds (None when the
    #: run swapped backend kinds — ledgers are not comparable).
    serving_sim_delta: float | None
    #: Relative change in serving MAE (0 by construction for exact
    #: components).
    mae_delta: float
    #: Informational only — wall-clock is host noise.
    serving_wall_delta: float
    #: The deterministic blend the ranking sorts on.
    importance: float

    def as_dict(self) -> dict:
        """JSON-friendly record (the ``ranking`` rows of the bench file)."""
        return {
            "component": self.component,
            "layer": self.layer,
            "run_id": self.run_id,
            "claims_exact": self.claims_exact,
            "search_sim_delta": self.search_sim_delta,
            "verified_rate_delta": self.verified_rate_delta,
            "serving_sim_delta": self.serving_sim_delta,
            "mae_delta": self.mae_delta,
            "serving_wall_delta": self.serving_wall_delta,
            "importance": self.importance,
        }


def _rel(current: float, base: float) -> float:
    return float((current - base) / max(abs(base), _EPS))


def _score_one(baseline: RunResult, run: RunResult) -> ComponentScore:
    base_serving, serving = baseline.serving, run.serving
    # Simulated-time ledgers are only comparable within one backend
    # kind (the native fast path keeps no cost-model ledger), so a
    # backend-variant run contributes no sim delta to its importance.
    same_backend = serving.get("backend") == base_serving.get("backend")
    serving_sim_delta = (
        _rel(serving["sim_s"], base_serving["sim_s"]) if same_backend
        else None
    )
    mae_delta = _rel(serving["mae"], base_serving["mae"])
    serving_wall_delta = _rel(serving["wall_s"], base_serving["wall_s"])
    search_sim_delta = None
    verified_rate_delta = None
    if run.search is not None and baseline.search is not None:
        search_sim_delta = _rel(
            run.search["sim_s"], baseline.search["sim_s"]
        )
        verified_rate_delta = float(
            run.search["verified_rate"] - baseline.search["verified_rate"]
        )
    importance = (
        (search_sim_delta or 0.0)
        + (verified_rate_delta or 0.0)
        + (serving_sim_delta or 0.0)
        + mae_delta
    )
    return ComponentScore(
        component=run.component or "baseline",
        layer=run.layer or "-",
        run_id=run.run_id,
        claims_exact=run.claims_exact,
        search_sim_delta=search_sim_delta,
        verified_rate_delta=verified_rate_delta,
        serving_sim_delta=serving_sim_delta,
        mae_delta=mae_delta,
        serving_wall_delta=serving_wall_delta,
        importance=float(importance),
    )


def score_study(study: StudyResult) -> list[ComponentScore]:
    """Ranked importance, most load-bearing component first.

    Ordering is fully deterministic: primary key importance descending,
    tie-break component name ascending — re-scoring the same runs (in
    any input order) yields the same ranking.
    """
    baseline = study.baseline
    scores = [
        _score_one(baseline, run)
        for run in study.runs
        if run.component is not None
    ]
    scores.sort(key=lambda s: (-s.importance, s.component))
    return scores


def _pct(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:+.1%}"


def render_report(
    study: StudyResult, scores: list[ComponentScore] | None = None
) -> str:
    """The ranked importance report as an aligned text table."""
    scores = scores if scores is not None else score_study(study)
    baseline = study.baseline
    rows = []
    for rank, score in enumerate(scores, start=1):
        rows.append([
            rank,
            score.component,
            score.layer,
            _pct(score.search_sim_delta),
            _pct(score.verified_rate_delta),
            _pct(score.serving_sim_delta),
            _pct(score.mae_delta),
            _pct(score.serving_wall_delta),
            f"{score.importance:+.3f}",
            "yes" if score.claims_exact else "no",
        ])
    header = (
        f"Ablation importance (baseline {baseline.run_id}: serving "
        f"{format_seconds(baseline.serving['wall_s'])} wall / "
        f"{format_seconds(baseline.serving['sim_s'])} sim, "
        f"mae {baseline.serving['mae']:.4f}).\n"
        "Positive deltas = worse with the component off (the component "
        "carries a win); wall-clock deltas are informational only."
    )
    return render_table(
        ["rank", "component", "layer", "Δsearch sim", "Δverified",
         "Δserve sim", "Δmae", "Δwall", "importance", "exact"],
        rows,
        title=header,
    )


def bench_payload(
    study: StudyResult,
    smoke: bool,
    cpu_count: int | None,
) -> dict:
    """The ``BENCH_ablation.json`` document."""
    scores = score_study(study)
    return {
        "benchmark": "ablation",
        "config": {
            "workload": _workload_dict(study),
            "smoke": bool(smoke),
        },
        "host": {
            "cpu_count": cpu_count,
            # Serving wall numbers need spare cores exactly like the
            # serving bench; the sim/MAE/prune numbers never do.
            "wall_speedup_meaningful": (
                cpu_count is not None and cpu_count > 1
            ),
        },
        "baseline_run_id": study.baseline.run_id,
        "runs": [run.as_dict() for run in study.runs],
        "ranking": [score.as_dict() for score in scores],
    }


def _workload_dict(study: StudyResult) -> dict:
    import dataclasses

    return {
        key: (list(value) if isinstance(value, tuple) else value)
        for key, value in dataclasses.asdict(study.workload).items()
    }
