"""Metric exposition: Prometheus text format and JSON snapshots.

``to_prometheus`` renders the registry in the Prometheus text exposition
format (version 0.0.4) — ``# HELP`` / ``# TYPE`` headers, one line per
series, histograms as cumulative ``_bucket{le=...}`` series plus
``_sum`` / ``_count``.  The output is scrape-ready: serve it under
``/metrics`` with any HTTP server (or dump it to a file and point a
``textfile`` collector at it).

``to_json`` renders the same state as a plain dict for programmatic
consumers (the experiment harness's ``--metrics-out`` snapshots and
:meth:`repro.service.PredictionService.metrics`).  Counter and histogram
series that carry an exemplar (``{"request_id": ...}``) include it under
an ``"exemplar"`` key — the text format stays plain 0.0.4, which has no
exemplar syntax.
"""

from __future__ import annotations

import math

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus", "to_json"]


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key in metric.series_keys():
                labels = _format_labels(metric.labels_of(key))
                value = metric.value(**metric.labels_of(key))
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
        elif isinstance(metric, Histogram):
            for key in metric.series_keys():
                label_dict = metric.labels_of(key)
                series = metric.series(**label_dict)
                if series is None:  # pragma: no cover - racy delete only
                    continue
                cumulative = series.cumulative()
                bounds = list(metric.bounds) + [math.inf]
                for bound, count in zip(bounds, cumulative):
                    le = _format_labels(
                        label_dict, extra=f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{metric.name}_bucket{le} {count}")
                labels = _format_labels(label_dict)
                lines.append(
                    f"{metric.name}_sum{labels} {_format_value(series.sum)}"
                )
                lines.append(f"{metric.name}_count{labels} {series.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry) -> dict:
    """Snapshot the registry as a JSON-serialisable dict."""
    out: dict[str, dict] = {}
    for metric in registry.metrics():
        record: dict = {
            "kind": metric.kind,
            "help": metric.help,
            "label_names": list(metric.label_names),
            "series": [],
        }
        if isinstance(metric, (Counter, Gauge)):
            for key in metric.series_keys():
                labels = metric.labels_of(key)
                entry: dict = {"labels": labels, "value": metric.value(**labels)}
                if isinstance(metric, Counter):
                    exemplar = metric.exemplar(**labels)
                    if exemplar is not None:
                        entry["exemplar"] = exemplar
                record["series"].append(entry)
        elif isinstance(metric, Histogram):
            record["buckets"] = list(metric.bounds)
            for key in metric.series_keys():
                labels = metric.labels_of(key)
                series = metric.series(**labels)
                if series is None:  # pragma: no cover - racy delete only
                    continue
                entry = {
                    "labels": labels,
                    "count": series.count,
                    "sum": series.sum,
                    "bucket_counts": series.cumulative(),
                    "p50": series.quantile(0.5, metric.bounds),
                    "p95": series.quantile(0.95, metric.bounds),
                    "p99": series.quantile(0.99, metric.bounds),
                }
                if series.exemplar is not None:
                    entry["exemplar"] = dict(series.exemplar)
                record["series"].append(entry)
        out[metric.name] = record
    return out
