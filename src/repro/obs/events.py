"""Bounded structured event log: the narrative half of observability.

Metrics aggregate, traces time — the event log *narrates*: request
start/end, degradation-rung transitions, circuit-breaker state changes,
fault injections and evacuations land here as flat JSON-friendly dicts,
each stamped with the correlation triple (``request_id``, ``sensor_id``,
``backend_id``) so a log line, a metric exemplar and a span from the
same request all join on the same id.

The log is a fixed-capacity in-memory ring buffer: past capacity the
oldest events fall off (``dropped_total`` counts them, so operators can
tell a quiet system from a saturated buffer).  Emission is one lock,
one dict and one deque append — and :mod:`repro.obs.hooks` only calls
it when instrumentation is enabled, so the serving hot path pays a flag
check when telemetry is off.

Every event carries two clocks:

* ``ts`` — ``time.time()`` epoch seconds, for humans and log shipping,
* ``mono_s`` — ``time.perf_counter()`` seconds, the same monotonic
  clock spans use, so the Chrome exporter can lay event instants onto
  the span timeline without cross-clock skew.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from typing import Iterable

from . import context as reqctx

__all__ = ["EventLog", "EVENT_KINDS"]

#: The event vocabulary the serving stack emits (extensible — the log
#: itself accepts any kind; this tuple documents the built-in ones).
EVENT_KINDS = (
    "request_start",
    "request_end",
    "degraded",
    "breaker_transition",
    "fault_injected",
    "evacuation",
)

#: Default ring capacity — roomy enough for thousands of requests,
#: bounded so a chatty fleet can never eat the process's memory.
DEFAULT_CAPACITY = 4096


class EventLog:
    """Thread-safe fixed-capacity ring buffer of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0

    # ------------------------------------------------------------- writing
    def emit(
        self,
        kind: str,
        *,
        request_id: str | None = None,
        sensor_id: str | None = None,
        backend_id: object = None,
        **fields,
    ) -> dict:
        """Append one event; returns the stored record.

        ``request_id`` defaults to the request bound to the calling
        thread (:func:`repro.obs.context.current_request_id`), which is
        how lane-thread emissions correlate with their entry point
        without every call site threading the id through.
        """
        if request_id is None:
            request_id = reqctx.current_request_id()
        event = {
            "ts": time.time(),
            "mono_s": time.perf_counter(),
            "kind": str(kind),
            "request_id": request_id,
            "sensor_id": sensor_id,
            "backend_id": backend_id,
        }
        for name, value in fields.items():
            if value is not None:
                event[name] = value
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event)
        return event

    def absorb(self, events: Iterable[dict], dropped: int = 0) -> None:
        """Merge events drained from another process's log into this one.

        Shard workers ship their retained events (plus their own drop
        count) with every batch reply and on the final flush, so nothing
        a worker narrated is lost when its process exits.  Worker
        timestamps (``ts`` / ``mono_s``) are preserved — both clocks are
        comparable across processes — but ``seq`` is re-stamped from this
        log's counter so ordering stays consistent ring-wide.
        """
        events = list(events)
        with self._lock:
            for event in events:
                event = dict(event)
                event["seq"] = self._seq
                self._seq += 1
                if len(self._ring) == self.capacity:
                    self._dropped += 1
                self._ring.append(event)
            self._dropped += int(dropped)
            self._seq += int(dropped)

    # ------------------------------------------------------------- reading
    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` events, oldest first (all when None)."""
        with self._lock:
            events = list(self._ring)
        if n is not None:
            if n < 0:
                raise ValueError(f"n must be non-negative, got {n}")
            events = events[len(events) - min(n, len(events)):]
        return events

    def for_request(self, request_id: str) -> list[dict]:
        """Every retained event stamped with one request id."""
        return [e for e in self.tail() if e["request_id"] == request_id]

    def of_kind(self, kind: str) -> list[dict]:
        """Every retained event of one kind, oldest first."""
        return [e for e in self.tail() if e["kind"] == kind]

    def to_jsonl(self, events: Iterable[dict] | None = None) -> str:
        """Render events (default: the whole ring) as JSON Lines."""
        buffer = io.StringIO()
        for event in self.tail() if events is None else events:
            buffer.write(json.dumps(event, sort_keys=True, default=str))
            buffer.write("\n")
        return buffer.getvalue()

    # ------------------------------------------------------------ plumbing
    @property
    def dropped_total(self) -> int:
        """Events evicted by the ring bound since the last clear."""
        with self._lock:
            return self._dropped

    @property
    def emitted_total(self) -> int:
        """Events ever emitted (retained + dropped) since the last clear."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        """Drop every retained event and zero the counters."""
        with self._lock:
            self._ring.clear()
            self._seq = 0
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
