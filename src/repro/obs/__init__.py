"""Observability for the SMiLer serving stack.

The paper's performance story (Figs. 7-13) is about *where time goes* —
LB_en pruning ratios, window/group reuse, GP training budgets, kernel
occupancy.  This package makes those quantities first-class at runtime:

* :mod:`repro.obs.registry` — process-wide counters, gauges and
  histograms with labels;
* :mod:`repro.obs.tracing` — nested ``span()`` trees over the request
  path with wall-clock and simulated-GPU-second attribution;
* :mod:`repro.obs.exposition` — Prometheus text and JSON snapshots;
* :mod:`repro.obs.hooks` — the hot-path hooks the serving stack calls,
  gated by one global switch (:func:`enable` / :func:`disable`).

Instrumentation is **off by default** and free when off: every hook is a
single flag check.  Typical use::

    from repro import obs
    obs.enable()
    service.forecast("sensor-0")
    print(obs.to_prometheus(obs.get_registry()))
    print(obs.format_span_tree(service.trace_last_request()))
"""

from .exposition import to_json, to_prometheus
from .hooks import (
    disable,
    enable,
    get_registry,
    get_tracer,
    is_enabled,
    observe_forecast,
    observe_gp_training,
    observe_gpu_memory,
    observe_kernel_launch,
    observe_search,
    observe_window_reuse,
    reset,
    span,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
)
from .tracing import Span, Tracer, format_span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "format_span_tree",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "observe_forecast",
    "observe_gp_training",
    "observe_gpu_memory",
    "observe_kernel_launch",
    "observe_search",
    "observe_window_reuse",
    "reset",
    "span",
    "to_json",
    "to_prometheus",
]
