"""Observability for the SMiLer serving stack.

The paper's performance story (Figs. 7-13) is about *where time goes* —
LB_en pruning ratios, window/group reuse, GP training budgets, kernel
occupancy.  This package makes those quantities first-class at runtime:

* :mod:`repro.obs.registry` — process-wide counters, gauges and
  histograms with labels (and per-series request-id exemplars);
* :mod:`repro.obs.tracing` — nested ``span()`` trees over the request
  path with wall-clock and simulated-GPU-second attribution;
* :mod:`repro.obs.context` — request-id minting and cross-thread
  propagation (always on; the rest of the layer is switch-gated);
* :mod:`repro.obs.events` — a bounded structured event log (request
  lifecycle, degradations, breaker trips, faults, evacuations);
* :mod:`repro.obs.slo` — per-request-class latency objectives, rolling
  error budgets and served-degraded accounting;
* :mod:`repro.obs.chrome` — Chrome trace-event export of one request's
  span tree (open in ``chrome://tracing`` or Perfetto);
* :mod:`repro.obs.exposition` — Prometheus text and JSON snapshots;
* :mod:`repro.obs.hooks` — the hot-path hooks the serving stack calls,
  gated by one global switch (:func:`enable` / :func:`disable`).

Instrumentation is **off by default** and free when off: every hook is a
single flag check.  Typical use::

    from repro import obs
    obs.enable()
    service.forecast("sensor-0")
    print(obs.to_prometheus(obs.get_registry()))
    print(obs.format_span_tree(service.trace_last_request()))
"""

from .chrome import trace_to_chrome, validate_chrome_trace, write_chrome_trace
from .context import begin_request, current_request_id, new_request_id
from .events import EventLog
from .exposition import to_json, to_prometheus
from .hooks import (
    configure_slo,
    detached_span,
    disable,
    enable,
    get_event_log,
    get_registry,
    get_slo_tracker,
    get_tracer,
    is_enabled,
    observe_backend_state,
    observe_breaker_transition,
    observe_degraded_forecast,
    observe_evacuation,
    observe_fault_injected,
    observe_forecast,
    observe_gp_training,
    observe_gpu_memory,
    observe_kernel_launch,
    observe_lane,
    observe_request_end,
    observe_request_start,
    observe_search,
    observe_window_reuse,
    reset,
    span,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
)
from .slo import DEFAULT_SLOS, SLOTarget, SLOTracker
from .tracing import Span, Tracer, format_span_tree

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "EventLog",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "SLOTarget",
    "SLOTracker",
    "Span",
    "Tracer",
    "begin_request",
    "configure_slo",
    "current_request_id",
    "detached_span",
    "disable",
    "enable",
    "format_span_tree",
    "get_event_log",
    "get_registry",
    "get_slo_tracker",
    "get_tracer",
    "is_enabled",
    "new_request_id",
    "observe_backend_state",
    "observe_breaker_transition",
    "observe_degraded_forecast",
    "observe_evacuation",
    "observe_fault_injected",
    "observe_forecast",
    "observe_gp_training",
    "observe_gpu_memory",
    "observe_kernel_launch",
    "observe_lane",
    "observe_request_end",
    "observe_request_start",
    "observe_search",
    "observe_window_reuse",
    "reset",
    "span",
    "to_json",
    "to_prometheus",
    "trace_to_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
]
