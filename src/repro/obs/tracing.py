"""Lightweight pipeline tracing: nested spans with time attribution.

A :class:`Span` measures one stage of the request path (``forecast``,
``predict``, ``search``, ``dtw_refine``, ``gp_fit`` ...).  Spans nest via
a thread-local stack managed by the :class:`Tracer`; entering a span
while another is open makes it a child, so one ``forecast()`` call
produces a tree mirroring the pipeline of the paper's Fig. 3.

Each span records

* **wall-clock** — ``time.perf_counter`` delta between enter and exit,
* **simulated GPU time** — when constructed with a device, the delta of
  :attr:`repro.gpu.device.GpuDevice.elapsed_s` across the span, i.e. the
  simulated kernel seconds *attributable to this stage* (children's
  device time is included in the parent's, exactly like wall-clock).

Spans are context managers::

    tracer = Tracer()
    with tracer.span("search", device=device):
        with tracer.span("lower_bounds", device=device):
            ...

Completed root spans are retained on ``tracer.last_root`` for
``trace_last_request()``-style APIs.  The module is dependency-free and
never touches the global enable switch — :mod:`repro.obs.hooks` decides
*whether* to trace; this module only knows *how*.

Cross-thread trees: a worker lane opens a *detached* span
(:meth:`Tracer.detached_span`) — it roots the lane thread's own stack
(so the lane's nested spans parent correctly) but never claims
``last_root`` when it closes.  After the lanes join, the parent thread
attaches each completed lane tree under its open root with
:meth:`Span.adopt`, in deterministic lane order, yielding exactly one
connected tree per request regardless of worker count.  Every span also
records ``start_s`` (``perf_counter`` at enter), which is what the
Chrome trace-event exporter (:mod:`repro.obs.chrome`) lays tracks out
with.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Span", "Tracer", "format_span_tree"]


class Span:
    """One timed stage; also the context manager that times it."""

    __slots__ = (
        "name", "attrs", "children", "wall_s", "gpu_sim_s", "start_s",
        "_tracer", "_device", "_t0", "_gpu0", "_detached",
    )

    def __init__(
        self, tracer: "Tracer", name: str, device=None, detached: bool = False
    ) -> None:
        self.name = name
        self.attrs: dict[str, object] = {}
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.gpu_sim_s = 0.0
        #: ``perf_counter`` when the span was entered (0.0 before enter);
        #: the trace clock the Chrome exporter aligns tracks on.
        self.start_s = 0.0
        self._tracer = tracer
        self._device = device
        self._t0 = 0.0
        self._gpu0 = 0.0
        self._detached = detached

    # -------------------------------------------------------------- context
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        if self._device is not None:
            self._gpu0 = self._device.elapsed_s
        self._t0 = self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        if self._device is not None:
            self.gpu_sim_s = self._device.elapsed_s - self._gpu0
        self._tracer._pop(self)
        return False

    # ----------------------------------------------------------- adoption
    def adopt(self, child: "Span") -> None:
        """Attach a *completed* detached span as a child of this one.

        This is how cross-thread trees connect: worker lanes build their
        own detached subtrees, and the parent thread adopts them after
        the lanes join — so the append races with nothing and the child
        order is whatever the caller chose (lane order, typically).
        """
        self.children.append(child)

    # ---------------------------------------------------------------- views
    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant named ``name``, depth-first order."""
        out = []
        for child in self.children:
            if child.name == name:
                out.append(child)
            out.extend(child.find_all(name))
        return out

    def as_dict(self) -> dict:
        """JSON-friendly nested record."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "gpu_sim_s": self.gpu_sim_s,
            "attrs": dict(self.attrs),
            "children": [child.as_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a completed span tree from :meth:`as_dict` output.

        This is how lane subtrees cross the process boundary: a shard
        worker serialises its detached ``lane`` span, the parent rebuilds
        it here and :meth:`adopt`\\ s it under the request root.  The
        result is a *completed* span — detached, tracer-less, usable for
        :meth:`find` / :meth:`as_dict` / Chrome export but not re-enterable.
        ``start_s`` stays comparable across processes because both sides
        read the same monotonic ``perf_counter`` clock.
        """
        span = cls.__new__(cls)
        span.name = str(record["name"])
        span.attrs = dict(record.get("attrs", {}))
        span.children = [
            cls.from_dict(child) for child in record.get("children", [])
        ]
        span.wall_s = float(record.get("wall_s", 0.0))
        span.gpu_sim_s = float(record.get("gpu_sim_s", 0.0))
        span.start_s = float(record.get("start_s", 0.0))
        span._tracer = None
        span._device = None
        span._t0 = 0.0
        span._gpu0 = 0.0
        span._detached = True
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, wall={self.wall_s:.6f}s, "
            f"gpu={self.gpu_sim_s:.6f}s, children={len(self.children)})"
        )


class Tracer:
    """Thread-local span stack + last-completed-root retention.

    Every thread nests spans on its own stack, so concurrent serving
    lanes each build their own tree and never parent a span under
    another thread's open span.  ``last_root`` is process-wide — under
    concurrency it is whichever root completed last (its write is
    lock-guarded, so the reference is always a *complete* tree)."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._root_lock = threading.Lock()
        self.last_root: Span | None = None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, device=None) -> Span:
        """A new span; nests under the currently open span on this thread."""
        return Span(self, name, device)

    def detached_span(self, name: str, device=None) -> Span:
        """A span for a worker lane: roots its own thread's stack but
        never claims ``last_root`` — the parent thread attaches the
        completed subtree with :meth:`Span.adopt` after the lane joins."""
        return Span(self, name, device, detached=True)

    def current(self) -> Span | None:
        """The innermost open span on this thread (None outside spans)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate exception-driven unwinds: pop through to this span.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack and not span._detached:
            with self._root_lock:
                self.last_root = span

    def reset(self) -> None:
        """Forget the retained root and this thread's open stack.

        Other threads' open stacks are untouched (they are thread-local
        by design); callers resetting between experiments should do so
        from a quiesced state."""
        with self._root_lock:
            self.last_root = None
        self._local.stack = []


def format_span_tree(span: Span, indent: int = 0) -> str:
    """Human-readable tree: name, wall seconds, simulated GPU seconds."""
    attrs = ""
    if span.attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        attrs = f"  [{inner}]"
    line = (
        f"{'  ' * indent}{span.name:<24s} "
        f"wall={span.wall_s * 1e3:8.3f}ms  gpu={span.gpu_sim_s * 1e3:8.3f}ms"
        f"{attrs}"
    )
    lines = [line]
    for child in span.children:
        lines.append(format_span_tree(child, indent + 1))
    return "\n".join(lines)
