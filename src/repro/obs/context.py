"""Request-scoped trace context: one ``request_id`` per service entry.

Every :class:`~repro.service.PredictionService` entry point (``forecast``,
``forecast_all``, ``ingest``, ``ingest_many``, ``restore``) opens a
:func:`begin_request` scope.  The first scope on a call path *mints* a
fresh request id; nested scopes (a ``forecast`` running inside a
``forecast_all`` lane) *adopt* the enclosing request instead, so one
user-visible request carries exactly one id no matter how many internal
service calls it fans out into.

Worker lanes run on :class:`~concurrent.futures.ThreadPoolExecutor`
threads, which do **not** inherit the submitting thread's context —
each lane explicitly re-binds the parent's :class:`RequestContext` with
:func:`adopt`.  That is the cross-lane propagation half of the telemetry
layer: spans, event-log lines and metric exemplars recorded on any lane
all resolve :func:`current_request_id` to the same value the entry point
minted.

The module is dependency-free and always on: minting is one counter
increment plus one string format, orders of magnitude below a forecast,
so request ids exist even when :mod:`repro.obs.hooks` is disabled (the
:class:`~repro.service.Forecast.request_id` field is always populated).
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass

__all__ = [
    "RequestContext",
    "RequestScope",
    "adopt",
    "begin_request",
    "current_request",
    "current_request_id",
    "new_request_id",
]

#: Per-process id sequence; the pid prefix keeps ids unique across the
#: process-per-shard future without any coordination.
_SEQUENCE = itertools.count(1)
_PROCESS_TAG = f"{os.getpid():x}"

#: The request bound to the current thread of execution (context-local,
#: so every thread — and every asyncio task, later — sees its own).
_CURRENT: ContextVar["RequestContext | None"] = ContextVar(
    "repro_request", default=None
)


def new_request_id() -> str:
    """A fresh process-unique request id (``req-<pid hex>-<seq>``)."""
    return f"req-{_PROCESS_TAG}-{next(_SEQUENCE):06d}"


@dataclass(frozen=True)
class RequestContext:
    """Identity of one in-flight service request.

    ``started_s`` is :func:`time.perf_counter` at mint time — the same
    monotonic clock spans use, so lane queue-wait can be attributed
    against the request start.
    """

    request_id: str
    entry_point: str
    started_s: float


def current_request() -> RequestContext | None:
    """The request bound to this thread (None outside any entry point)."""
    return _CURRENT.get()


def current_request_id() -> str | None:
    """Shorthand: the bound request's id, or None."""
    ctx = _CURRENT.get()
    return ctx.request_id if ctx is not None else None


class RequestScope:
    """Context manager binding one :class:`RequestContext` to the thread.

    ``minted`` is True when this scope created the context (it is the
    request's entry point and owns start/end accounting); False when it
    adopted an enclosing or cross-thread parent context.
    """

    __slots__ = ("context", "minted", "_token")

    def __init__(self, context: RequestContext, minted: bool) -> None:
        self.context = context
        self.minted = minted
        self._token = None

    @property
    def request_id(self) -> str:
        return self.context.request_id

    def __enter__(self) -> "RequestScope":
        # Nested scopes on the minting thread adopt the identical
        # context; re-binding it would be pure hot-path overhead (one
        # set/reset per nested forecast), so only bind when the thread
        # does not already carry this exact context.
        if _CURRENT.get() is not self.context:
            self._token = _CURRENT.set(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


def begin_request(entry_point: str) -> RequestScope:
    """A scope for one service entry point.

    Mints a new request id unless the calling thread is already inside a
    request (nested service calls adopt the outer request).
    """
    existing = _CURRENT.get()
    if existing is not None:
        return RequestScope(existing, minted=False)
    context = RequestContext(
        request_id=new_request_id(),
        entry_point=entry_point,
        started_s=time.perf_counter(),
    )
    return RequestScope(context, minted=True)


def adopt(context: RequestContext) -> RequestScope:
    """A scope re-binding an existing request on another thread (lanes)."""
    return RequestScope(context, minted=False)
