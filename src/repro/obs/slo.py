"""SLOs: per-class latency objectives, rolling error budgets, and
served-degraded accounting.

SMiLer's pitch is *bounded-latency* semi-lazy prediction, so the
telemetry layer tracks the bound explicitly.  Each request class (the
service entry points: ``forecast``, ``forecast_all``, ``ingest``,
``ingest_many``, ``restore``) carries an :class:`SLOTarget` — a latency
objective plus an attainment target over a rolling sample window.  The
:class:`SLOTracker` consumes one sample per completed request and
answers the three operator questions:

* **attainment** — what fraction of the window met the objective,
* **error budget** — of the violations the target permits over the
  window, how much is left (negative = overdrawn),
* **served degraded** — how many forecasts each degradation-ladder rung
  served (a request can meet its latency SLO *because* it degraded;
  this surface keeps that honest).

The tracker is registry-agnostic; :mod:`repro.obs.hooks` mirrors its
state into Prometheus metrics (``smiler_slo_*``) on every request end,
so scrapes and :meth:`repro.service.PredictionService.status` see the
same numbers.
"""

from __future__ import annotations

import math
import threading
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass
from typing import Mapping

__all__ = ["SLOTarget", "SLOTracker", "DEFAULT_SLOS"]


@dataclass(frozen=True)
class SLOTarget:
    """One request class's objective: latency bound + attainment target."""

    #: A request meets the SLO when it succeeds within this many seconds.
    objective_s: float
    #: Required fraction of requests meeting the objective over the window.
    target: float = 0.99
    #: Rolling window length, in requests.
    window: int = 512

    def __post_init__(self) -> None:
        if self.objective_s <= 0.0:
            raise ValueError(
                f"objective_s must be positive, got {self.objective_s}"
            )
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {self.target}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")


#: Default objectives per service entry point.  Deliberately permissive —
#: they are operating bounds, not benchmarks; tighten per deployment via
#: :func:`repro.obs.hooks.configure_slo`.
DEFAULT_SLOS: dict[str, SLOTarget] = {
    "forecast": SLOTarget(objective_s=0.5),
    "forecast_all": SLOTarget(objective_s=5.0),
    "ingest": SLOTarget(objective_s=0.5),
    "ingest_many": SLOTarget(objective_s=5.0),
    "restore": SLOTarget(objective_s=30.0),
}

#: Objective applied to request classes with no configured target.
FALLBACK_TARGET = SLOTarget(objective_s=5.0)


class _ClassWindow:
    """Rolling met/missed window plus lifetime tallies for one class."""

    __slots__ = ("samples", "met_in_window", "total", "breaches_total")

    def __init__(self, window: int) -> None:
        self.samples: deque[bool] = deque(maxlen=window)
        self.met_in_window = 0
        self.total = 0
        self.breaches_total = 0

    def record(self, met: bool) -> None:
        if len(self.samples) == self.samples.maxlen and self.samples[0]:
            self.met_in_window -= 1
        self.samples.append(met)
        if met:
            self.met_in_window += 1
        else:
            self.breaches_total += 1
        self.total += 1


class SLOTracker:
    """Thread-safe rolling SLO accounting over request classes."""

    def __init__(
        self, objectives: Mapping[str, SLOTarget] | None = None
    ) -> None:
        self._objectives = dict(DEFAULT_SLOS if objectives is None else objectives)
        self._windows: dict[str, _ClassWindow] = {}
        self._degraded: TallyCounter[str] = TallyCounter()
        self._lock = threading.Lock()

    # -------------------------------------------------------------- config
    def objective(self, class_: str) -> SLOTarget:
        """The target governing one request class."""
        return self._objectives.get(class_, FALLBACK_TARGET)

    def configure(self, objectives: Mapping[str, SLOTarget]) -> None:
        """Replace/extend per-class targets (existing windows survive)."""
        with self._lock:
            self._objectives.update(objectives)

    # ------------------------------------------------------------ recording
    def record(self, class_: str, latency_s: float, ok: bool = True) -> bool:
        """Consume one completed request; returns whether it met the SLO.

        A request meets its SLO when it succeeded *and* finished within
        the class objective.  Errors always burn budget.
        """
        target = self.objective(class_)
        met = bool(ok) and latency_s <= target.objective_s
        with self._lock:
            window = self._windows.get(class_)
            if window is None:
                window = self._windows[class_] = _ClassWindow(target.window)
            window.record(met)
        return met

    def record_degraded(self, rung: str) -> None:
        """Tally one forecast served by a degradation-ladder rung."""
        with self._lock:
            self._degraded[str(rung)] += 1

    # -------------------------------------------------------------- queries
    def attainment(self, class_: str) -> float:
        """Fraction of the rolling window meeting the SLO (NaN if empty)."""
        with self._lock:
            window = self._windows.get(class_)
            if window is None or not window.samples:
                return math.nan
            return window.met_in_window / len(window.samples)

    def error_budget_remaining(self, class_: str) -> float:
        """Fraction of the window's violation budget still unspent.

        The budget is ``(1 - target) * window_samples``; 1.0 means the
        budget is untouched, 0.0 means exactly spent, negative means
        overdrawn.  An empty window reports a full budget.
        """
        target = self.objective(class_)
        with self._lock:
            window = self._windows.get(class_)
            if window is None or not window.samples:
                return 1.0
            n = len(window.samples)
            violations = n - window.met_in_window
            budget = (1.0 - target.target) * n
            if budget <= 0.0:
                return 1.0 if violations == 0 else -float(violations)
            return (budget - violations) / budget

    def served_degraded(self) -> dict[str, int]:
        """Forecasts served per degradation rung since the last reset."""
        with self._lock:
            return dict(self._degraded)

    # ------------------------------------------------- cross-process merge
    def drain_degraded(self) -> dict[str, int]:
        """Return and clear the served-degraded tallies.

        Shard workers record rung tallies locally (degradation happens
        inside ``forecast`` op execution) and drain them into each batch
        reply; the parent :meth:`absorb_degraded`\\ s them.  Latency
        windows are untouched — request-end samples are recorded on the
        parent side only, so they never need to cross the boundary.
        """
        with self._lock:
            drained = dict(self._degraded)
            self._degraded.clear()
        return drained

    def absorb_degraded(self, tallies: Mapping[str, int]) -> None:
        """Fold another process's drained rung tallies into this tracker."""
        with self._lock:
            for rung, count in tallies.items():
                self._degraded[str(rung)] += int(count)

    def classes(self) -> list[str]:
        """Request classes with at least one recorded sample, sorted."""
        with self._lock:
            return sorted(self._windows)

    def snapshot(self) -> dict:
        """JSON-friendly state for ``status()`` and the stats CLI."""
        out: dict = {"classes": {}, "served_degraded": self.served_degraded()}
        for class_ in self.classes():
            target = self.objective(class_)
            with self._lock:
                window = self._windows[class_]
                samples = len(window.samples)
                total = window.total
                breaches = window.breaches_total
            out["classes"][class_] = {
                "objective_s": target.objective_s,
                "target": target.target,
                "window": target.window,
                "window_samples": samples,
                "requests_total": total,
                "breaches_total": breaches,
                "attainment": self.attainment(class_),
                "error_budget_remaining": self.error_budget_remaining(class_),
            }
        return out

    def reset(self) -> None:
        """Forget every window and tally (objectives survive)."""
        with self._lock:
            self._windows.clear()
            self._degraded.clear()
