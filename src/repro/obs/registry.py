"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the passive half of the observability layer (the active
half — the hot-path hooks gated by the global enable switch — lives in
:mod:`repro.obs.hooks`).  Metrics follow the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing totals,
* :class:`Gauge` — instantaneous values that move both ways,
* :class:`Histogram` — bucketed distributions with ``sum`` and ``count``.

Every metric carries a fixed set of *label names*; each distinct label
*value* combination is one independent time series.  A per-metric
cardinality cap guards against unbounded label explosions (a sensor id
typo in a loop must fail loudly, not eat the process's memory).

Counters and histograms additionally accept an OpenMetrics-style
**exemplar** — a tiny label dict (typically ``{"request_id": ...}``)
stored *per series*, last write wins.  Exemplars are how unbounded
identifiers ride along with bounded-cardinality metrics: the series
stays one time series, but every sample can still be traced back to the
request that most recently moved it (see ``to_json`` exposition).

All mutating operations are thread-safe: the registry guards its metric
table and every metric guards its own series map, so concurrent
increments from worker threads never lose updates.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LabelCardinalityError",
]

#: Default histogram buckets — latency-shaped (seconds), Prometheus style.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LabelCardinalityError(RuntimeError):
    """Raised when a metric exceeds its label-cardinality cap."""


def _label_key(
    metric: "_MetricBase", labels: dict[str, object]
) -> tuple[str, ...]:
    """Canonical series key: label values in declared label-name order."""
    if set(labels) != set(metric.label_names):
        raise ValueError(
            f"metric {metric.name!r} expects labels {metric.label_names}, "
            f"got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in metric.label_names)


class _MetricBase:
    """Shared naming/labeling/cardinality machinery."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        max_series: int = 1000,
    ) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        if max_series <= 0:
            raise ValueError(f"max_series must be positive, got {max_series}")
        self.name = name
        self.help = help
        self.label_names = tuple(str(n) for n in label_names)
        self.max_series = max_series
        self._series: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _series_slot(self, key: tuple[str, ...], factory):
        """Get-or-create one series under the lock (caller holds nothing)."""
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                raise LabelCardinalityError(
                    f"metric {self.name!r} exceeded {self.max_series} label "
                    f"combinations; refusing {key}"
                )
            series = self._series[key] = factory()
        return series

    def labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        """Reconstruct the label dict of one series key."""
        return dict(zip(self.label_names, key))

    def series_keys(self) -> list[tuple[str, ...]]:
        """All live series keys, sorted for stable exposition."""
        with self._lock:
            return sorted(self._series)


class _Cell:
    """One mutable float slot (counters and gauges)."""

    __slots__ = ("value", "exemplar")

    def __init__(self) -> None:
        self.value = 0.0
        self.exemplar: dict[str, str] | None = None


class Counter(_MetricBase):
    """A monotonically non-decreasing total."""

    kind = "counter"

    def inc(
        self,
        amount: float = 1.0,
        exemplar: dict[str, object] | None = None,
        **labels,
    ) -> None:
        """Add ``amount`` (must be >= 0) to the series named by ``labels``.

        ``exemplar`` (keyword-only, e.g. ``{"request_id": rid}``) is
        retained on the series, last write wins.
        """
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(self, labels)
        with self._lock:
            cell = self._series_slot(key, _Cell)
            cell.value += amount
            if exemplar is not None:
                cell.exemplar = {k: str(v) for k, v in exemplar.items()}

    def value(self, **labels) -> float:
        """Current total of one series (0.0 if never incremented)."""
        key = _label_key(self, labels)
        with self._lock:
            cell = self._series.get(key)
            return cell.value if cell is not None else 0.0

    def exemplar(self, **labels) -> dict[str, str] | None:
        """The series' most recent exemplar (None if never attached)."""
        key = _label_key(self, labels)
        with self._lock:
            cell = self._series.get(key)
            return None if cell is None else cell.exemplar


class Gauge(_MetricBase):
    """An instantaneous value that can move both ways."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Overwrite the series value."""
        key = _label_key(self, labels)
        with self._lock:
            self._series_slot(key, _Cell).value = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative)."""
        key = _label_key(self, labels)
        with self._lock:
            self._series_slot(key, _Cell).value += amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value of one series (0.0 if never set)."""
        key = _label_key(self, labels)
        with self._lock:
            cell = self._series.get(key)
            return cell.value if cell is not None else 0.0


class HistogramSeries:
    """Bucket counts + sum + count for one label combination."""

    __slots__ = ("bucket_counts", "sum", "count", "exemplar")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # cumulative at exposition time
        self.sum = 0.0
        self.count = 0
        self.exemplar: dict[str, str] | None = None

    def observe(self, value: float, bounds: tuple[float, ...]) -> None:
        # Non-cumulative per-bucket tally; cumulated on read.
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1  # +Inf bucket
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float, bounds: tuple[float, ...]) -> float:
        """Bucket-interpolated quantile estimate (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cumulative = self.cumulative()
        for i, c in enumerate(cumulative):
            if c >= target:
                lo = bounds[i - 1] if i > 0 else 0.0
                hi = bounds[i] if i < len(bounds) else math.inf
                prev = cumulative[i - 1] if i > 0 else 0
                in_bucket = c - prev
                if in_bucket == 0 or not math.isfinite(hi):
                    # +Inf bucket (or empty): the last finite bound is the
                    # best defensible estimate.
                    return lo
                return lo + (hi - lo) * (target - prev) / in_bucket
        return bounds[-1]


class Histogram(_MetricBase):
    """A bucketed distribution with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
        max_series: int = 1000,
    ) -> None:
        super().__init__(name, help, label_names, max_series)
        bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"buckets must be strictly increasing: {bounds}")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds  # +Inf bucket is implicit (index len(bounds))

    def observe(
        self,
        value: float,
        exemplar: dict[str, object] | None = None,
        **labels,
    ) -> None:
        """Record one observation into the series named by ``labels``.

        ``exemplar`` (keyword-only) is retained on the series, last
        write wins — see :class:`Counter.inc`.
        """
        key = _label_key(self, labels)
        with self._lock:
            series = self._series_slot(
                key, lambda: HistogramSeries(len(self.bounds) + 1)
            )
            series.observe(float(value), self.bounds)
            if exemplar is not None:
                series.exemplar = {k: str(v) for k, v in exemplar.items()}

    def series(self, **labels) -> HistogramSeries | None:
        """The raw series record (None if never observed)."""
        key = _label_key(self, labels)
        with self._lock:
            return self._series.get(key)

    def quantile(self, q: float, **labels) -> float:
        """Bucket-interpolated quantile of one series (NaN when empty)."""
        record = self.series(**labels)
        if record is None:
            return math.nan
        return record.quantile(q, self.bounds)


class MetricsRegistry:
    """Named collection of metrics with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, _MetricBase] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", label_names: tuple[str, ...] = (),
        max_series: int = 1000,
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(
            Counter, name, help, label_names=label_names, max_series=max_series
        )

    def gauge(
        self, name: str, help: str = "", label_names: tuple[str, ...] = (),
        max_series: int = 1000,
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(
            Gauge, name, help, label_names=label_names, max_series=max_series
        )

    def histogram(
        self, name: str, help: str = "", label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None, max_series: int = 1000,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(
            Histogram, name, help, label_names=label_names, buckets=buckets,
            max_series=max_series,
        )

    def get(self, name: str) -> _MetricBase | None:
        """Look up a metric by name (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[_MetricBase]:
        """All registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every metric (tests and fresh experiment runs)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------- cross-process merge
    def dump_state(self) -> dict:
        """Snapshot every metric as a JSON-safe dict for :meth:`merge_state`.

        This is the metrics half of the process-engine telemetry channel:
        a shard worker dumps, resets, and ships the delta with each batch
        reply; the parent merges.  Counters add, gauges last-write-win,
        histograms merge bucket-wise; exemplars ride along so request-id
        joins survive the process hop.
        """
        state: dict = {}
        for metric in self.metrics():
            record: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "max_series": metric.max_series,
                "series": [],
            }
            if isinstance(metric, Histogram):
                record["buckets"] = list(metric.bounds)
            with metric._lock:
                for key in sorted(metric._series):
                    series = metric._series[key]
                    row: dict = {"labels": list(key)}
                    if isinstance(series, HistogramSeries):
                        row["bucket_counts"] = list(series.bucket_counts)
                        row["sum"] = series.sum
                        row["count"] = series.count
                        row["exemplar"] = series.exemplar
                    else:
                        row["value"] = series.value
                        row["exemplar"] = series.exemplar
                    record["series"].append(row)
            state[metric.name] = record
        return state

    def merge_state(self, state: dict) -> None:
        """Fold a :meth:`dump_state` snapshot from another process in."""
        for name, record in state.items():
            kind = record["kind"]
            label_names = tuple(record["label_names"])
            if kind == "counter":
                metric = self.counter(
                    name, record["help"], label_names=label_names,
                    max_series=record["max_series"],
                )
            elif kind == "gauge":
                metric = self.gauge(
                    name, record["help"], label_names=label_names,
                    max_series=record["max_series"],
                )
            elif kind == "histogram":
                metric = self.histogram(
                    name, record["help"], label_names=label_names,
                    buckets=tuple(record["buckets"]),
                    max_series=record["max_series"],
                )
            else:  # pragma: no cover - forward-compat guard
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            for row in record["series"]:
                key = tuple(row["labels"])
                exemplar = row.get("exemplar")
                with metric._lock:
                    if kind == "histogram":
                        series = metric._series_slot(
                            key,
                            lambda m=metric: HistogramSeries(len(m.bounds) + 1),
                        )
                        for i, c in enumerate(row["bucket_counts"]):
                            series.bucket_counts[i] += int(c)
                        series.sum += float(row["sum"])
                        series.count += int(row["count"])
                        if exemplar is not None:
                            series.exemplar = dict(exemplar)
                    else:
                        cell = metric._series_slot(key, _Cell)
                        if kind == "counter":
                            cell.value += float(row["value"])
                        else:  # gauge: instantaneous, last write wins
                            cell.value = float(row["value"])
                        if exemplar is not None:
                            cell.exemplar = dict(exemplar)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
