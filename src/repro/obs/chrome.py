"""Chrome trace-event export: span trees + event log → ``chrome://tracing``.

Converts one completed request's span tree (plus, optionally, the
structured event log) into the Trace Event Format consumed by
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.  The
layout mirrors the serving architecture:

* the request root and everything on the calling thread land on the
  ``main`` track (``tid`` 0),
* each worker lane span (``name == "lane"``, carrying a ``lane`` attr)
  becomes its own track, named after the lane and its backend, with the
  lane's whole subtree on it — so the picture *is* the thread pool:
  queue-wait gaps, lane skew and stragglers are visible at a glance,
* simulated-GPU seconds are emitted as **async slices** (``ph: "b"`` /
  ``"e"``, category ``gpu_sim``) overlaying each span that attributed
  device time — the cost model's answer drawn against the wall clock,
* event-log lines become instant events (``ph: "i"``) on the track of
  the process, so breaker trips and degradations line up with the spans
  that caused them.

Timestamps are ``perf_counter`` microseconds (the span clock); the
exporter subtracts the earliest timestamp so traces start near zero.

``validate_chrome_trace`` is the schema gate CI runs against exported
files — it checks the structural contract Chrome/Perfetto actually
require rather than a full JSON-Schema dependency.
"""

from __future__ import annotations

import json
import math
import pathlib

from .events import EventLog
from .tracing import Span

__all__ = [
    "trace_to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Single-process export: everything belongs to one pid.
_PID = 1
#: Track ids: the request/caller thread is 0; lanes are 1 + lane index.
_MAIN_TID = 0


def _span_events(
    span: Span,
    tid: int,
    origin_s: float,
    out: list[dict],
    async_ids: dict[str, int],
    lane_tids: dict[int, tuple[int, str]],
) -> None:
    """Emit one span (and recursively its children) onto a track."""
    if span.name == "lane" and "lane" in span.attrs:
        lane = int(span.attrs["lane"])  # one track per worker lane
        tid = 1 + lane
        backend = span.attrs.get("backend_id", span.attrs.get("backend", "?"))
        lane_tids.setdefault(lane, (tid, f"lane-{lane} ({backend})"))
    ts_us = (span.start_s - origin_s) * 1e6
    dur_us = max(span.wall_s, 0.0) * 1e6
    args = {
        key: value if isinstance(value, (int, float, bool)) else str(value)
        for key, value in span.attrs.items()
    }
    args["gpu_sim_ms"] = span.gpu_sim_s * 1e3
    out.append(
        {
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": ts_us,
            "dur": dur_us,
            "pid": _PID,
            "tid": tid,
            "args": args,
        }
    )
    if span.gpu_sim_s > 0.0:
        # Async slice: simulated kernel seconds drawn from the span's
        # start — device time is modelled, not measured, so the overlay
        # shows "what the cost model charged here" against wall time.
        async_ids["next"] += 1
        slice_id = async_ids["next"]
        common = {
            "cat": "gpu_sim",
            "name": f"gpu:{span.name}",
            "pid": _PID,
            "tid": tid,
            "id": slice_id,
        }
        out.append({**common, "ph": "b", "ts": ts_us})
        out.append({**common, "ph": "e", "ts": ts_us + span.gpu_sim_s * 1e6})
    for child in span.children:
        _span_events(child, tid, origin_s, out, async_ids, lane_tids)


def _earliest_start(span: Span) -> float:
    start = span.start_s
    for child in span.children:
        start = min(start, _earliest_start(child))
    return start


def trace_to_chrome(
    root: Span,
    event_log: EventLog | None = None,
    request_id: str | None = None,
) -> dict:
    """Render one span tree (and optional event log) as a trace object.

    ``request_id`` filters the event log to one request's lines; when
    None, every retained event inside the trace's time range is
    exported.  Returns the JSON-object form of the Trace Event Format
    (``{"traceEvents": [...], ...}``).
    """
    if root is None:
        raise ValueError("no span tree to export — was tracing enabled?")
    origin_s = _earliest_start(root)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": _MAIN_TID,
            "args": {"name": "smiler"},
        },
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": _MAIN_TID,
            "args": {"name": "main"},
        },
    ]
    async_ids = {"next": 0}
    lane_tids: dict[int, tuple[int, str]] = {}
    _span_events(root, _MAIN_TID, origin_s, events, async_ids, lane_tids)
    for lane in sorted(lane_tids):
        tid, label = lane_tids[lane]
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    if event_log is not None:
        span_end = origin_s + max(root.wall_s, 0.0)
        for record in event_log.tail():
            if request_id is not None and record["request_id"] != request_id:
                continue
            mono = record.get("mono_s")
            if mono is None or not origin_s <= mono <= span_end + 1e-6:
                if request_id is None:
                    continue
                # Explicitly-requested events export even slightly out of
                # range (an end event stamped after the root span closed).
                mono = min(max(mono or origin_s, origin_s), span_end)
            events.append(
                {
                    "name": record["kind"],
                    "cat": "event",
                    "ph": "i",
                    "s": "p",
                    "ts": (mono - origin_s) * 1e6,
                    "pid": _PID,
                    "tid": _MAIN_TID,
                    "args": {
                        key: value
                        for key, value in record.items()
                        if key not in ("mono_s",) and value is not None
                    },
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.chrome",
            "root_span": root.name,
            "request_id": request_id
            or str(root.attrs.get("request_id", "")) or None,
        },
    }


def write_chrome_trace(
    path,
    root: Span,
    event_log: EventLog | None = None,
    request_id: str | None = None,
) -> pathlib.Path:
    """Export a trace to ``path`` (validated before writing)."""
    payload = trace_to_chrome(root, event_log=event_log, request_id=request_id)
    validate_chrome_trace(payload)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


# --------------------------------------------------------------- validation
_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "b": ("name", "ts", "pid", "tid", "id", "cat"),
    "e": ("name", "ts", "pid", "tid", "id", "cat"),
    "M": ("name", "pid", "args"),
}


def validate_chrome_trace(payload: object) -> None:
    """Structural validation of a Trace Event Format object.

    Raises :class:`ValueError` naming the first offending event.  The
    checks mirror what ``chrome://tracing`` / Perfetto require to render
    a file: the JSON-object form with a ``traceEvents`` list, known
    phases with their mandatory fields, finite non-negative timestamps
    and durations, and balanced async begin/end pairs per ``(cat, id)``.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"trace must be a JSON object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace needs a non-empty 'traceEvents' list")
    async_depth: dict[tuple, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if phase not in _REQUIRED_BY_PHASE:
            raise ValueError(
                f"traceEvents[{i}] has unsupported phase {phase!r}"
            )
        missing = [f for f in _REQUIRED_BY_PHASE[phase] if f not in event]
        if missing:
            raise ValueError(
                f"traceEvents[{i}] (ph={phase!r}) missing fields {missing}"
            )
        for field in ("ts", "dur"):
            if field in event:
                value = event[field]
                if (
                    not isinstance(value, (int, float))
                    or not math.isfinite(value)
                    or value < 0.0
                ):
                    raise ValueError(
                        f"traceEvents[{i}].{field} must be a finite "
                        f"non-negative number, got {value!r}"
                    )
        if phase in ("b", "e"):
            key = (event.get("cat"), event.get("id"))
            depth = async_depth.get(key, 0) + (1 if phase == "b" else -1)
            if depth < 0:
                raise ValueError(
                    f"traceEvents[{i}] ends async slice {key} that never began"
                )
            async_depth[key] = depth
    unbalanced = [key for key, depth in async_depth.items() if depth != 0]
    if unbalanced:
        raise ValueError(f"unbalanced async slices: {unbalanced}")
