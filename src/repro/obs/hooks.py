"""Hot-path instrumentation hooks gated by one global switch.

Every instrumented call site in the serving stack funnels through this
module.  The contract that keeps tier-1 tests and benchmarks honest:

* **Disabled (the default)** — each hook is a single module-global flag
  check followed by an immediate return (or, for :func:`span`, the
  shared no-op context manager).  No dicts, no label tuples, no objects
  are allocated on the disabled path.
* **Enabled** — hooks record into the process-wide
  :class:`~repro.obs.registry.MetricsRegistry` and
  :class:`~repro.obs.tracing.Tracer` returned by :func:`get_registry`
  and :func:`get_tracer`.

The metric catalog (names, types, labels) lives in
``docs/observability.md``; hooks here are the single source of truth for
what gets emitted.
"""

from __future__ import annotations

from . import context as reqctx
from .events import EventLog
from .registry import MetricsRegistry
from .slo import SLOTarget, SLOTracker
from .tracing import Span, Tracer

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "get_registry",
    "get_tracer",
    "get_event_log",
    "get_slo_tracker",
    "configure_slo",
    "span",
    "detached_span",
    "observe_kernel_launch",
    "observe_gpu_memory",
    "observe_search",
    "observe_window_reuse",
    "observe_forecast",
    "observe_gp_training",
    "observe_fault_injected",
    "observe_degraded_forecast",
    "observe_backend_state",
    "observe_breaker_transition",
    "observe_evacuation",
    "observe_request_start",
    "observe_request_end",
    "observe_lane",
]

#: Numeric encoding of circuit-breaker states for the backend_state gauge.
_BREAKER_STATE_CODES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}

#: Simulated-GPU-seconds buckets (kernel launches are micro- to
#: milli-second scale under the cost model).
_SIM_SECONDS_BUCKETS = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1.0,
)
#: Device-cycle buckets (decades from 1k to 10G cycles).
_CYCLE_BUCKETS = tuple(10.0 ** e for e in range(3, 11))

#: Lane queue-wait/execute buckets — sub-millisecond to seconds.
_LANE_SECONDS_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()
_events = EventLog()
_slo = SLOTracker()


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


# ------------------------------------------------------------------ switch
def enable() -> None:
    """Turn instrumentation on process-wide."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (hooks become flag-check no-ops)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether instrumentation is currently on."""
    return _enabled


def reset() -> None:
    """Clear all collected metrics, traces, events and SLO windows (the
    switch and SLO objectives are untouched)."""
    _registry.reset()
    _tracer.reset()
    _events.clear()
    _slo.reset()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def get_event_log() -> EventLog:
    """The process-wide structured event log (ring buffer)."""
    return _events


def get_slo_tracker() -> SLOTracker:
    """The process-wide SLO tracker."""
    return _slo


def configure_slo(objectives: dict[str, SLOTarget]) -> None:
    """Replace/extend the per-request-class SLO objectives."""
    _slo.configure(objectives)


# ----------------------------------------------------------------- tracing
def span(name: str, device=None) -> "Span | _NoopSpan":
    """Open a pipeline span (no-op singleton when disabled)."""
    if not _enabled:
        return _NOOP_SPAN
    return _tracer.span(name, device)


def detached_span(name: str, device=None) -> "Span | _NoopSpan":
    """Open a worker-lane span: roots its own thread's stack, never
    claims ``last_root``; the parent adopts it after the lane joins
    (no-op singleton when disabled)."""
    if not _enabled:
        return _NOOP_SPAN
    return _tracer.detached_span(name, device)


# ------------------------------------------------------------- gpu kernels
def observe_kernel_launch(
    kernel: str, duration_s: float, n_blocks: int, cycles: float
) -> None:
    """Record one simulated kernel launch (called by the cost model)."""
    if not _enabled:
        return
    _registry.counter(
        "smiler_gpu_kernel_launches_total",
        "Simulated kernel launches by kernel name.",
        label_names=("kernel",),
    ).inc(kernel=kernel)
    _registry.counter(
        "smiler_gpu_kernel_blocks_total",
        "Thread blocks scheduled, by kernel name.",
        label_names=("kernel",),
    ).inc(n_blocks, kernel=kernel)
    _registry.histogram(
        "smiler_gpu_kernel_sim_seconds",
        "Simulated duration of one kernel launch.",
        label_names=("kernel",),
        buckets=_SIM_SECONDS_BUCKETS,
    ).observe(duration_s, kernel=kernel)
    _registry.histogram(
        "smiler_gpu_kernel_cycles",
        "Simulated core-cycles of one kernel launch.",
        label_names=("kernel",),
        buckets=_CYCLE_BUCKETS,
    ).observe(cycles, kernel=kernel)


def observe_gpu_memory(allocated_bytes: int) -> None:
    """Track the device-memory ledger after a malloc/free."""
    if not _enabled:
        return
    _registry.gauge(
        "smiler_gpu_memory_allocated_bytes",
        "Bytes currently allocated on the simulated device.",
    ).set(allocated_bytes)


# ------------------------------------------------------------------ search
def observe_search(
    item_length: int,
    candidates_total: int,
    candidates_unfiltered: int,
    candidates_verified: int | None = None,
    pruned_kim: int = 0,
    pruned_window: int = 0,
    pruned_improved: int = 0,
    abandoned_early: int = 0,
) -> None:
    """Record one Suffix kNN search's pruning effectiveness.

    ``candidates_verified`` is the number of candidates whose true DTW
    was computed — it can exceed ``candidates_unfiltered`` because
    threshold seeds are verified even when their bound is above ``tau``.
    When omitted it defaults to ``candidates_unfiltered`` (the old,
    seed-blind accounting).  The ``pruned_*``/``abandoned_early`` counts
    attribute kills to individual cascade tiers.
    """
    if not _enabled:
        return
    if candidates_verified is None:
        candidates_verified = candidates_unfiltered
    _registry.counter(
        "smiler_search_queries_total",
        "Suffix kNN item-query searches executed.",
        label_names=("item_length",),
    ).inc(item_length=item_length)
    _registry.counter(
        "smiler_search_candidates_total",
        "Candidate segments considered, by item length.",
        label_names=("item_length",),
    ).inc(candidates_total, item_length=item_length)
    _registry.counter(
        "smiler_search_candidates_pruned_total",
        "Candidates pruned by the lower-bound cascade, by item length.",
        label_names=("item_length",),
    ).inc(
        candidates_total - candidates_unfiltered, item_length=item_length
    )
    _registry.counter(
        "smiler_search_candidates_verified_total",
        "Candidates whose true DTW was computed (seeds included), by "
        "item length.",
        label_names=("item_length",),
    ).inc(candidates_verified, item_length=item_length)
    tier_counts = (
        ("kim", pruned_kim),
        ("window", pruned_window),
        ("improved", pruned_improved),
        ("abandoned", abandoned_early),
    )
    if any(count for _, count in tier_counts):
        tier_counter = _registry.counter(
            "smiler_search_pruned_tier_total",
            "Candidates killed per cascade tier: kim (LB_Kim), window "
            "(LB_w), improved (LB_Improved), abandoned (early-abandoned "
            "mid-DTW).",
            label_names=("item_length", "tier"),
        )
        for tier, count in tier_counts:
            if count:
                tier_counter.inc(count, item_length=item_length, tier=tier)


def observe_window_reuse(
    rows_built_full: int = 0,
    rows_recomputed_lbeq: int = 0,
    rows_reused: int = 0,
    columns_recomputed_lbec: int = 0,
) -> None:
    """Record window-index posting-list work deltas (Remark 1 reuse)."""
    if not _enabled:
        return
    counter = _registry.counter(
        "smiler_window_index_rows_total",
        "Window-index posting-list rows by outcome: built_full (from "
        "scratch), recomputed_lbeq (envelope refresh only), reused "
        "(survived untouched).",
        label_names=("outcome",),
    )
    if rows_built_full:
        counter.inc(rows_built_full, outcome="built_full")
    if rows_recomputed_lbeq:
        counter.inc(rows_recomputed_lbeq, outcome="recomputed_lbeq")
    if rows_reused:
        counter.inc(rows_reused, outcome="reused")
    if columns_recomputed_lbec:
        _registry.counter(
            "smiler_window_index_lbec_columns_recomputed_total",
            "Trailing LB_EC columns recomputed after appends.",
        ).inc(columns_recomputed_lbec)


# ----------------------------------------------------------------- serving
def observe_forecast(sensor_id: str, horizon: int, latency_s: float) -> None:
    """Record one served forecast and its end-to-end latency."""
    if not _enabled:
        return
    request_id = reqctx.current_request_id()
    exemplar = None if request_id is None else {"request_id": request_id}
    _registry.counter(
        "smiler_forecasts_total",
        "Forecast requests served.",
        label_names=("sensor_id", "horizon"),
    ).inc(sensor_id=sensor_id, horizon=horizon, exemplar=exemplar)
    _registry.histogram(
        "smiler_forecast_latency_seconds",
        "End-to-end forecast latency (wall-clock).",
        label_names=("sensor_id",),
    ).observe(latency_s, sensor_id=sensor_id, exemplar=exemplar)


def observe_degraded_forecast(sensor_id: str, source: str) -> None:
    """Record one forecast served below the full-ensemble rung."""
    if not _enabled:
        return
    request_id = reqctx.current_request_id()
    exemplar = None if request_id is None else {"request_id": request_id}
    _registry.counter(
        "smiler_forecast_degraded_total",
        "Forecasts served by a degraded rung, by sensor and rung.",
        label_names=("sensor_id", "source"),
    ).inc(sensor_id=sensor_id, source=source, exemplar=exemplar)
    _slo.record_degraded(source)
    _registry.counter(
        "smiler_slo_served_degraded_total",
        "Forecasts served degraded, by ladder rung (SLO accounting).",
        label_names=("rung",),
    ).inc(rung=source, exemplar=exemplar)
    _events.emit("degraded", sensor_id=sensor_id, rung=source)


# ---------------------------------------------------------- request lifecycle
def observe_request_start(
    entry_point: str, request_id: str, n_items: int = 1
) -> None:
    """Record one service request entering (event-log line only —
    metrics land at the end, when the latency is known)."""
    if not _enabled:
        return
    _events.emit(
        "request_start",
        request_id=request_id,
        entry_point=entry_point,
        n_items=n_items,
    )


def observe_request_end(
    entry_point: str,
    request_id: str,
    latency_s: float,
    ok: bool = True,
    n_items: int = 1,
    n_errors: int = 0,
) -> None:
    """Record one service request completing: latency histogram, SLO
    window sample, attainment/error-budget gauges and the end event."""
    if not _enabled:
        return
    exemplar = {"request_id": request_id}
    _registry.counter(
        "smiler_requests_total",
        "Service requests completed, by entry point and outcome.",
        label_names=("class", "outcome"),
    ).inc(**{"class": entry_point, "outcome": "ok" if ok else "error"},
          exemplar=exemplar)
    _registry.histogram(
        "smiler_request_latency_seconds",
        "End-to-end request latency by entry point.",
        label_names=("class",),
    ).observe(latency_s, exemplar=exemplar, **{"class": entry_point})
    met = _slo.record(entry_point, latency_s, ok=ok)
    if not met:
        _registry.counter(
            "smiler_slo_breaches_total",
            "Requests that missed their class SLO (error or over budget).",
            label_names=("class",),
        ).inc(**{"class": entry_point}, exemplar=exemplar)
    _registry.gauge(
        "smiler_slo_attainment_ratio",
        "Fraction of the rolling window meeting the class SLO.",
        label_names=("class",),
    ).set(_slo.attainment(entry_point), **{"class": entry_point})
    _registry.gauge(
        "smiler_slo_error_budget_remaining_ratio",
        "Unspent fraction of the rolling-window violation budget "
        "(negative = overdrawn).",
        label_names=("class",),
    ).set(_slo.error_budget_remaining(entry_point), **{"class": entry_point})
    _events.emit(
        "request_end",
        request_id=request_id,
        entry_point=entry_point,
        latency_s=latency_s,
        ok=ok,
        slo_met=met,
        n_items=n_items,
        n_errors=n_errors,
    )


def observe_lane(
    lane: int,
    backend_index: int,
    queue_wait_s: float,
    execute_s: float,
    n_sensors: int,
) -> None:
    """Record one worker lane's queue-wait vs execute attribution."""
    if not _enabled:
        return
    request_id = reqctx.current_request_id()
    exemplar = None if request_id is None else {"request_id": request_id}
    _registry.histogram(
        "smiler_lane_queue_wait_seconds",
        "Time a lane's work waited between submit and first execution.",
        label_names=("lane",),
        buckets=_LANE_SECONDS_BUCKETS,
    ).observe(queue_wait_s, lane=lane, exemplar=exemplar)
    _registry.histogram(
        "smiler_lane_execute_seconds",
        "Time a lane spent executing its backend shard's work.",
        label_names=("lane",),
        buckets=_LANE_SECONDS_BUCKETS,
    ).observe(execute_s, lane=lane, exemplar=exemplar)
    _registry.counter(
        "smiler_lane_sensors_total",
        "Sensors processed per lane.",
        label_names=("lane", "backend"),
    ).inc(n_sensors, lane=lane, backend=backend_index)


# -------------------------------------------------------------- resilience
def observe_fault_injected(operation: str, kind: str) -> None:
    """Record one injected backend fault (called by the fault layer)."""
    if not _enabled:
        return
    _registry.counter(
        "smiler_faults_injected_total",
        "Faults injected by FaultInjectingBackend, by operation and kind.",
        label_names=("operation", "kind"),
    ).inc(operation=operation, kind=kind)
    _events.emit("fault_injected", operation=operation, fault_kind=kind)


def observe_backend_state(backend_index: int, state: str) -> None:
    """Track one backend's circuit-breaker state (0=closed, 1=half_open,
    2=open)."""
    if not _enabled:
        return
    _registry.gauge(
        "smiler_backend_state",
        "Circuit-breaker state per backend: 0=closed, 1=half_open, 2=open.",
        label_names=("backend",),
    ).set(_BREAKER_STATE_CODES.get(state, -1.0), backend=backend_index)


def observe_breaker_transition(
    backend_index: int, old_state: str, new_state: str
) -> None:
    """Record one circuit-breaker transition as a counter and a span."""
    if not _enabled:
        return
    _registry.counter(
        "smiler_breaker_transitions_total",
        "Circuit-breaker state transitions, by backend and edge.",
        label_names=("backend", "from_state", "to_state"),
    ).inc(backend=backend_index, from_state=old_state, to_state=new_state)
    with _tracer.span("breaker_transition") as sp:
        sp.attrs["backend"] = backend_index
        sp.attrs["from_state"] = old_state
        sp.attrs["to_state"] = new_state
    _events.emit(
        "breaker_transition",
        backend_id=backend_index,
        from_state=old_state,
        to_state=new_state,
    )


def observe_evacuation(backend_index: int, n_sensors: int) -> None:
    """Record one backend evacuation and how many sensors it moved."""
    if not _enabled:
        return
    _registry.counter(
        "smiler_backend_evacuations_total",
        "Backend evacuations triggered by health failover.",
        label_names=("backend",),
    ).inc(backend=backend_index)
    _registry.counter(
        "smiler_sensors_evacuated_total",
        "Sensors re-admitted onto healthy backends by evacuations.",
    ).inc(n_sensors)
    _events.emit("evacuation", backend_id=backend_index, n_sensors=n_sensors)


def observe_gp_training(iterations: int, converged: bool) -> None:
    """Record one online GP hyperparameter fit."""
    if not _enabled:
        return
    _registry.counter(
        "smiler_gp_train_calls_total",
        "GP hyperparameter training runs, by convergence outcome.",
        label_names=("converged",),
    ).inc(converged=converged)
    _registry.counter(
        "smiler_gp_cg_iterations_total",
        "Conjugate-gradient iterations spent on GP training.",
    ).inc(iterations)
