"""Leave-one-out predictive likelihood and its gradients (Section 5.2.2).

The semi-lazy GP trains its hyperparameters by maximising the LOO log
predictive probability (paper Eqns. 19-20, following Sundararajan &
Keerthi [64] / GPML Section 5.4.2).  The "inversion of the partitioned
matrix" trick the paper cites is exactly the identity used here: with
``Kinv = C^{-1}`` and ``alpha = C^{-1} y``,

    mu_i      = y_i - alpha_i / Kinv_ii
    sigma_i^2 = 1 / Kinv_ii

so all n leave-one-out posteriors come from ONE factorisation instead of
n rank-down-dated ones.  Gradients w.r.t. ``log theta_j`` follow GPML
Eqn. 5.13 and are verified against finite differences in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_solve

from .kernels import SquaredExponentialKernel
from .regression import robust_cholesky

__all__ = ["LooResult", "loo_quantities", "loo_log_likelihood", "loo_objective"]

_LOG_2PI = np.log(2.0 * np.pi)


@dataclass
class LooResult:
    """LOO means/variances plus the total log predictive likelihood."""

    means: np.ndarray
    variances: np.ndarray
    log_likelihood: float


def loo_quantities(
    kernel: SquaredExponentialKernel, x: np.ndarray, y: np.ndarray
) -> LooResult:
    """LOO posterior for every held-out training point (Eqn. 19)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    cov = kernel.matrix(x, noise=True)
    lower, _ = robust_cholesky(cov)
    kinv = cho_solve((lower, True), np.eye(y.size))
    alpha = kinv @ y
    diag = np.clip(np.diag(kinv), 1e-300, None)
    variances = 1.0 / diag
    means = y - alpha / diag
    logp = -0.5 * np.log(variances) - (y - means) ** 2 / (2 * variances) - 0.5 * _LOG_2PI
    return LooResult(means=means, variances=variances, log_likelihood=float(logp.sum()))


def loo_log_likelihood(
    kernel: SquaredExponentialKernel, x: np.ndarray, y: np.ndarray
) -> float:
    """``L(X, Y, Theta)`` of Eqn. 20."""
    return loo_quantities(kernel, x, y).log_likelihood


def loo_objective(
    log_params: np.ndarray, x: np.ndarray, y: np.ndarray
) -> tuple[float, np.ndarray]:
    """Negative LOO log likelihood and gradient w.r.t. ``log theta``.

    This is the function handed to the conjugate-gradient optimiser; the
    sign is flipped because the optimiser minimises.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    kernel = SquaredExponentialKernel.from_log_params(log_params)
    cov = kernel.matrix(x, noise=True)
    lower, _ = robust_cholesky(cov)
    kinv = cho_solve((lower, True), np.eye(y.size))
    alpha = kinv @ y
    diag = np.clip(np.diag(kinv), 1e-300, None)

    # Objective (GPML eq. 5.10-5.12).
    variances = 1.0 / diag
    means = y - alpha / diag
    logp = (
        -0.5 * np.log(variances)
        - (y - means) ** 2 / (2.0 * variances)
        - 0.5 * _LOG_2PI
    )
    value = -float(logp.sum())

    # Gradient (GPML eq. 5.13): for each hyperparameter j with
    # Z_j = Kinv dK/dtheta_j,
    #   dL/dtheta_j = sum_i [ alpha_i (Z_j alpha)_i
    #                 - 0.5 (1 + alpha_i^2 / Kinv_ii) (Z_j Kinv)_ii ]
    #                 / Kinv_ii
    grads = np.empty(3)
    for j, dk in enumerate(kernel.gradients(x)):
        zj = kinv @ dk
        zj_alpha = zj @ alpha
        zj_kinv_diag = np.sum(zj * kinv.T, axis=1)
        per_point = (
            alpha * zj_alpha - 0.5 * (1.0 + alpha**2 / diag) * zj_kinv_diag
        ) / diag
        grads[j] = -float(per_point.sum())
    return value, grads
