"""Covariance functions for the GP stack (Appendix B.3, Eqn. 18).

The paper uses the squared-exponential (SE) covariance with three
hyperparameters ``Theta = {theta0, theta1, theta2}``::

    c(xa, xb) = theta0^2 * exp(-||xa - xb||^2 / (2 * theta1^2))
                + delta_ab * theta2^2

``theta0`` is the signal amplitude, ``theta1`` the characteristic
length-scale, ``theta2`` the observation-noise amplitude.  All training
and optimisation happens in log-space (positivity for free); gradients
returned here are with respect to ``log theta``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SquaredExponentialKernel", "squared_distances"]


def squared_distances(xa: np.ndarray, xb: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(len(xa), len(xb))``."""
    xa = np.atleast_2d(np.asarray(xa, dtype=np.float64))
    xb = np.atleast_2d(np.asarray(xb, dtype=np.float64))
    if xa.shape[1] != xb.shape[1]:
        raise ValueError(
            f"dimension mismatch: {xa.shape[1]} vs {xb.shape[1]}"
        )
    aa = np.sum(xa**2, axis=1)[:, None]
    bb = np.sum(xb**2, axis=1)[None, :]
    sq = aa + bb - 2.0 * (xa @ xb.T)
    return np.clip(sq, 0.0, None)


@dataclass(frozen=True)
class SquaredExponentialKernel:
    """SE covariance with additive iid noise (paper Eqn. 18)."""

    theta0: float = 1.0
    theta1: float = 1.0
    theta2: float = 0.1

    def __post_init__(self) -> None:
        for name in ("theta0", "theta1", "theta2"):
            value = getattr(self, name)
            if not np.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be positive and finite, got {value}")

    # ------------------------------------------------------------ log-space
    @property
    def log_params(self) -> np.ndarray:
        """Current hyperparameters in log space."""
        return np.log([self.theta0, self.theta1, self.theta2])

    @classmethod
    def from_log_params(cls, log_params: np.ndarray) -> "SquaredExponentialKernel":
        """Rebuild the kernel from log-hyperparameters."""
        log_params = np.asarray(log_params, dtype=np.float64)
        if log_params.shape != (3,):
            raise ValueError(f"expected 3 log-parameters, got shape {log_params.shape}")
        t0, t1, t2 = np.exp(np.clip(log_params, -20.0, 20.0))
        return cls(theta0=float(t0), theta1=float(t1), theta2=float(t2))

    # ------------------------------------------------------------- matrices
    def matrix(
        self, xa: np.ndarray, xb: np.ndarray | None = None, noise: bool = False
    ) -> np.ndarray:
        """Covariance matrix ``C(xa, xb)``; ``noise`` adds ``theta2^2 I``.

        ``noise=True`` is only valid for the symmetric case (``xb is
        None``): the Kronecker delta of Eqn. 18 refers to identical
        *indices*, i.e. the same training point.
        """
        sq = squared_distances(xa, xa if xb is None else xb)
        cov = self.theta0**2 * np.exp(-0.5 * sq / self.theta1**2)
        if noise:
            if xb is not None:
                raise ValueError("noise only applies to the symmetric matrix")
            cov = cov + self.theta2**2 * np.eye(cov.shape[0])
        return cov

    def diag(self, x: np.ndarray, noise: bool = False) -> np.ndarray:
        """``c(x_i, x_i)`` for each row (prior variance of each input)."""
        x = np.atleast_2d(x)
        value = self.theta0**2 + (self.theta2**2 if noise else 0.0)
        return np.full(x.shape[0], value)

    def gradients(self, x: np.ndarray) -> list[np.ndarray]:
        """``dK/d log theta_j`` for the symmetric noisy matrix ``K(x, x)``.

        Returns three matrices in parameter order (theta0, theta1, theta2).
        """
        x = np.atleast_2d(x)
        sq = squared_distances(x, x)
        se = self.theta0**2 * np.exp(-0.5 * sq / self.theta1**2)
        d_log_theta0 = 2.0 * se
        d_log_theta1 = se * (sq / self.theta1**2)
        d_log_theta2 = 2.0 * self.theta2**2 * np.eye(x.shape[0])
        return [d_log_theta0, d_log_theta1, d_log_theta2]

    def replace(self, **kwargs) -> "SquaredExponentialKernel":
        """Copy with some hyperparameters replaced."""
        params = {
            "theta0": self.theta0,
            "theta1": self.theta1,
            "theta2": self.theta2,
        }
        params.update(kwargs)
        return SquaredExponentialKernel(**params)
