"""Additional covariance functions: Matérn-5/2 and periodic.

The paper fixes the SE kernel (Eqn. 18); a GP library should offer the
other two workhorses.  Both implement the same protocol as
:class:`~repro.gp.kernels.SquaredExponentialKernel` (``matrix``,
``diag``, ``gradients`` w.r.t. log-hyperparameters, log-space
round-trip), so they drop into :class:`GaussianProcessRegressor` and the
generic trainers:

* **Matérn-5/2** — rougher sample paths than SE (twice differentiable);
  the usual pick when SE over-smooths.
* **Periodic** (MacKay) — exact periodic structure with period ``p``;
  useful for strongly seasonal sensors where the period is known.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import squared_distances

__all__ = ["Matern52Kernel", "PeriodicKernel"]


def _check_positive(**params: float) -> None:
    for name, value in params.items():
        if not np.isfinite(value) or value <= 0:
            raise ValueError(f"{name} must be positive and finite, got {value}")


@dataclass(frozen=True)
class Matern52Kernel:
    """``k(r) = theta0^2 (1 + a + a^2/3) exp(-a)``, ``a = sqrt(5) r / theta1``."""

    theta0: float = 1.0
    theta1: float = 1.0
    theta2: float = 0.1

    def __post_init__(self) -> None:
        _check_positive(theta0=self.theta0, theta1=self.theta1, theta2=self.theta2)

    @property
    def log_params(self) -> np.ndarray:
        """Current hyperparameters in log space."""
        return np.log([self.theta0, self.theta1, self.theta2])

    @classmethod
    def from_log_params(cls, log_params: np.ndarray) -> "Matern52Kernel":
        """Rebuild the kernel from log-hyperparameters."""
        log_params = np.asarray(log_params, dtype=np.float64)
        if log_params.shape != (3,):
            raise ValueError(f"expected 3 log-parameters, got {log_params.shape}")
        t0, t1, t2 = np.exp(np.clip(log_params, -20, 20))
        return cls(float(t0), float(t1), float(t2))

    def _a(self, xa, xb) -> np.ndarray:
        r = np.sqrt(squared_distances(xa, xa if xb is None else xb))
        return np.sqrt(5.0) * r / self.theta1

    def matrix(self, xa, xb=None, noise: bool = False) -> np.ndarray:
        """Covariance matrix between input sets (noise optional on the symmetric case)."""
        a = self._a(xa, xb)
        cov = self.theta0**2 * (1.0 + a + a**2 / 3.0) * np.exp(-a)
        if noise:
            if xb is not None:
                raise ValueError("noise only applies to the symmetric matrix")
            cov = cov + self.theta2**2 * np.eye(cov.shape[0])
        return cov

    def diag(self, x, noise: bool = False) -> np.ndarray:
        """Prior variance of each input row."""
        x = np.atleast_2d(x)
        value = self.theta0**2 + (self.theta2**2 if noise else 0.0)
        return np.full(x.shape[0], value)

    def gradients(self, x) -> list[np.ndarray]:
        """``dK/d log theta_j`` for the symmetric noisy matrix."""
        x = np.atleast_2d(x)
        a = self._a(x, None)
        base = self.theta0**2 * np.exp(-a)
        d_log_theta0 = 2.0 * base * (1.0 + a + a**2 / 3.0)
        # d/da[(1+a+a^2/3)e^{-a}] = -(a/3)(1+a)e^{-a};  da/dlog(theta1) = -a.
        d_log_theta1 = base * (a**2 / 3.0) * (1.0 + a)
        d_log_theta2 = 2.0 * self.theta2**2 * np.eye(x.shape[0])
        return [d_log_theta0, d_log_theta1, d_log_theta2]

    def replace(self, **kwargs) -> "Matern52Kernel":
        """Copy with some hyperparameters replaced."""
        params = {"theta0": self.theta0, "theta1": self.theta1, "theta2": self.theta2}
        params.update(kwargs)
        return Matern52Kernel(**params)


@dataclass(frozen=True)
class PeriodicKernel:
    """MacKay's periodic kernel plus noise.

    ``k(r) = theta0^2 exp(-2 sin^2(pi r / period) / lengthscale^2)``
    with ``r`` the Euclidean input distance.
    """

    theta0: float = 1.0
    period: float = 1.0
    lengthscale: float = 1.0
    noise: float = 0.1

    def __post_init__(self) -> None:
        _check_positive(
            theta0=self.theta0, period=self.period,
            lengthscale=self.lengthscale, noise=self.noise,
        )

    @property
    def log_params(self) -> np.ndarray:
        """Current hyperparameters in log space."""
        return np.log([self.theta0, self.period, self.lengthscale, self.noise])

    @classmethod
    def from_log_params(cls, log_params: np.ndarray) -> "PeriodicKernel":
        """Rebuild the kernel from log-hyperparameters."""
        log_params = np.asarray(log_params, dtype=np.float64)
        if log_params.shape != (4,):
            raise ValueError(f"expected 4 log-parameters, got {log_params.shape}")
        t0, p, ell, noise = np.exp(np.clip(log_params, -20, 20))
        return cls(float(t0), float(p), float(ell), float(noise))

    def _u(self, xa, xb) -> np.ndarray:
        r = np.sqrt(squared_distances(xa, xa if xb is None else xb))
        return np.pi * r / self.period

    def matrix(self, xa, xb=None, noise: bool = False) -> np.ndarray:
        """Covariance matrix between input sets (noise optional on the symmetric case)."""
        u = self._u(xa, xb)
        cov = self.theta0**2 * np.exp(
            -2.0 * np.sin(u) ** 2 / self.lengthscale**2
        )
        if noise:
            if xb is not None:
                raise ValueError("noise only applies to the symmetric matrix")
            cov = cov + self.noise**2 * np.eye(cov.shape[0])
        return cov

    def diag(self, x, noise: bool = False) -> np.ndarray:
        """Prior variance of each input row."""
        x = np.atleast_2d(x)
        value = self.theta0**2 + (self.noise**2 if noise else 0.0)
        return np.full(x.shape[0], value)

    def gradients(self, x) -> list[np.ndarray]:
        """dK/d(log theta_j) for the symmetric noisy matrix, in parameter order."""
        x = np.atleast_2d(x)
        u = self._u(x, None)
        ell_sq = self.lengthscale**2
        core = self.theta0**2 * np.exp(-2.0 * np.sin(u) ** 2 / ell_sq)
        d_log_theta0 = 2.0 * core
        # d/dlog(period): du/dlog p = -u; d/du[-2 sin^2 u / l^2] = -2 sin(2u)/l^2.
        d_log_period = core * (2.0 * np.sin(2.0 * u) / ell_sq) * u
        d_log_lengthscale = core * (4.0 * np.sin(u) ** 2 / ell_sq)
        d_log_noise = 2.0 * self.noise**2 * np.eye(x.shape[0])
        return [d_log_theta0, d_log_period, d_log_lengthscale, d_log_noise]

    def replace(self, **kwargs) -> "PeriodicKernel":
        """Copy with some hyperparameters replaced."""
        params = {
            "theta0": self.theta0, "period": self.period,
            "lengthscale": self.lengthscale, "noise": self.noise,
        }
        params.update(kwargs)
        return PeriodicKernel(**params)
