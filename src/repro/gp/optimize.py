"""Optimisers for online GP training (Section 5.2.2) and baselines.

* :func:`conjugate_gradient_minimize` — Polak-Ribière+ conjugate gradient
  with Armijo backtracking.  Supports the paper's two training regimes:
  full optimisation for the initial query and *fixed-step* pursuit
  (``max_iters=5``) warm-started from the previous step's
  hyperparameters for continuous prediction.
* :func:`nelder_mead_minimize` — derivative-free simplex search used by
  the Holt-Winters and sparse-GP baselines (whose objectives we do not
  differentiate analytically).

Both are dependency-free re-implementations; correctness is checked on
standard test functions and against known optima in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "OptimizeResult",
    "conjugate_gradient_minimize",
    "nelder_mead_minimize",
]

ValueAndGrad = Callable[[np.ndarray], tuple[float, np.ndarray]]


@dataclass
class OptimizeResult:
    """Terminal state of an optimisation run."""

    x: np.ndarray
    value: float
    iterations: int
    converged: bool


def _backtracking_line_search(
    fun: ValueAndGrad,
    x: np.ndarray,
    value: float,
    grad: np.ndarray,
    direction: np.ndarray,
    initial_step: float = 1.0,
    armijo: float = 1e-4,
    shrink: float = 0.5,
    max_backtracks: int = 25,
) -> tuple[np.ndarray, float, np.ndarray, float] | None:
    """Armijo backtracking along ``direction``; None when no progress."""
    slope = float(grad @ direction)
    if slope >= 0:
        return None
    step = initial_step
    for _ in range(max_backtracks):
        candidate = x + step * direction
        cand_value, cand_grad = fun(candidate)
        if np.isfinite(cand_value) and cand_value <= value + armijo * step * slope:
            return candidate, cand_value, cand_grad, step
        step *= shrink
    return None


def conjugate_gradient_minimize(
    fun: ValueAndGrad,
    x0: np.ndarray,
    max_iters: int = 100,
    grad_tol: float = 1e-6,
    value_tol: float = 1e-10,
) -> OptimizeResult:
    """Polak-Ribière+ CG with restarts and Armijo backtracking."""
    x = np.asarray(x0, dtype=np.float64).copy()
    value, grad = fun(x)
    if not np.isfinite(value):
        raise ValueError(f"objective not finite at the start point: {value}")
    direction = -grad
    iterations = 0
    converged = False
    for iterations in range(1, max_iters + 1):
        if np.linalg.norm(grad) < grad_tol:
            converged = True
            break
        result = _backtracking_line_search(fun, x, value, grad, direction)
        if result is None:
            # Bad direction (stale conjugacy): restart with steepest descent.
            result = _backtracking_line_search(fun, x, value, grad, -grad)
            if result is None:
                break
        new_x, new_value, new_grad, _ = result
        if value - new_value < value_tol * (abs(value) + value_tol):
            x, value, grad = new_x, new_value, new_grad
            converged = True
            break
        # Polak-Ribière+ update with automatic restart (beta clipped to
        # [0, 1e6]; runaway beta on ill-scaled problems degenerates the
        # direction and is caught by the steepest-descent restart above).
        with np.errstate(over="ignore", invalid="ignore"):
            beta = float(
                new_grad @ (new_grad - grad) / max(grad @ grad, 1e-300)
            )
            beta = min(max(0.0, beta), 1e6)
            direction = -new_grad + beta * direction
        if not np.isfinite(direction).all():
            direction = -new_grad
        x, value, grad = new_x, new_value, new_grad
    return OptimizeResult(x=x, value=value, iterations=iterations, converged=converged)


def nelder_mead_minimize(
    fun: Callable[[np.ndarray], float],
    x0: np.ndarray,
    max_iters: int = 200,
    initial_step: float = 0.25,
    tol: float = 1e-8,
) -> OptimizeResult:
    """Nelder-Mead simplex minimisation (standard coefficients)."""
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    n = x0.size
    simplex = [x0.copy()]
    for i in range(n):
        vertex = x0.copy()
        vertex[i] += initial_step if vertex[i] == 0 else initial_step * abs(vertex[i]) + initial_step
        simplex.append(vertex)
    values = [float(fun(v)) for v in simplex]

    alpha, gamma, rho_c, sigma = 1.0, 2.0, 0.5, 0.5
    iterations = 0
    for iterations in range(1, max_iters + 1):
        order = np.argsort(values)
        simplex = [simplex[i] for i in order]
        values = [values[i] for i in order]
        if abs(values[-1] - values[0]) < tol * (abs(values[0]) + tol):
            break
        centroid = np.mean(simplex[:-1], axis=0)
        worst = simplex[-1]

        reflected = centroid + alpha * (centroid - worst)
        f_reflected = float(fun(reflected))
        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
            continue
        if f_reflected < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            f_expanded = float(fun(expanded))
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
            continue
        contracted = centroid + rho_c * (worst - centroid)
        f_contracted = float(fun(contracted))
        if f_contracted < values[-1]:
            simplex[-1], values[-1] = contracted, f_contracted
            continue
        # Shrink towards the best vertex.
        best = simplex[0]
        simplex = [best] + [best + sigma * (v - best) for v in simplex[1:]]
        values = [values[0]] + [float(fun(v)) for v in simplex[1:]]

    best_idx = int(np.argmin(values))
    return OptimizeResult(
        x=simplex[best_idx],
        value=values[best_idx],
        iterations=iterations,
        converged=iterations < max_iters,
    )
