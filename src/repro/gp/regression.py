"""Exact Gaussian Process regression (Appendix B.3, Eqns. 28-31).

Implements the closed-form posterior the semi-lazy GP predictor relies
on: with training data ``(X, Y)`` and covariance ``C`` (noise on the
diagonal), a test input ``x0`` gets

    u0      = c0^T C^{-1} Y                       (Eqn. 30)
    sigma0² = c(x0, x0) - c0^T C^{-1} c0          (Eqn. 31)

Cholesky-based with escalating jitter for numerical robustness (kNN
segments can be near-duplicates, making ``C`` badly conditioned).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky, LinAlgError

from .kernels import SquaredExponentialKernel

__all__ = ["GaussianProcessRegressor", "robust_cholesky"]

_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2)


def robust_cholesky(matrix: np.ndarray) -> tuple[np.ndarray, float]:
    """Lower Cholesky factor with escalating diagonal jitter.

    Returns ``(L, jitter)``; raises :class:`numpy.linalg.LinAlgError` only
    if even the largest jitter fails (pathological input).
    """
    scale = float(np.mean(np.diag(matrix))) or 1.0
    for jitter in _JITTERS:
        try:
            lower = cholesky(
                matrix + jitter * scale * np.eye(matrix.shape[0]), lower=True
            )
            return lower, jitter * scale
        except LinAlgError:
            continue
    raise np.linalg.LinAlgError(
        "matrix is not positive definite even with jitter"
    )


class GaussianProcessRegressor:
    """Zero-mean exact GP with the paper's SE+noise kernel."""

    def __init__(self, kernel: SquaredExponentialKernel | None = None) -> None:
        self.kernel = kernel or SquaredExponentialKernel()
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._lower: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # ----------------------------------------------------------------- fit
    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Factorise the training covariance; O(n^3) — the paper's whole
        point is keeping n down to the kNN count."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise ValueError(
                f"{x.shape[0]} inputs but {y.size} targets"
            )
        if y.size == 0:
            raise ValueError("cannot fit a GP on zero points")
        cov = self.kernel.matrix(x, noise=True)
        self._lower, _ = robust_cholesky(cov)
        self._alpha = cho_solve((self._lower, True), y)
        self._x, self._y = x, y
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether fit() has been called."""
        return self._alpha is not None

    def _require_fit(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("fit() must be called first")

    # ------------------------------------------------------------- predict
    def predict(
        self, x_star: np.ndarray, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at test inputs.

        ``include_noise=True`` returns the predictive variance of the
        *observation* (adds ``theta2^2``), which is what MNLPD scores.
        """
        self._require_fit()
        x_star = np.atleast_2d(np.asarray(x_star, dtype=np.float64))
        cross = self.kernel.matrix(self._x, x_star)
        mean = cross.T @ self._alpha
        v = cho_solve((self._lower, True), cross)
        prior = self.kernel.diag(x_star, noise=include_noise)
        var = prior - np.sum(cross * v, axis=0)
        return mean, np.clip(var, 1e-12, None)

    # -------------------------------------------------------- marginal lik
    def log_marginal_likelihood(self) -> float:
        """``log p(Y | X, Theta)`` of the fitted model."""
        self._require_fit()
        n = self._y.size
        return float(
            -0.5 * self._y @ self._alpha
            - np.sum(np.log(np.diag(self._lower)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def kinv(self) -> np.ndarray:
        """``C^{-1}`` (needed by the LOO machinery)."""
        self._require_fit()
        n = self._y.size
        return cho_solve((self._lower, True), np.eye(n))

    @property
    def alpha(self) -> np.ndarray:
        """``C^{-1} Y`` of the fitted model."""
        self._require_fit()
        return self._alpha

    @property
    def train_x(self) -> np.ndarray:
        """Training inputs of the fitted model."""
        self._require_fit()
        return self._x

    @property
    def train_y(self) -> np.ndarray:
        """Training targets of the fitted model."""
        self._require_fit()
        return self._y

    # ------------------------------------------------------------ sampling
    def sample_functions(
        self, x_star: np.ndarray, n_samples: int = 1, seed: int | None = None
    ) -> np.ndarray:
        """Draw joint posterior function samples at ``x_star``.

        Returns an array of shape ``(n_samples, len(x_star))`` from the
        *noise-free* latent posterior (scenario generation: each row is a
        coherent possible future, not independent pointwise draws).
        """
        self._require_fit()
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=np.float64))
        cross = self.kernel.matrix(self._x, x_star)
        mean = cross.T @ self._alpha
        v = cho_solve((self._lower, True), cross)
        prior = self.kernel.matrix(x_star)
        posterior_cov = prior - cross.T @ v
        lower, _ = robust_cholesky(posterior_cov)
        rng = np.random.default_rng(seed)
        draws = rng.standard_normal((n_samples, x_star.shape[0]))
        return mean[None, :] + draws @ lower.T
