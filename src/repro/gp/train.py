"""Eager GP training: marginal-likelihood maximisation with analytic
gradients (GPML Section 5.4.1).

This is the textbook training the paper's Example 1.1 calls intractable
at scale — O(n^3) per gradient step — provided here (a) as the gold
standard small-data baseline and (b) so the LOO objective of
:mod:`repro.gp.loo` has a sibling to compare against in tests and
ablations.  Gradient (per log-hyperparameter theta_j):

    dL/dtheta_j = 1/2 tr( (alpha alpha^T - K^{-1}) dK/dtheta_j )
"""

from __future__ import annotations

import logging

import numpy as np
from scipy.linalg import cho_solve

from .kernels import SquaredExponentialKernel
from .optimize import conjugate_gradient_minimize
from .regression import GaussianProcessRegressor, robust_cholesky

__all__ = ["marginal_likelihood_objective", "fit_exact_gp"]

logger = logging.getLogger(__name__)


def marginal_likelihood_objective(
    log_params: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    kernel_cls=SquaredExponentialKernel,
) -> tuple[float, np.ndarray]:
    """Negative log marginal likelihood and gradient w.r.t. ``log theta``.

    Works for any kernel class implementing the shared protocol
    (``from_log_params`` / ``matrix`` / ``gradients``) — SE by default,
    Matérn-5/2 and periodic from :mod:`repro.gp.more_kernels` too.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    kernel = kernel_cls.from_log_params(log_params)
    cov = kernel.matrix(x, noise=True)
    lower, _ = robust_cholesky(cov)
    alpha = cho_solve((lower, True), y)
    n = y.size
    value = float(
        0.5 * y @ alpha
        + np.sum(np.log(np.diag(lower)))
        + 0.5 * n * np.log(2.0 * np.pi)
    )
    kinv = cho_solve((lower, True), np.eye(n))
    outer = np.outer(alpha, alpha)
    kernel_grads = kernel.gradients(x)
    grads = np.empty(len(kernel_grads))
    for j, dk in enumerate(kernel_grads):
        # d(-logML)/dtheta_j = -1/2 tr((alpha alpha^T - K^{-1}) dK).
        grads[j] = -0.5 * float(np.sum((outer - kinv) * dk))
    return value, grads


def fit_exact_gp(
    x: np.ndarray,
    y: np.ndarray,
    kernel=None,
    max_iters: int = 50,
) -> GaussianProcessRegressor:
    """Train an exact GP by maximising the marginal likelihood.

    Returns a fitted :class:`GaussianProcessRegressor` with the optimised
    kernel (of the same class as the ``kernel`` seed — any protocol
    kernel works).  The CG iterations each cost O(n^3).
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[0] != y.size:
        raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
    seed_kernel = kernel or SquaredExponentialKernel()
    kernel_cls = type(seed_kernel)
    result = conjugate_gradient_minimize(
        lambda lp: marginal_likelihood_objective(lp, x, y, kernel_cls),
        seed_kernel.log_params,
        max_iters=max_iters,
    )
    if not result.converged:
        logger.debug(
            "exact-GP marginal-likelihood training stopped without "
            "convergence after %d/%d iterations (objective %.6g)",
            result.iterations, max_iters, result.value,
        )
    trained = kernel_cls.from_log_params(result.x)
    return GaussianProcessRegressor(trained).fit(x, y)
