"""VLGP: variational sparse GP with inducing inputs (Titsias [65]).

The paper's second scalable-GP baseline (run through GPy's
``SparseGPRegression``).  The collapsed variational lower bound is

    F = log N(y; 0, Q_ff + sigma^2 I) - tr(K_ff - Q_ff) / (2 sigma^2)

i.e. the DTC likelihood minus a trace regulariser that penalises
information lost by the projection.  Inducing inputs are placed by
k-means over the training inputs (GPy's default initialisation) and held
fixed; hyperparameters maximise ``F`` with a fixed Nelder-Mead budget.
"""

from __future__ import annotations

import numpy as np

from .kernels import SquaredExponentialKernel
from .optimize import nelder_mead_minimize
from .sparse import _LowRankPosterior

__all__ = ["VariationalSparseGP", "kmeans"]


def kmeans(
    x: np.ndarray, n_clusters: int, n_iters: int = 20, seed: int = 0
) -> np.ndarray:
    """Plain Lloyd's k-means; returns the ``(n_clusters, dim)`` centroids."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    n_clusters = min(n_clusters, x.shape[0])
    rng = np.random.default_rng(seed)
    centroids = x[rng.choice(x.shape[0], size=n_clusters, replace=False)].copy()
    for _ in range(n_iters):
        sq = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * x @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        assignment = np.argmin(sq, axis=1)
        moved = False
        for c in range(n_clusters):
            members = x[assignment == c]
            if members.size == 0:
                # Re-seed empty clusters at the farthest point.
                far = int(np.argmax(np.min(sq, axis=1)))
                centroids[c] = x[far]
                moved = True
                continue
            new_centroid = members.mean(axis=0)
            if not np.allclose(new_centroid, centroids[c]):
                centroids[c] = new_centroid
                moved = True
        if not moved:
            break
    return centroids


class VariationalSparseGP:
    """Titsias variational sparse GP with ``m`` inducing inputs."""

    def __init__(
        self,
        n_inducing: int = 32,
        kernel: SquaredExponentialKernel | None = None,
        train_iters: int = 40,
        seed: int = 0,
    ) -> None:
        if n_inducing <= 0:
            raise ValueError(f"n_inducing must be positive, got {n_inducing}")
        self.n_inducing = n_inducing
        self.kernel = kernel or SquaredExponentialKernel()
        self.train_iters = train_iters
        self.seed = seed
        self._posterior: _LowRankPosterior | None = None
        self.bound_evaluations = 0

    def _bound(self, kernel, x, y, x_inducing) -> float:
        post = _LowRankPosterior(kernel, x, y, x_inducing)
        return post.log_marginal_likelihood() - post.trace_correction() / (
            2.0 * kernel.theta2**2
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "VariationalSparseGP":
        """Place inducing inputs by k-means, fit hyperparameters on F."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
        x_inducing = kmeans(x, self.n_inducing, seed=self.seed)

        def objective(log_params: np.ndarray) -> float:
            self.bound_evaluations += 1
            try:
                kernel = SquaredExponentialKernel.from_log_params(log_params)
                return -self._bound(kernel, x, y, x_inducing)
            except np.linalg.LinAlgError:
                return np.inf

        result = nelder_mead_minimize(
            objective, self.kernel.log_params, max_iters=self.train_iters
        )
        self.kernel = SquaredExponentialKernel.from_log_params(result.x)
        self._posterior = _LowRankPosterior(self.kernel, x, y, x_inducing)
        return self

    def predict(
        self, x_star: np.ndarray, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        return self._posterior.predict(x_star, include_noise=include_noise)

    def elbo(self) -> float:
        """The collapsed variational bound of the fitted model."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        return self._posterior.log_marginal_likelihood() - (
            self._posterior.trace_correction() / (2.0 * self.kernel.theta2**2)
        )
