"""Gaussian Process stack: exact GP, LOO training, sparse approximations."""

from .fitc import FitcSparseGP
from .kernels import SquaredExponentialKernel, squared_distances
from .more_kernels import Matern52Kernel, PeriodicKernel
from .loo import LooResult, loo_log_likelihood, loo_objective, loo_quantities
from .optimize import (
    OptimizeResult,
    conjugate_gradient_minimize,
    nelder_mead_minimize,
)
from .regression import GaussianProcessRegressor, robust_cholesky
from .sparse import ProjectedSparseGP, select_active_points
from .train import fit_exact_gp, marginal_likelihood_objective
from .variational import VariationalSparseGP, kmeans

__all__ = [
    "Matern52Kernel",
    "PeriodicKernel",
    "FitcSparseGP",
    "SquaredExponentialKernel",
    "squared_distances",
    "LooResult",
    "loo_log_likelihood",
    "loo_objective",
    "loo_quantities",
    "OptimizeResult",
    "conjugate_gradient_minimize",
    "nelder_mead_minimize",
    "GaussianProcessRegressor",
    "robust_cholesky",
    "ProjectedSparseGP",
    "select_active_points",
    "fit_exact_gp",
    "marginal_likelihood_objective",
    "VariationalSparseGP",
    "kmeans",
]
