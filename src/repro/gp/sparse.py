"""PSGP: projected sparse Gaussian Process (the paper's baseline [9, 25]).

The Projected Sequential GP tool the paper benchmarks implements the
projected-process (DTC) approximation: all information is projected onto
``m`` *active points* ``X_u``, with

    q(y) = N(0, Q_ff + sigma^2 I),   Q_ff = K_fu K_uu^{-1} K_uf.

Training maximises the approximate log marginal likelihood over the SE
hyperparameters (derivative-free Nelder-Mead with a fixed iteration
budget — the original tool's EP sweeps are likewise fixed-pass).  Every
likelihood evaluation costs O(n m^2), so the training time grows
steeply with the number of active points while accuracy saturates —
the exact trade-off Fig. 13 plots.

Active points are a uniform subsample of the training inputs (the
original selects by information gain; selection policy does not change
the cost/accuracy *shape* Fig. 13 reports, see DESIGN.md).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, solve_triangular

from .kernels import SquaredExponentialKernel
from .optimize import nelder_mead_minimize
from .regression import robust_cholesky

__all__ = ["ProjectedSparseGP", "select_active_points"]


def select_active_points(
    x: np.ndarray, m: int, seed: int = 0
) -> np.ndarray:
    """Uniform subsample of ``m`` rows of ``x`` (without replacement)."""
    x = np.atleast_2d(x)
    if m <= 0:
        raise ValueError(f"need a positive number of active points, got {m}")
    m = min(m, x.shape[0])
    rng = np.random.default_rng(seed)
    idx = rng.choice(x.shape[0], size=m, replace=False)
    return x[np.sort(idx)]


class _LowRankPosterior:
    """Shared DTC algebra: factorisations for predict/likelihood."""

    def __init__(
        self,
        kernel: SquaredExponentialKernel,
        x: np.ndarray,
        y: np.ndarray,
        x_active: np.ndarray,
    ) -> None:
        self.kernel = kernel
        self.x_active = x_active
        noise_var = kernel.theta2**2
        k_uu = kernel.matrix(x_active)
        k_uf = kernel.matrix(x_active, x)
        self._luu, _ = robust_cholesky(k_uu)
        # A = K_uu + sigma^{-2} K_uf K_fu  (the Woodbury inner matrix).
        a = k_uu + (k_uf @ k_uf.T) / noise_var
        self._la, _ = robust_cholesky(a)
        self._beta = cho_solve((self._la, True), k_uf @ y) / noise_var
        self._k_uf = k_uf
        self._y = y
        self._noise_var = noise_var

    def predict(
        self, x_star: np.ndarray, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        k_us = self.kernel.matrix(self.x_active, x_star)
        mean = k_us.T @ self._beta
        # var = k** - k_us^T K_uu^{-1} k_us + k_us^T A^{-1} k_us (+ noise)
        v_uu = solve_triangular(self._luu, k_us, lower=True)
        v_a = solve_triangular(self._la, k_us, lower=True)
        prior = self.kernel.diag(x_star, noise=include_noise)
        var = prior - np.sum(v_uu**2, axis=0) + np.sum(v_a**2, axis=0)
        return mean, np.clip(var, 1e-12, None)

    def log_marginal_likelihood(self) -> float:
        """``log N(y; 0, Q_ff + sigma^2 I)`` via the inversion lemma."""
        y, noise_var = self._y, self._noise_var
        n = y.size
        k_uf_y = self._k_uf @ y
        inner = cho_solve((self._la, True), k_uf_y)
        quad = (y @ y - (k_uf_y @ inner) / noise_var) / noise_var
        logdet = (
            2.0 * np.sum(np.log(np.diag(self._la)))
            - 2.0 * np.sum(np.log(np.diag(self._luu)))
            + n * np.log(noise_var)
        )
        return float(-0.5 * (quad + logdet + n * np.log(2.0 * np.pi)))

    def trace_correction(self) -> float:
        """``tr(K_ff - Q_ff)`` (used by the variational bound)."""
        n = self._y.size
        v = solve_triangular(self._luu, self._k_uf, lower=True)
        return float(n * self.kernel.theta0**2 - np.sum(v**2))


class ProjectedSparseGP:
    """DTC sparse GP with ``m`` active points (PSGP baseline).

    Parameters
    ----------
    n_active:
        Number of active points (the Fig. 13 knob).
    train_iters:
        Nelder-Mead iterations for hyperparameter fitting; each costs
        O(n * n_active^2).
    """

    def __init__(
        self,
        n_active: int = 32,
        kernel: SquaredExponentialKernel | None = None,
        train_iters: int = 40,
        seed: int = 0,
    ) -> None:
        if n_active <= 0:
            raise ValueError(f"n_active must be positive, got {n_active}")
        self.n_active = n_active
        self.kernel = kernel or SquaredExponentialKernel()
        self.train_iters = train_iters
        self.seed = seed
        self._posterior: _LowRankPosterior | None = None
        self.likelihood_evaluations = 0

    def _objective_factory(self, x, y, x_active):
        def objective(log_params: np.ndarray) -> float:
            self.likelihood_evaluations += 1
            try:
                kernel = SquaredExponentialKernel.from_log_params(log_params)
                post = _LowRankPosterior(kernel, x, y, x_active)
                return -post.log_marginal_likelihood()
            except np.linalg.LinAlgError:
                return np.inf

        return objective

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ProjectedSparseGP":
        """Select active points, fit hyperparameters, cache the posterior."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
        x_active = select_active_points(x, self.n_active, seed=self.seed)
        objective = self._objective_factory(x, y, x_active)
        result = nelder_mead_minimize(
            objective, self.kernel.log_params, max_iters=self.train_iters
        )
        self.kernel = SquaredExponentialKernel.from_log_params(result.x)
        self._posterior = _LowRankPosterior(self.kernel, x, y, x_active)
        return self

    def predict(
        self, x_star: np.ndarray, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        return self._posterior.predict(x_star, include_noise=include_noise)

    def log_marginal_likelihood(self) -> float:
        """log p(y | X, theta) of the fitted model."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        return self._posterior.log_marginal_likelihood()
