"""FITC: fully independent training conditional sparse GP (Snelson & Ghahramani).

The third member of the classic sparse-GP family (next to the projected
process of :mod:`repro.gp.sparse` and the variational bound of
:mod:`repro.gp.variational`).  FITC corrects DTC's over-confidence by
keeping the *exact* diagonal of the prior:

    q(y) = N(0, Q_ff + diag(K_ff - Q_ff) + sigma^2 I)

which gives heteroskedastic effective noise
``Lambda_ii = k(x_i, x_i) - q(x_i, x_i) + sigma^2`` and usually better
calibrated predictive variances than DTC at the same budget — a useful
contrast point for the paper's Fig. 13-style trade-off studies.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, solve_triangular

from .kernels import SquaredExponentialKernel
from .optimize import nelder_mead_minimize
from .regression import robust_cholesky
from .sparse import select_active_points

__all__ = ["FitcSparseGP"]


class _FitcPosterior:
    """Factorisations for FITC prediction and likelihood."""

    def __init__(
        self,
        kernel: SquaredExponentialKernel,
        x: np.ndarray,
        y: np.ndarray,
        x_inducing: np.ndarray,
    ) -> None:
        self.kernel = kernel
        self.x_inducing = x_inducing
        noise_var = kernel.theta2**2
        k_uu = kernel.matrix(x_inducing)
        k_uf = kernel.matrix(x_inducing, x)
        self._luu, _ = robust_cholesky(k_uu)

        # Q_ff diagonal via the whitened cross-covariance.
        v = solve_triangular(self._luu, k_uf, lower=True)
        q_diag = np.sum(v**2, axis=0)
        lam = np.clip(kernel.theta0**2 - q_diag, 0.0, None) + noise_var
        self._lam = lam

        scaled = k_uf / lam  # K_uf Lambda^{-1}
        sigma = k_uu + scaled @ k_uf.T
        self._lsigma, _ = robust_cholesky(sigma)
        self._beta = cho_solve((self._lsigma, True), scaled @ y)
        self._k_uf = k_uf
        self._y = y

    def predict(
        self, x_star: np.ndarray, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        k_us = self.kernel.matrix(self.x_inducing, x_star)
        mean = k_us.T @ self._beta
        v_uu = solve_triangular(self._luu, k_us, lower=True)
        v_sigma = solve_triangular(self._lsigma, k_us, lower=True)
        prior = self.kernel.diag(x_star, noise=include_noise)
        var = prior - np.sum(v_uu**2, axis=0) + np.sum(v_sigma**2, axis=0)
        return mean, np.clip(var, 1e-12, None)

    def log_marginal_likelihood(self) -> float:
        """log p(y | X, theta) of the fitted model."""
        y, lam = self._y, self._lam
        n = y.size
        scaled_y = y / lam
        k_uf_y = self._k_uf @ scaled_y
        inner = cho_solve((self._lsigma, True), k_uf_y)
        quad = float(y @ scaled_y - k_uf_y @ inner)
        logdet = (
            2.0 * np.sum(np.log(np.diag(self._lsigma)))
            - 2.0 * np.sum(np.log(np.diag(self._luu)))
            + float(np.sum(np.log(lam)))
        )
        return -0.5 * (quad + logdet + n * np.log(2.0 * np.pi))


class FitcSparseGP:
    """FITC sparse GP with ``m`` inducing inputs (uniform subsample)."""

    def __init__(
        self,
        n_inducing: int = 32,
        kernel: SquaredExponentialKernel | None = None,
        train_iters: int = 40,
        seed: int = 0,
    ) -> None:
        if n_inducing <= 0:
            raise ValueError(f"n_inducing must be positive, got {n_inducing}")
        self.n_inducing = n_inducing
        self.kernel = kernel or SquaredExponentialKernel()
        self.train_iters = train_iters
        self.seed = seed
        self._posterior: _FitcPosterior | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "FitcSparseGP":
        """Train on the historical stream (see BaseForecaster.fit)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.size:
            raise ValueError(f"{x.shape[0]} inputs but {y.size} targets")
        x_inducing = select_active_points(x, self.n_inducing, seed=self.seed)

        def objective(log_params: np.ndarray) -> float:
            try:
                kernel = SquaredExponentialKernel.from_log_params(log_params)
                post = _FitcPosterior(kernel, x, y, x_inducing)
                return -post.log_marginal_likelihood()
            except np.linalg.LinAlgError:
                return np.inf

        if self.train_iters > 0:
            result = nelder_mead_minimize(
                objective, self.kernel.log_params, max_iters=self.train_iters
            )
            self.kernel = SquaredExponentialKernel.from_log_params(result.x)
        self._posterior = _FitcPosterior(self.kernel, x, y, x_inducing)
        return self

    def predict(
        self, x_star: np.ndarray, include_noise: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        return self._posterior.predict(x_star, include_noise=include_noise)

    def log_marginal_likelihood(self) -> float:
        """log p(y | X, theta) of the fitted model."""
        if self._posterior is None:
            raise RuntimeError("fit() must be called first")
        return self._posterior.log_marginal_likelihood()
