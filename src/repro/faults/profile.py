"""Deterministic fault profiles: *what* goes wrong, *when*, repeatably.

A :class:`FaultProfile` is a seeded description of the failures a
:class:`~repro.faults.backend.FaultInjectingBackend` injects into one
compute backend: per-operation error rates, NaN corruption of kernel
outputs, added simulated latency, burst windows and a hard "backend dies
at tick T" switch.  Every decision is drawn from one
``numpy.random.default_rng(seed)`` stream in operation order, so the
same profile on the same workload injects the *same* faults — chaos
runs are reproducible bug reports, not flakes.

Profiles are selected three ways (mirroring ``REPRO_BACKEND``):

* programmatically — ``make_backend("simulated", fault_profile=...)``,
* per process — the ``REPRO_FAULT_PROFILE`` environment variable,
* per CLI run — the ``--fault-profile`` flag of ``repro demo``/``stats``.

Each accepts a registered name (:data:`FAULT_PROFILE_NAMES`) or a
``key=value[,key=value...]`` spec, e.g.
``REPRO_FAULT_PROFILE="kernel_error=0.05,seed=7,burst=100:200"``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "FAULT_PROFILE_ENV_VAR",
    "FAULT_PROFILE_NAMES",
    "FaultProfile",
    "as_fault_profile",
    "format_fault_profile",
    "parse_fault_profile",
]

#: Environment variable selecting the process-default fault profile
#: (no injection when unset or set to ``none``).
FAULT_PROFILE_ENV_VAR = "REPRO_FAULT_PROFILE"


@dataclass(frozen=True)
class FaultProfile:
    """Seeded failure policy for one wrapped backend.

    Rates are per *operation* (one kernel call or one malloc counts as
    one operation tick).  When ``burst`` is set, the three error/NaN
    rates apply only inside the half-open tick window ``[start, end)``;
    latency and ``dies_at_tick`` are unaffected by bursts.
    """

    #: Display name ("custom" for ad-hoc profiles).
    name: str = "custom"
    #: RNG seed driving every injection decision.
    seed: int = 0
    #: Probability a kernel call raises :class:`KernelFaultError`.
    kernel_error_rate: float = 0.0
    #: Probability a kernel's output array gets one entry set to NaN.
    kernel_nan_rate: float = 0.0
    #: Probability a malloc raises :class:`~repro.gpu.device.GpuMemoryError`.
    malloc_error_rate: float = 0.0
    #: Simulated seconds added to the time ledger per kernel call.
    added_latency_s: float = 0.0
    #: Operation tick at which the backend dies for good (every later
    #: operation — kernels *and* memory — raises
    #: :class:`BackendDeadError`).  ``None`` = never.
    dies_at_tick: int | None = None
    #: Optional ``[start, end)`` tick window gating the three rates.
    burst: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        for field in ("kernel_error_rate", "kernel_nan_rate", "malloc_error_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        if self.added_latency_s < 0:
            raise ValueError(
                f"added_latency_s must be non-negative, got {self.added_latency_s}"
            )
        if self.dies_at_tick is not None and self.dies_at_tick < 0:
            raise ValueError(
                f"dies_at_tick must be non-negative, got {self.dies_at_tick}"
            )
        if self.burst is not None:
            start, end = self.burst
            if start < 0 or end <= start:
                raise ValueError(
                    f"burst must be a [start, end) window with 0 <= start < "
                    f"end, got {self.burst}"
                )

    @property
    def is_null(self) -> bool:
        """True when the profile injects nothing at all."""
        return (
            self.kernel_error_rate == 0.0
            and self.kernel_nan_rate == 0.0
            and self.malloc_error_rate == 0.0
            and self.added_latency_s == 0.0
            and self.dies_at_tick is None
        )

    def in_burst(self, tick: int) -> bool:
        """Whether the gated rates apply at this operation tick."""
        if self.burst is None:
            return True
        start, end = self.burst
        return start <= tick < end


#: Registered profiles: ``none`` disables injection; ``chaos`` is the
#: full-suite-tolerable profile the CI chaos job runs under (latency is
#: injected into every kernel call but never changes an answer, proving
#: every call goes through the fault layer deterministically).
_NAMED: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "flaky-kernels": FaultProfile(name="flaky-kernels", seed=7, kernel_error_rate=0.05),
    "nan-kernels": FaultProfile(name="nan-kernels", seed=7, kernel_nan_rate=0.05),
    "slow": FaultProfile(name="slow", seed=7, added_latency_s=5e-6),
    "chaos": FaultProfile(name="chaos", seed=2015, added_latency_s=1e-7),
}

FAULT_PROFILE_NAMES = tuple(sorted(_NAMED))

#: spec key -> FaultProfile field (plus ``burst``/``dies_at`` special-cased).
_SPEC_KEYS = {
    "seed": ("seed", int),
    "kernel_error": ("kernel_error_rate", float),
    "nan": ("kernel_nan_rate", float),
    "kernel_nan": ("kernel_nan_rate", float),
    "malloc_error": ("malloc_error_rate", float),
    "latency": ("added_latency_s", float),
    "dies_at": ("dies_at_tick", int),
}


def parse_fault_profile(spec: str) -> FaultProfile:
    """Build a profile from a registered name or a ``key=value`` spec.

    Spec keys: ``seed``, ``kernel_error``, ``nan``, ``malloc_error``,
    ``latency``, ``dies_at`` and ``burst=START:END``.  A name may lead
    the spec to use it as a base: ``"flaky-kernels,seed=3"``.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty fault-profile spec {spec!r}")
    profile = FaultProfile()
    parts = [part.strip() for part in spec.split(",") if part.strip()]
    if parts and "=" not in parts[0]:
        name = parts.pop(0)
        if name not in _NAMED:
            raise ValueError(
                f"unknown fault profile {name!r}; available: "
                f"{', '.join(FAULT_PROFILE_NAMES)}"
            )
        profile = _NAMED[name]
    overrides: dict[str, object] = {}
    for part in parts:
        key, _, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if key == "burst":
            start, _, end = value.partition(":")
            overrides["burst"] = (int(start), int(end))
        elif key in _SPEC_KEYS:
            field, cast = _SPEC_KEYS[key]
            overrides[field] = cast(value)
        else:
            raise ValueError(
                f"unknown fault-profile key {key!r}; available: "
                f"burst, {', '.join(sorted(_SPEC_KEYS))}"
            )
    if overrides:
        overrides.setdefault("name", "custom")
        profile = replace(profile, **overrides)
    return profile


def format_fault_profile(profile: FaultProfile) -> str:
    """The inverse of :func:`parse_fault_profile`.

    Emits a spec string that parses back to an *equal* profile:
    ``parse_fault_profile(format_fault_profile(p)) == p`` for every
    profile the parser can produce (pinned by a Hypothesis round-trip
    property in ``tests/test_faults_profile.py``).  A registered profile
    formats as its bare name; anything else formats as a ``key=value``
    spec.  ``seed`` is always emitted so the spec is never empty (the
    parser rejects empty specs), and floats use ``repr`` so the value
    survives the text round trip bit-exactly.

    Profiles with a name that is neither registered nor ``"custom"``
    are outside the parser's image (the spec grammar cannot carry an
    arbitrary name) and raise ``ValueError``.
    """
    for name in FAULT_PROFILE_NAMES:
        if profile == _NAMED[name]:
            return name
    if profile.name != "custom":
        raise ValueError(
            f"profile name {profile.name!r} is not representable as a "
            "spec: it is neither a registered profile nor 'custom'"
        )
    parts = [f"seed={profile.seed}"]
    if profile.kernel_error_rate != 0.0:
        parts.append(f"kernel_error={profile.kernel_error_rate!r}")
    if profile.kernel_nan_rate != 0.0:
        parts.append(f"nan={profile.kernel_nan_rate!r}")
    if profile.malloc_error_rate != 0.0:
        parts.append(f"malloc_error={profile.malloc_error_rate!r}")
    if profile.added_latency_s != 0.0:
        parts.append(f"latency={profile.added_latency_s!r}")
    if profile.dies_at_tick is not None:
        parts.append(f"dies_at={profile.dies_at_tick}")
    if profile.burst is not None:
        start, end = profile.burst
        parts.append(f"burst={start}:{end}")
    return ",".join(parts)


def as_fault_profile(obj: object) -> FaultProfile | None:
    """Coerce to a profile: ``None``/``"none"``/null profiles yield ``None``
    (meaning "do not wrap"), strings are parsed, profiles pass through."""
    if obj is None:
        return None
    if isinstance(obj, str):
        obj = parse_fault_profile(obj)
    if not isinstance(obj, FaultProfile):
        raise TypeError(
            f"expected a FaultProfile, spec string or None, got "
            f"{type(obj).__name__}"
        )
    return None if obj.is_null else obj
