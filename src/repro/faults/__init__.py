"""Deliberate failure: deterministic fault injection for compute backends.

The paper's sleep-and-recovery scheduler (Section 5.3) assumes
predictors fail and come back; this package gives the *serving* stack
the same assumption.  :class:`FaultProfile` describes what goes wrong
(seeded rates, burst windows, death ticks), and
:class:`FaultInjectingBackend` wraps any
:class:`~repro.backend.base.ComputeBackend` to make it happen,
repeatably.  The health-aware :class:`~repro.backend.pool.BackendPool`
and the :class:`~repro.service.PredictionService` degradation ladder are
the consumers; ``docs/robustness.md`` walks through the whole story.
"""

from .backend import (
    BackendDeadError,
    FaultError,
    FaultInjectingBackend,
    KernelFaultError,
)
from .profile import (
    FAULT_PROFILE_ENV_VAR,
    FAULT_PROFILE_NAMES,
    FaultProfile,
    as_fault_profile,
    format_fault_profile,
    parse_fault_profile,
)

__all__ = [
    "BackendDeadError",
    "FAULT_PROFILE_ENV_VAR",
    "FAULT_PROFILE_NAMES",
    "FaultError",
    "FaultInjectingBackend",
    "FaultProfile",
    "KernelFaultError",
    "as_fault_profile",
    "format_fault_profile",
    "parse_fault_profile",
]
