"""A :class:`ComputeBackend` wrapper that injects deterministic faults.

:class:`FaultInjectingBackend` sits between the serving stack and any
real backend and misbehaves exactly as its :class:`FaultProfile` says:
kernel calls raise :class:`KernelFaultError`, mallocs raise
:class:`~repro.gpu.device.GpuMemoryError`, kernel outputs come back
NaN-corrupted, every call picks up simulated latency, and — past
``dies_at_tick`` — the whole backend is dead
(:class:`BackendDeadError` on every operation, memory included).

The wrapper is transparent for everything it does not sabotage: the
``name`` mirrors the inner backend (a faulted "simulated" backend still
reports ``simulated``) and unknown attributes (``device``, ``spec``,
``cost``) delegate to the inner backend.  Injection decisions consume
one seeded RNG stream in operation order, so identical workloads under
identical profiles fail identically — the whole point of a fault model
you can write regression tests against.

Each wrapper owns a re-entrant lock held for the whole of every wrapped
operation, making the (tick, RNG draw, inner call, corruption draw)
tuple atomic: concurrent serving lanes can never tear the operation-tick
counter or interleave two operations' RNG draws.  Determinism then needs
only what the serving layer already guarantees — that each backend sees
its operations in a fixed order (one lane per backend shard).
"""

from __future__ import annotations

import logging
import threading

import numpy as np

from ..gpu.device import Allocation, GpuMemoryError
from ..obs import hooks as obs
from .profile import FaultProfile

__all__ = [
    "BackendDeadError",
    "FaultError",
    "FaultInjectingBackend",
    "KernelFaultError",
]

logger = logging.getLogger(__name__)


class FaultError(RuntimeError):
    """Base class for injected (non-memory) backend failures."""


class KernelFaultError(FaultError):
    """An injected kernel-execution failure (transient by construction)."""


class BackendDeadError(FaultError):
    """The backend passed its ``dies_at_tick`` — every operation fails."""


class FaultInjectingBackend:
    """Wrap a backend and inject failures per a seeded :class:`FaultProfile`."""

    def __init__(self, inner, profile: FaultProfile) -> None:
        if isinstance(inner, FaultInjectingBackend):
            raise ValueError("refusing to stack fault injectors")
        self.inner = inner
        self.profile = profile
        self._rng = np.random.default_rng(profile.seed)
        self._tick = 0
        self._injected_s = 0.0
        self._lock = threading.RLock()
        #: Injection counts by kind, for tests and diagnostics.
        self.injected: dict[str, int] = {
            "kernel_error": 0, "kernel_nan": 0, "malloc_error": 0,
            "latency": 0, "dead_op": 0,
        }

    @property
    def name(self) -> str:
        """The inner backend's name — fault injection is transparent."""
        return self.inner.name

    @property
    def tick(self) -> int:
        """Operations seen so far (kernel calls + memory operations)."""
        return self._tick

    # ----------------------------------------------------------- injection
    def _begin_op(self, operation: str) -> int:
        tick = self._tick
        self._tick += 1
        profile = self.profile
        if profile.dies_at_tick is not None and tick >= profile.dies_at_tick:
            self.injected["dead_op"] += 1
            obs.observe_fault_injected(operation, "dead_op")
            raise BackendDeadError(
                f"backend {self.name!r} died at tick {profile.dies_at_tick}; "
                f"{operation} attempted at tick {tick}"
            )
        return tick

    def _roll(self, rate: float, tick: int) -> bool:
        if rate <= 0.0 or not self.profile.in_burst(tick):
            return False
        return bool(self._rng.random() < rate)

    def _kernel_preamble(self, operation: str) -> int:
        tick = self._begin_op(operation)
        if self.profile.added_latency_s > 0.0:
            self._injected_s += self.profile.added_latency_s
            self.injected["latency"] += 1
        if self._roll(self.profile.kernel_error_rate, tick):
            self.injected["kernel_error"] += 1
            obs.observe_fault_injected(operation, "kernel_error")
            logger.debug("injected kernel fault in %s at tick %d", operation, tick)
            raise KernelFaultError(
                f"injected {operation} fault at tick {tick} "
                f"({self.name!r} backend)"
            )
        return tick

    def _maybe_corrupt(self, operation: str, tick: int, out: np.ndarray) -> np.ndarray:
        if out.size == 0 or not self._roll(self.profile.kernel_nan_rate, tick):
            return out
        self.injected["kernel_nan"] += 1
        obs.observe_fault_injected(operation, "kernel_nan")
        corrupted = np.array(out, dtype=np.float64, copy=True)
        corrupted[int(self._rng.integers(corrupted.size))] = np.nan
        logger.debug("injected NaN into %s output at tick %d", operation, tick)
        return corrupted

    # ------------------------------------------------------------- kernels
    def dtw_verification(
        self,
        query: np.ndarray,
        candidates: np.ndarray,
        rho: int,
        cutoff: float | None = None,
        lb_terms: np.ndarray | None = None,
    ) -> np.ndarray:
        """Banded DTW, possibly failing or NaN-corrupted per the profile."""
        with self._lock:
            tick = self._kernel_preamble("dtw_verification")
            out = self.inner.dtw_verification(
                query, candidates, rho, cutoff=cutoff, lb_terms=lb_terms
            )
            return self._maybe_corrupt("dtw_verification", tick, out)

    def full_dtw(self, query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
        """Unbanded DTW, possibly failing or NaN-corrupted per the profile."""
        with self._lock:
            tick = self._kernel_preamble("full_dtw")
            out = self.inner.full_dtw(query, candidates)
            return self._maybe_corrupt("full_dtw", tick, out)

    def k_select(self, values: np.ndarray, k: int) -> np.ndarray:
        """Device k-selection (indices are never NaN-corrupted)."""
        with self._lock:
            self._kernel_preamble("k_select")
            return self.inner.k_select(values, k)

    def launch(
        self,
        name: str,
        n_blocks: int,
        ops_per_thread: float,
        threads_per_block: int = 256,
    ) -> float:
        """Pass through — kernel entry points already paid the injection."""
        return self.inner.launch(name, n_blocks, ops_per_thread, threads_per_block)

    # ---------------------------------------------------------------- time
    @property
    def elapsed_s(self) -> float:
        """Inner simulated seconds plus everything injected as latency."""
        return self.inner.elapsed_s + self._injected_s

    def reset_time(self) -> None:
        """Zero both the inner ledger and the injected-latency ledger."""
        with self._lock:
            self.inner.reset_time()
            self._injected_s = 0.0

    # -------------------------------------------------------------- memory
    def malloc(self, nbytes: int, label: str = "buffer") -> Allocation:
        """Reserve inner memory, unless the profile fails this malloc."""
        with self._lock:
            tick = self._begin_op("malloc")
            if self._roll(self.profile.malloc_error_rate, tick):
                self.injected["malloc_error"] += 1
                obs.observe_fault_injected("malloc", "malloc_error")
                raise GpuMemoryError(
                    f"injected malloc failure for {label!r} at tick {tick} "
                    f"({self.name!r} backend)"
                )
            return self.inner.malloc(nbytes, label)

    def free(self, handle: Allocation) -> None:
        """Release inner memory (fails only once the backend is dead)."""
        with self._lock:
            self._begin_op("free")
            self.inner.free(handle)

    @property
    def allocated_bytes(self) -> int:
        """Inner ledger passthrough."""
        return self.inner.allocated_bytes

    @property
    def free_bytes(self) -> int:
        """Inner ledger passthrough."""
        return self.inner.free_bytes

    # ------------------------------------------------------------- pickling
    # Wrapped backends cross the process boundary (RNG stream, tick and
    # injected-latency ledger included, so injection sequences continue
    # exactly where they left off); locks don't pickle, so each side owns
    # a fresh one (the transfer happens from a quiesced state).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __getattr__(self, attr: str):
        # Transparency for backend-specific extras (.device, .spec, .cost).
        # The explicit guard keeps attribute probes on a half-constructed
        # instance (unpickling) from recursing through ``self.inner``.
        if attr == "inner":
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjectingBackend({self.inner!r}, "
            f"profile={self.profile.name!r}, tick={self._tick})"
        )
