"""Time series containers and segment arithmetic.

The paper (Section 3.1) models a sensor stream as a plain sequence of
equally spaced observations ``C = {c_0, c_1, ...}``.  A *segment*
``C_{t,d}`` is the d-length contiguous slice starting at ``t``.  At time
``t0`` the h-step-ahead prediction maps the d-length segment ending at
``t0`` to the value at ``t0 + h``.

This module provides:

* :class:`TimeSeries` — an append-friendly container over a float array
  with z-normalisation helpers and segment extraction,
* :func:`segment_matrix` — the ``(X_{k,d}, Y_h)`` design-matrix builder
  used to assemble GP training sets from raw history,
* :func:`sliding_segments` — a zero-copy view of every d-length segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "TimeSeries",
    "ZNormStats",
    "segment_matrix",
    "sliding_segments",
    "train_test_split_tail",
]


@dataclass(frozen=True)
class ZNormStats:
    """Mean/std pair used for (de-)normalising one sensor's stream."""

    mean: float
    std: float

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Return the z-normalised copy of ``values``."""
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def invert(self, values: np.ndarray) -> np.ndarray:
        """Map z-normalised values back to the raw scale."""
        return np.asarray(values, dtype=np.float64) * self.std + self.mean

    def invert_variance(self, variances: np.ndarray) -> np.ndarray:
        """Map predictive variances back to the raw scale."""
        return np.asarray(variances, dtype=np.float64) * (self.std**2)


class TimeSeries:
    """A single sensor's observation stream.

    Supports O(1) amortised :meth:`append` (continuous prediction feeds one
    point per step) while exposing the data as a contiguous NumPy view.

    Parameters
    ----------
    values:
        Initial observations, oldest first.
    sensor_id:
        Free-form identifier used in reports.
    """

    def __init__(self, values=(), sensor_id: str = "sensor-0") -> None:
        initial = np.asarray(list(values), dtype=np.float64)
        capacity = max(64, 2 * initial.size)
        self._buffer = np.empty(capacity, dtype=np.float64)
        self._buffer[: initial.size] = initial
        self._length = int(initial.size)
        self.sensor_id = sensor_id

    # ------------------------------------------------------------------ core
    def __len__(self) -> int:
        return self._length

    @property
    def values(self) -> np.ndarray:
        """Read-only contiguous view of the observations."""
        view = self._buffer[: self._length]
        view.flags.writeable = False
        return view

    def __getitem__(self, item):
        return self.values[item]

    def append(self, value: float) -> None:
        """Push the newest observation (continuous prediction step)."""
        if self._length == self._buffer.size:
            grown = np.empty(2 * self._buffer.size, dtype=np.float64)
            grown[: self._length] = self._buffer[: self._length]
            self._buffer = grown
        self._buffer[self._length] = float(value)
        self._length += 1

    def extend(self, values) -> None:
        """Push several observations, oldest first."""
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.append(value)

    # -------------------------------------------------------------- segments
    def segment(self, start: int, length: int) -> np.ndarray:
        """Return the paper's ``C_{t,d}``: ``d`` points starting at ``t``."""
        if start < 0 or length <= 0 or start + length > self._length:
            raise IndexError(
                f"segment [{start}, {start + length}) out of range for "
                f"series of length {self._length}"
            )
        return self.values[start : start + length]

    def suffix(self, length: int) -> np.ndarray:
        """Return the d-length segment ending at the newest observation."""
        if length <= 0 or length > self._length:
            raise IndexError(
                f"suffix of length {length} out of range for series of "
                f"length {self._length}"
            )
        return self.values[self._length - length :]

    # ---------------------------------------------------------- normalisation
    def znorm_stats(self) -> ZNormStats:
        """Mean/std of the stream (std floored to avoid division by zero)."""
        values = self.values
        std = float(np.std(values))
        return ZNormStats(mean=float(np.mean(values)), std=max(std, 1e-12))

    def znormalised(self) -> "TimeSeries":
        """Return a z-normalised copy of this series."""
        stats = self.znorm_stats()
        copy = TimeSeries(stats.apply(self.values), sensor_id=self.sensor_id)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.sensor_id!r}, n={self._length})"


def sliding_segments(values: np.ndarray, length: int) -> np.ndarray:
    """All d-length segments of ``values`` as a zero-copy 2-D view.

    Row ``t`` is the segment ``C_{t,d}``; there are ``n - d + 1`` rows.
    """
    values = np.asarray(values, dtype=np.float64)
    if length <= 0 or length > values.size:
        raise ValueError(
            f"segment length {length} invalid for series of size {values.size}"
        )
    return sliding_window_view(values, length)


def segment_matrix(
    values: np.ndarray, length: int, horizon: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the supervised pairs ``(X, y)`` for h-step-ahead prediction.

    Row ``j`` of ``X`` is the segment starting at ``starts[j]`` and ``y[j]``
    is its h-step-ahead value ``c_{starts[j] + d - 1 + h}`` (Section 3.2.1).
    Only segments whose target exists are returned.

    Returns
    -------
    (X, y, starts):
        ``X`` has shape ``(m, length)``, ``y`` shape ``(m,)`` and ``starts``
        the segment start indices.
    """
    values = np.asarray(values, dtype=np.float64)
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    usable = values.size - length - horizon + 1
    if usable <= 0:
        raise ValueError(
            f"series of size {values.size} too short for segments of length "
            f"{length} with horizon {horizon}"
        )
    segments = sliding_segments(values, length)[:usable]
    starts = np.arange(usable)
    targets = values[length + horizon - 1 : length + horizon - 1 + usable]
    return segments, targets, starts


def train_test_split_tail(
    values: np.ndarray, test_points: int
) -> tuple[np.ndarray, np.ndarray]:
    """Leave-out split used in Section 6.3.1: cut the tail for testing."""
    values = np.asarray(values, dtype=np.float64)
    if not 0 < test_points < values.size:
        raise ValueError(
            f"test_points must be in (0, {values.size}), got {test_points}"
        )
    return values[:-test_points], values[-test_points:]
