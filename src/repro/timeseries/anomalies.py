"""Synthetic anomaly injection for monitoring experiments.

The uncertainty-monitoring example and the failure-injection tests need
controlled disruptions in otherwise ordinary streams.  Each injector
returns a modified *copy* plus the ground-truth mask of affected
positions, so detection quality can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Injection", "inject_spike", "inject_level_shift", "inject_dropout"]


@dataclass(frozen=True)
class Injection:
    """An anomaly-injected stream plus its ground truth."""

    values: np.ndarray
    mask: np.ndarray  # True where the stream was modified

    @property
    def n_affected(self) -> int:
        """Number of modified positions."""
        return int(self.mask.sum())


def _prepare(values, start: int, length: int) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=np.float64).copy()
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if not 0 <= start < values.size:
        raise IndexError(f"start {start} out of range for {values.size} points")
    mask = np.zeros(values.size, dtype=bool)
    mask[start : start + length] = True
    return values, mask


def inject_spike(
    values, start: int, magnitude: float, length: int = 1
) -> Injection:
    """Additive spike of ``magnitude`` over ``length`` points."""
    values, mask = _prepare(values, start, length)
    values[mask] += magnitude
    return Injection(values=values, mask=mask)


def inject_level_shift(values, start: int, magnitude: float) -> Injection:
    """Permanent level shift from ``start`` to the end of the stream."""
    values = np.asarray(values, dtype=np.float64).copy()
    if not 0 <= start < values.size:
        raise IndexError(f"start {start} out of range for {values.size} points")
    mask = np.zeros(values.size, dtype=bool)
    mask[start:] = True
    values[start:] += magnitude
    return Injection(values=values, mask=mask)


def inject_dropout(
    values, start: int, length: int, fill: float = 0.0
) -> Injection:
    """Sensor dropout: the affected span is replaced by ``fill``
    (a stuck-at-zero reading, the classic hardware failure)."""
    values, mask = _prepare(values, start, length)
    values[mask] = fill
    return Injection(values=values, mask=mask)
