"""Dataset registry mirroring the paper's ROAD / MALL / NET evaluation data.

A :class:`SensorDataset` bundles many sensors' z-normalised streams plus
the leave-out split of Section 6.3.1 (a tail segment of each sensor is
held out and predicted continuously).  The registry exposes the three
synthetic stand-ins at configurable scale, so tests run in milliseconds
while benchmarks can approach paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generators import mall_like, net_like, road_like
from .series import TimeSeries, ZNormStats, train_test_split_tail

__all__ = ["SensorDataset", "DATASET_NAMES", "make_dataset"]

DATASET_NAMES = ("ROAD", "MALL", "NET")


@dataclass
class SensorDataset:
    """A named collection of z-normalised sensor streams with tail splits.

    Attributes
    ----------
    name:
        Dataset identifier (``ROAD``/``MALL``/``NET`` or custom).
    history:
        Per-sensor training streams (z-normalised).
    test_tails:
        Per-sensor held-out tails (z-normalised, same stats as history).
    norm_stats:
        Per-sensor z-normalisation statistics (computed on the full
        stream, as the paper normalises whole series).
    """

    name: str
    history: list[TimeSeries]
    test_tails: list[np.ndarray]
    norm_stats: list[ZNormStats]

    @property
    def n_sensors(self) -> int:
        """Number of sensors in the collection."""
        return len(self.history)

    def sensor(self, index: int) -> tuple[TimeSeries, np.ndarray]:
        """Return ``(history, test_tail)`` for one sensor."""
        return self.history[index], self.test_tails[index]

    def total_points(self) -> int:
        """Total stored observations across all sensors (history + tails)."""
        return sum(len(h) for h in self.history) + sum(
            t.size for t in self.test_tails
        )


_GENERATORS = {
    "ROAD": road_like,
    "MALL": mall_like,
    "NET": net_like,
}


def make_dataset(
    name: str,
    n_sensors: int = 8,
    n_points: int = 4096,
    test_points: int = 256,
    seed: int = 0,
) -> SensorDataset:
    """Build one of the three synthetic datasets, z-normalised and split.

    Parameters
    ----------
    name:
        One of ``ROAD``, ``MALL``, ``NET`` (case-insensitive).
    n_sensors, n_points:
        Fleet size and stream length (paper scale: ~1000 x ~60000; tests
        use small values, benchmarks larger ones).
    test_points:
        Tail length held out per sensor for continuous-prediction testing.
    seed:
        Generator seed; the dataset name is mixed in so the three datasets
        differ even with equal seeds.
    """
    key = name.upper()
    if key not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    if test_points >= n_points:
        raise ValueError(
            f"test_points ({test_points}) must be smaller than n_points ({n_points})"
        )
    raw_sensors = _GENERATORS[key](
        n_sensors, n_points, seed=seed + 7919 * DATASET_NAMES.index(key)
    )

    history: list[TimeSeries] = []
    tails: list[np.ndarray] = []
    stats: list[ZNormStats] = []
    for idx, raw in enumerate(raw_sensors):
        series = TimeSeries(raw, sensor_id=f"{key.lower()}-{idx}")
        zstats = series.znorm_stats()
        normalised = zstats.apply(series.values)
        train, test = train_test_split_tail(normalised, test_points)
        history.append(TimeSeries(train, sensor_id=series.sensor_id))
        tails.append(test)
        stats.append(zstats)
    return SensorDataset(name=key, history=history, test_tails=tails, norm_stats=stats)
