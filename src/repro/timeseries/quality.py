"""Data-quality screening for sensor streams.

Semi-lazy prediction is only as good as the history it retrieves from,
so a deployment should screen streams before registering them.  The
report flags the failure modes the failure-injection tests exercise:

* missing values (NaN),
* stuck-at runs (a sensor repeating one value),
* MAD-based outliers (data-poisoning candidates — a single absurd value
  lands in retrieved neighbourhoods forever),
* near-zero variance (nothing to normalise or predict).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QualityReport", "assess_quality", "longest_constant_run"]


def longest_constant_run(values: np.ndarray) -> int:
    """Length of the longest run of identical consecutive values."""
    values = np.asarray(values)
    if values.size == 0:
        return 0
    change = np.flatnonzero(values[1:] != values[:-1])
    if change.size == 0:
        return int(values.size)
    run_bounds = np.concatenate([[-1], change, [values.size - 1]])
    return int(np.max(np.diff(run_bounds)))


@dataclass
class QualityReport:
    """Screening result for one stream."""

    n_points: int
    missing_fraction: float
    longest_stuck_run: int
    outlier_fraction: float
    std: float
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no issues were flagged."""
        return not self.issues

    def render(self) -> str:
        """Render this result as an aligned text table."""
        lines = [
            f"points: {self.n_points}",
            f"missing: {self.missing_fraction:.1%}",
            f"longest stuck run: {self.longest_stuck_run}",
            f"outliers (>8 MAD): {self.outlier_fraction:.2%}",
            f"std: {self.std:.4g}",
        ]
        if self.issues:
            lines.append("issues: " + "; ".join(self.issues))
        else:
            lines.append("issues: none")
        return "\n".join(lines)


def assess_quality(
    values: np.ndarray,
    max_missing: float = 0.05,
    max_stuck_run: int = 288,
    max_outliers: float = 0.01,
    min_std: float = 1e-9,
) -> QualityReport:
    """Screen a raw stream; thresholds default to sensible sensor limits.

    ``max_stuck_run`` defaults to 288 samples (a full day at 5-minute
    sampling) — real car parks do sit full overnight, so short runs are
    normal.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot assess an empty stream")
    missing = np.isnan(values)
    missing_fraction = float(missing.mean())
    present = values[~missing]

    issues: list[str] = []
    if missing_fraction > max_missing:
        issues.append(
            f"{missing_fraction:.1%} missing exceeds {max_missing:.0%}"
        )
    if present.size == 0:
        return QualityReport(
            n_points=values.size, missing_fraction=1.0, longest_stuck_run=0,
            outlier_fraction=0.0, std=0.0,
            issues=["stream is entirely missing"],
        )

    stuck = longest_constant_run(present)
    if stuck > max_stuck_run:
        issues.append(f"stuck-at run of {stuck} exceeds {max_stuck_run}")

    median = float(np.median(present))
    mad = float(np.median(np.abs(present - median)))
    if mad > 0:
        outliers = np.abs(present - median) > 8.0 * 1.4826 * mad
        outlier_fraction = float(outliers.mean())
    else:
        outlier_fraction = float((present != median).mean())
    if outlier_fraction > max_outliers:
        issues.append(
            f"{outlier_fraction:.2%} outliers exceeds {max_outliers:.0%}"
        )

    std = float(np.std(present))
    if std < min_std:
        issues.append(f"std {std:.3g} below {min_std:.0e} (constant stream)")

    return QualityReport(
        n_points=values.size,
        missing_fraction=missing_fraction,
        longest_stuck_run=stuck,
        outlier_fraction=outlier_fraction,
        std=std,
        issues=issues,
    )
