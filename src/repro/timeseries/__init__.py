"""Time-series substrate: containers, windows, generators and datasets."""

from .anomalies import Injection, inject_dropout, inject_level_shift, inject_spike
from .datasets import DATASET_NAMES, SensorDataset, make_dataset
from .generators import mall_like, net_like, road_like
from .quality import QualityReport, assess_quality, longest_constant_run
from .io import fill_missing, load_csv, load_directory, reinterpolate, save_csv
from .series import (
    TimeSeries,
    ZNormStats,
    segment_matrix,
    sliding_segments,
    train_test_split_tail,
)
from .windows import (
    aligned_segment_start,
    csg_size,
    csg_window_ids,
    disjoint_window,
    disjoint_window_count,
    disjoint_windows,
    sliding_window,
    sliding_window_count,
    sliding_windows_right_to_left,
)

__all__ = [
    "QualityReport",
    "assess_quality",
    "longest_constant_run",
    "Injection",
    "inject_dropout",
    "inject_level_shift",
    "inject_spike",
    "DATASET_NAMES",
    "SensorDataset",
    "make_dataset",
    "mall_like",
    "net_like",
    "road_like",
    "fill_missing",
    "load_csv",
    "load_directory",
    "reinterpolate",
    "save_csv",
    "TimeSeries",
    "ZNormStats",
    "segment_matrix",
    "sliding_segments",
    "train_test_split_tail",
    "aligned_segment_start",
    "csg_size",
    "csg_window_ids",
    "disjoint_window",
    "disjoint_window_count",
    "disjoint_windows",
    "sliding_window",
    "sliding_window_count",
    "sliding_windows_right_to_left",
]
