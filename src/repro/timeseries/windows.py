"""Window decomposition used by the SMiLer Index (Section 4.3.1).

Following the DualMatch framework the series ``C`` is divided into
*disjoint windows* ``DW_r = C[r*omega : (r+1)*omega]`` and the master query
``MQ`` into *sliding windows* ``SW_b`` enumerated right-to-left:
``SW_b`` holds the ``omega`` query points whose distance from the right end
of MQ is ``b .. b+omega-1``.

The module is pure geometry — no lower bounds here — so both the index and
its tests can reason about alignments independently of DTW.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "disjoint_window_count",
    "disjoint_window",
    "disjoint_windows",
    "sliding_window_count",
    "sliding_window",
    "sliding_windows_right_to_left",
    "csg_size",
    "csg_window_ids",
    "aligned_segment_start",
]


def disjoint_window_count(series_length: int, omega: int) -> int:
    """Number of complete disjoint windows in a series."""
    _check_omega(omega)
    return series_length // omega


def disjoint_window(values: np.ndarray, r: int, omega: int) -> np.ndarray:
    """The paper's ``DW_r``: the r-th complete omega-length block."""
    values = np.asarray(values)
    count = disjoint_window_count(values.size, omega)
    if not 0 <= r < count:
        raise IndexError(f"DW_{r} out of range (series has {count} windows)")
    return values[r * omega : (r + 1) * omega]


def disjoint_windows(values: np.ndarray, omega: int) -> np.ndarray:
    """All complete disjoint windows, shape ``(count, omega)``."""
    values = np.asarray(values)
    count = disjoint_window_count(values.size, omega)
    return values[: count * omega].reshape(count, omega)


def sliding_window_count(query_length: int, omega: int) -> int:
    """Number of sliding windows of the master query."""
    _check_omega(omega)
    if query_length < omega:
        return 0
    return query_length - omega + 1


def sliding_window(query: np.ndarray, b: int, omega: int) -> np.ndarray:
    """The paper's ``SW_b``: omega points at offset ``b`` from the right end."""
    query = np.asarray(query)
    count = sliding_window_count(query.size, omega)
    if not 0 <= b < count:
        raise IndexError(f"SW_{b} out of range (query has {count} windows)")
    end = query.size - b
    return query[end - omega : end]


def sliding_windows_right_to_left(query: np.ndarray, omega: int) -> np.ndarray:
    """All sliding windows ordered ``SW_0, SW_1, ...`` (right to left)."""
    query = np.asarray(query)
    count = sliding_window_count(query.size, omega)
    rows = [sliding_window(query, b, omega) for b in range(count)]
    if not rows:
        return np.empty((0, omega), dtype=query.dtype)
    return np.stack(rows)


def csg_size(item_length: int, b: int, omega: int) -> int:
    """``|CSG_{i,b}|`` — windows in the Catenated Sliding Window Group.

    ``CSG_{i,b} = {SW_b, SW_{b+omega}, ...}`` is the maximal set of
    non-overlapping sliding windows of the item query of length
    ``item_length`` whose rightmost member is ``SW_b`` (Definition 4.2).
    """
    _check_omega(omega)
    if b < 0:
        raise ValueError(f"b must be non-negative, got {b}")
    if item_length - b < omega:
        return 0
    return (item_length - b) // omega


def csg_window_ids(item_length: int, b: int, omega: int) -> list[int]:
    """Sliding-window identifiers ``[b, b+omega, ...]`` of ``CSG_{i,b}``."""
    return [b + j * omega for j in range(csg_size(item_length, b, omega))]


def aligned_segment_start(
    item_length: int, b: int, r: int, omega: int
) -> int:
    """Lemma 4.1: start index ``t`` of the candidate segment ``C_{t,d_i}``.

    When ``CSG_{i,b}`` is aligned with the contiguous disjoint windows whose
    *rightmost* member is ``DW_r``, the item query of length ``item_length``
    is aligned with the segment starting at::

        t = (r - |CSG_{i,b}| + 1) * omega - (d_i - b) % omega

    The caller must check ``t >= 0`` and ``t + d_i <= len(C)``.
    """
    size = csg_size(item_length, b, omega)
    if size == 0:
        raise ValueError(
            f"CSG of item length {item_length} with b={b} is empty "
            f"(omega={omega}); no alignment exists"
        )
    return (r - size + 1) * omega - (item_length - b) % omega


def _check_omega(omega: int) -> None:
    if omega <= 0:
        raise ValueError(f"omega must be positive, got {omega}")
