"""Synthetic stand-ins for the paper's three real-life datasets.

The evaluation (Section 6.1.2) uses proprietary-scale downloads we cannot
fetch offline, so each generator reproduces the *statistical regime* the
paper attributes to its dataset:

* ``road_like`` — PEMS-SF road occupancy: weak daily/weekly seasonality
  overlaid with regime-switching congestion events and noise.  This is the
  "dynamic" dataset on which the paper reports SMiLer-GP beating
  SMiLer-AR by ~2x MAE.
* ``mall_like`` — Singapore car-park availability: strong daily seasonality
  with a weekend effect and slow occupancy drift.
* ``net_like`` — backbone internet traffic: smooth multiplicative
  diurnal/weekly cycles with occasional bursts.

All generators are deterministic given a seed and emit values on a raw
physical scale; callers z-normalise per sensor exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

__all__ = ["road_like", "mall_like", "net_like"]

#: Samples per synthetic "day".  The real datasets sample every 5-10
#: minutes (96-288 points/day); we keep the daily cycle but compress it so
#: laptop-scale experiments still span many days.
POINTS_PER_DAY = 96


def _daily_phase(n_points: int, phase_shift: float) -> np.ndarray:
    t = np.arange(n_points, dtype=np.float64)
    return 2.0 * np.pi * (t / POINTS_PER_DAY + phase_shift)


def _weekly_phase(n_points: int) -> np.ndarray:
    t = np.arange(n_points, dtype=np.float64)
    return 2.0 * np.pi * t / (7.0 * POINTS_PER_DAY)


def road_like(
    n_sensors: int, n_points: int, seed: int = 0
) -> list[np.ndarray]:
    """Road-occupancy-like streams (values in [0, 1]).

    Each sensor has commute peaks (two asymmetric daily bumps), a weekly
    modulation, an AR(1) disturbance, and Markov-switching congestion
    episodes that multiply occupancy — the "dynamic traffic" behaviour that
    defeats global models in the paper.
    """
    rng = np.random.default_rng(seed)
    sensors = []
    for _ in range(n_sensors):
        base = 0.08 + 0.05 * rng.random()
        phase = rng.random()
        # Rush-hour timing wanders day to day (an OU process in phase,
        # ~plus/minus half an hour): the clock alone cannot pin down the
        # ramp, but this morning's observed onset can — local information
        # a kNN search exploits and a clock-driven global model cannot.
        wander = np.empty(n_points)
        state = 0.0
        steps = rng.normal(0.0, 0.003, size=n_points)
        for i in range(n_points):
            state = 0.995 * state + steps[i]
            wander[i] = state
        daily = _daily_phase(n_points, phase) + 2.0 * np.pi * wander
        weekly = _weekly_phase(n_points)
        morning = np.exp(np.cos(daily - 0.6) * 2.2) / np.exp(2.2)
        evening = np.exp(np.cos(daily - 3.6) * 1.8) / np.exp(1.8)
        commute = 0.22 * morning + 0.18 * evening
        week_mod = 1.0 - 0.25 * (np.cos(weekly) > 0.9)

        # Recurring congestion regimes: episodes drawn from a small
        # library of characteristic profiles (fast jam + slow clear,
        # slow build + fast clear, double-peak incident) at quantised
        # severities.  A kNN search that retrieves a matching episode
        # onset can predict the whole remaining profile — the local,
        # repeatable structure the paper attributes to traffic data,
        # which low-rank global models smooth away.
        congestion = np.zeros(n_points)
        profiles = _congestion_profiles()
        i = 0
        while i < n_points:
            if rng.random() < 0.006:
                profile = profiles[int(rng.integers(len(profiles)))]
                severity = (0.3, 0.45, 0.6)[int(rng.integers(3))]
                end = min(i + profile.size, n_points)
                congestion[i:end] += severity * profile[: end - i]
                i = end
            else:
                i += 1

        noise = np.empty(n_points)
        ar = 0.0
        shocks = rng.normal(0.0, 0.008, size=n_points)
        for i in range(n_points):
            ar = 0.85 * ar + shocks[i]
            noise[i] = ar

        values = base + commute * week_mod + congestion + noise
        sensors.append(np.clip(values, 0.0, 1.0))
    return sensors


def _congestion_profiles() -> list[np.ndarray]:
    """Canonical congestion episode shapes (fixed library, unit peak)."""
    t60 = np.linspace(0.0, 1.0, 60)
    t90 = np.linspace(0.0, 1.0, 90)
    fast_jam = np.minimum(t60 * 8.0, 1.0) * (1.0 - t60) ** 1.5
    slow_build = t90**2 * np.minimum((1.0 - t90) * 10.0, 1.0)
    double_peak = (
        np.exp(-0.5 * ((t90 - 0.3) / 0.08) ** 2)
        + 0.8 * np.exp(-0.5 * ((t90 - 0.7) / 0.1) ** 2)
    )
    return [
        fast_jam / fast_jam.max(),
        slow_build / slow_build.max(),
        double_peak / double_peak.max(),
    ]


def mall_like(
    n_sensors: int, n_points: int, seed: int = 1
) -> list[np.ndarray]:
    """Car-park-availability-like streams (free lots, values >= 0).

    Strongly seasonal: lots drain through the day and refill at night, with
    busier weekends and slow occupancy drift.  Duplication in the paper
    (each series copied 40x) is emulated by reusing a handful of base
    profiles with small per-sensor offsets.
    """
    rng = np.random.default_rng(seed)
    n_profiles = max(1, n_sensors // 4)
    profiles = []
    for _ in range(n_profiles):
        capacity = rng.integers(300, 900)
        phase = 0.05 * rng.random()
        daily = _daily_phase(n_points, phase)
        weekly = _weekly_phase(n_points)
        occupancy = 0.45 + 0.35 * np.clip(np.sin(daily - 1.2), 0.0, None)
        weekend_boost = 0.12 * (np.cos(weekly) < -0.6)
        drift = 0.04 * np.sin(2.0 * np.pi * np.arange(n_points) / (30.0 * POINTS_PER_DAY))

        # Real malls are not clockwork: footfall varies day to day (a
        # smooth OU multiplier) and the occasional promotion/event day
        # surges the whole day.  Both are visible early in the day's
        # *observed* trace — local signal retrieval can use and a purely
        # clock-driven global model cannot.
        n_days = n_points // POINTS_PER_DAY + 2
        day_level = np.empty(n_days)
        state = 0.0
        for dd in range(n_days):
            state = 0.7 * state + rng.normal(0.0, 0.08)
            day_level[dd] = state
        event_days = rng.random(n_days) < 0.06
        per_point_day = np.arange(n_points) // POINTS_PER_DAY
        busyness = 1.0 + day_level[per_point_day] + 0.25 * event_days[per_point_day]
        occupancy = occupancy * busyness

        profiles.append((capacity, occupancy + weekend_boost + drift))

    sensors = []
    for s in range(n_sensors):
        capacity, occupancy = profiles[s % n_profiles]
        jitter = rng.normal(0.0, 0.015, size=n_points)
        free = capacity * np.clip(1.0 - occupancy + jitter, 0.0, 1.0)
        sensors.append(np.round(free))
    return sensors


def net_like(
    n_sensors: int, n_points: int, seed: int = 2
) -> list[np.ndarray]:
    """Backbone-traffic-like streams (bits/interval, values > 0).

    Smooth multiplicative diurnal and weekly cycles with log-normal noise
    and occasional traffic bursts.  The paper duplicates one series 1024x;
    we emulate with one base profile plus small per-sensor scale jitter.
    """
    rng = np.random.default_rng(seed)
    daily = _daily_phase(n_points, 0.0)
    weekly = _weekly_phase(n_points)
    profile = (1.0 + 0.6 * np.sin(daily - 1.0) + 0.15 * np.sin(weekly)).clip(0.2)

    # Day-to-day volume wander (a smooth OU multiplier): backbone load
    # depends on what the internet is doing that day, not just the clock.
    n_days = n_points // POINTS_PER_DAY + 2
    day_level = np.empty(n_days)
    state = 0.0
    for dd in range(n_days):
        state = 0.8 * state + rng.normal(0.0, 0.07)
        day_level[dd] = state
    volume = np.exp(day_level[np.arange(n_points) // POINTS_PER_DAY])

    sensors = []
    for _ in range(n_sensors):
        scale = 4.0e9 * (0.9 + 0.2 * rng.random())
        lognoise = np.exp(rng.normal(0.0, 0.05, size=n_points))
        bursts = np.ones(n_points)
        for start in rng.integers(0, n_points, size=max(1, n_points // 2000)):
            width = int(rng.integers(4, 20))
            bursts[start : start + width] *= 1.0 + 0.8 * rng.random()
        sensors.append(scale * profile * volume * lognoise * bursts)
    return sensors
