"""Loading real sensor data: CSV files, directories, re-interpolation.

The evaluation uses synthetic stand-ins, but a downstream user will feed
their own exports.  This module covers the common shapes:

* :func:`load_csv` — one sensor per column (or a chosen column), header
  optional, blank/NaN cells tolerated,
* :func:`load_directory` — one sensor per ``*.csv`` file,
* :func:`save_csv` — the matching writer,
* :func:`fill_missing` — linear interpolation over NaN gaps (sensor
  feeds drop samples),
* :func:`reinterpolate` — resample to a different fixed rate.  The paper
  assumes a fixed sample rate per sensor and notes the user "can easily
  re-interpolate data if the sample rate is changed" — this is that
  helper.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from .series import TimeSeries

__all__ = [
    "load_csv",
    "save_csv",
    "load_directory",
    "fill_missing",
    "reinterpolate",
]


def _parse_cell(cell: str) -> float:
    cell = cell.strip()
    if not cell or cell.lower() in ("nan", "na", "null", "none"):
        return np.nan
    return float(cell)


def load_csv(
    path,
    column: int | str | None = None,
    has_header: bool | None = None,
) -> dict[str, TimeSeries]:
    """Load sensors from a CSV file (one sensor per column).

    ``column`` restricts to one column by index or header name.
    ``has_header=None`` sniffs: if the first row has any non-numeric
    cell it is treated as the header.
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        rows = [row for row in csv.reader(handle) if row]
    if not rows:
        raise ValueError(f"{path} is empty")

    first = rows[0]
    if has_header is None:
        try:
            for cell in first:
                _parse_cell(cell)
            has_header = False
        except ValueError:
            has_header = True
    names = (
        [cell.strip() for cell in first]
        if has_header
        else [f"column-{i}" for i in range(len(first))]
    )
    data_rows = rows[1:] if has_header else rows
    if not data_rows:
        raise ValueError(f"{path} has a header but no data rows")

    if column is not None:
        if isinstance(column, str):
            if column not in names:
                raise KeyError(f"column {column!r} not in {names}")
            indices = [names.index(column)]
        else:
            if not 0 <= column < len(names):
                raise IndexError(f"column {column} out of range")
            indices = [int(column)]
    else:
        indices = list(range(len(names)))

    sensors: dict[str, TimeSeries] = {}
    for index in indices:
        values = np.array(
            [
                _parse_cell(row[index]) if index < len(row) else np.nan
                for row in data_rows
            ]
        )
        sensors[names[index]] = TimeSeries(values, sensor_id=names[index])
    return sensors


def save_csv(path, sensors: dict[str, TimeSeries] | dict[str, np.ndarray]) -> None:
    """Write sensors as CSV columns (ragged lengths padded with blanks)."""
    if not sensors:
        raise ValueError("nothing to save")
    path = pathlib.Path(path)
    names = list(sensors)
    columns = [np.asarray(getattr(s, "values", s)) for s in sensors.values()]
    length = max(c.size for c in columns)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(length):
            writer.writerow(
                [
                    ("" if i >= c.size or np.isnan(c[i]) else repr(float(c[i])))
                    for c in columns
                ]
            )


def load_directory(directory, pattern: str = "*.csv") -> dict[str, TimeSeries]:
    """One sensor per matching file (first column of each)."""
    directory = pathlib.Path(directory)
    sensors: dict[str, TimeSeries] = {}
    for path in sorted(directory.glob(pattern)):
        loaded = load_csv(path, column=0)
        series = next(iter(loaded.values()))
        series.sensor_id = path.stem
        sensors[path.stem] = series
    if not sensors:
        raise FileNotFoundError(
            f"no files matching {pattern!r} under {directory}"
        )
    return sensors


def fill_missing(values: np.ndarray) -> np.ndarray:
    """Linearly interpolate NaN gaps (edges extended with nearest value)."""
    values = np.asarray(values, dtype=np.float64).copy()
    missing = np.isnan(values)
    if not missing.any():
        return values
    if missing.all():
        raise ValueError("cannot fill a series that is entirely missing")
    index = np.arange(values.size)
    values[missing] = np.interp(
        index[missing], index[~missing], values[~missing]
    )
    return values


def reinterpolate(values: np.ndarray, factor: float) -> np.ndarray:
    """Resample to ``factor`` times the original rate (linear).

    ``factor > 1`` upsamples (e.g. 2.0 halves the sample interval),
    ``factor < 1`` downsamples.  NaNs must be filled first.
    """
    values = np.asarray(values, dtype=np.float64)
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if values.size < 2:
        raise ValueError("need at least two points to reinterpolate")
    if np.isnan(values).any():
        raise ValueError("fill missing values before reinterpolating")
    n_new = max(2, int(round((values.size - 1) * factor)) + 1)
    old_grid = np.linspace(0.0, 1.0, values.size)
    new_grid = np.linspace(0.0, 1.0, n_new)
    return np.interp(new_grid, old_grid, values)
