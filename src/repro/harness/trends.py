"""Fig. 1 data: hardware trends motivating semi-lazy learning.

The paper opens with four trend plots (2004-2014) arguing that modern
hardware makes just-in-time model construction feasible.  The original
sources (Intel ARK, Galloy's CPU-vs-GPU tables, McCallum's memory-price
list, TechPowerUp) are reproduced here as small static tables per
Appendix A, and the "figure" is regenerated as a text table.
"""

from __future__ import annotations

from .reporting import render_series

__all__ = [
    "CPU_CORES_BY_YEAR",
    "GPU_TFLOPS_BY_YEAR",
    "MEMORY_PRICE_BY_YEAR",
    "GPU_MEMORY_BY_YEAR",
    "render_fig1",
]

#: Intel Xeon E5/5000-family core counts (Fig. 1a, ark.intel.com).
CPU_CORES_BY_YEAR = {
    2004: 1, 2005: 2, 2006: 2, 2007: 4, 2008: 4, 2009: 4,
    2010: 6, 2011: 8, 2012: 8, 2013: 12, 2014: 18,
}

#: NVIDIA GeForce single-precision TFLOPS (Fig. 1b, Galloy).
GPU_TFLOPS_BY_YEAR = {
    2004: 0.05, 2005: 0.17, 2006: 0.35, 2007: 0.50, 2008: 0.93,
    2009: 1.06, 2010: 1.34, 2011: 1.58, 2012: 3.09, 2013: 4.50,
    2014: 5.07,
}

#: CPU memory price in $/MB (Fig. 1c, jcmit.com).
MEMORY_PRICE_BY_YEAR = {
    2004: 0.176, 2005: 0.112, 2006: 0.088, 2007: 0.037, 2008: 0.015,
    2009: 0.012, 2010: 0.011, 2011: 0.007, 2012: 0.005, 2013: 0.006,
    2014: 0.008,
}

#: NVIDIA GeForce flagship memory size in GB (Fig. 1d, TechPowerUp).
GPU_MEMORY_BY_YEAR = {
    2004: 0.25, 2005: 0.5, 2006: 0.75, 2007: 1.0, 2008: 1.0,
    2009: 1.5, 2010: 1.5, 2011: 3.0, 2012: 4.0, 2013: 6.0,
    2014: 12.0,
}


def render_fig1() -> str:
    """The four trend series as one text table (Fig. 1 a-d)."""
    years = sorted(CPU_CORES_BY_YEAR)
    return render_series(
        "year",
        years,
        {
            "CPU cores": [float(CPU_CORES_BY_YEAR[y]) for y in years],
            "GPU TFLOPS": [GPU_TFLOPS_BY_YEAR[y] for y in years],
            "$/MB": [MEMORY_PRICE_BY_YEAR[y] for y in years],
            "GPU mem (GB)": [GPU_MEMORY_BY_YEAR[y] for y in years],
        },
        title="Fig. 1: computing trends 2004-2014 (per Appendix A sources)",
        fmt="{:.3f}",
    )
