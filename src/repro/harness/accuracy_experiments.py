"""Prediction-step experiments: Figs. 9-13 and Table 4 (Sections 6.3-6.4).

Accuracy numbers (MAE / MNLPD) are real measurements on the synthetic
datasets; running times are wall-clock of this Python implementation
(Table 4 / Fig. 12-13 in the paper are C++/CUDA wall-clock — absolute
values differ, orderings and growth shapes are what we reproduce).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..backend.simulated import SimulatedGpuBackend
from ..baselines.base import BaseForecaster
from ..baselines.gp_offline import PSGPForecaster, VLGPForecaster
from ..baselines.holt_winters import HoltWintersForecaster
from ..baselines.lazy_knn import LazyKNNForecaster
from ..baselines.nystrom_svr import NysSVRForecaster
from ..baselines.sgd_linear import (
    OnlineRRForecaster,
    OnlineSVRForecaster,
    SgdRRForecaster,
    SgdSVRForecaster,
)
from ..core.config import SMiLerConfig
from ..core.smiler import SMiLer
from ..gp.sparse import ProjectedSparseGP
from ..gpu.costmodel import DeviceSpec
from ..metrics.errors import mae
from ..timeseries.datasets import DATASET_NAMES, make_dataset
from ..timeseries.generators import POINTS_PER_DAY
from ..timeseries.series import segment_matrix
from .reporting import format_seconds, render_series, render_table
from .runner import RunResult, SMiLerForecaster, run_continuous

__all__ = [
    "AccuracyScale",
    "smiler_config",
    "offline_competitors",
    "online_competitors",
    "AccuracyResult",
    "run_accuracy",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "Table4Result",
    "run_table4",
    "Fig12Result",
    "run_fig12",
    "Fig13Result",
    "run_fig13",
]


@dataclass(frozen=True)
class AccuracyScale:
    """Workload size for the prediction experiments.

    Paper scale: 200-step continuous prediction over 1000 held-out points
    per sensor, h up to 30.  Defaults are laptop scale; benchmarks raise
    them.
    """

    n_sensors: int = 2
    n_points: int = 3000
    test_points: int = 80
    steps: int = 60
    horizons: tuple[int, ...] = (1, 5, 10)
    seed: int = 0
    segment_length: int = 64  # the d used by fixed-d competitors
    datasets: tuple[str, ...] = DATASET_NAMES


def smiler_config(
    scale: AccuracyScale,
    predictor: str = "gp",
    ensemble: bool = True,
    self_adaptive: bool = True,
) -> SMiLerConfig:
    """Paper-default SMiLer configuration at the experiment's horizons."""
    return SMiLerConfig(
        horizons=scale.horizons,
        predictor=predictor,
        ensemble=ensemble,
        self_adaptive=self_adaptive,
    )


def offline_competitors(scale: AccuracyScale) -> list[Callable[[], BaseForecaster]]:
    """Factories for the offline (eager) group of Fig. 9 / Table 4."""
    d, hs = scale.segment_length, scale.horizons
    return [
        lambda: PSGPForecaster(
            segment_length=d, horizons=hs, n_support=32,
            train_iters=20, max_train=800,
        ),
        lambda: VLGPForecaster(
            segment_length=d, horizons=hs, n_support=32,
            train_iters=20, max_train=800,
        ),
        lambda: NysSVRForecaster(segment_length=d, horizons=hs, rank=128),
        lambda: SgdSVRForecaster(segment_length=d, horizons=hs),
        lambda: SgdRRForecaster(segment_length=d, horizons=hs),
    ]


def online_competitors(scale: AccuracyScale) -> list[Callable[[], BaseForecaster]]:
    """Factories for the online group of Fig. 10 / Table 4."""
    d, hs = scale.segment_length, scale.horizons
    period = POINTS_PER_DAY
    return [
        lambda: LazyKNNForecaster(segment_length=d, k=32, rho=8),
        lambda: HoltWintersForecaster(period=period, refit_every=4),
        lambda: HoltWintersForecaster(
            period=period, window=10 * period, refit_every=4
        ),
        lambda: OnlineSVRForecaster(segment_length=d, horizons=hs),
        lambda: OnlineRRForecaster(segment_length=d, horizons=hs),
    ]


def smiler_factories(scale: AccuracyScale) -> list[Callable[[], BaseForecaster]]:
    """Factories for SMiLer-GP and SMiLer-AR at this scale."""
    return [
        lambda: SMiLerForecaster(smiler_config(scale, predictor="gp")),
        lambda: SMiLerForecaster(smiler_config(scale, predictor="ar")),
    ]


# --------------------------------------------------------------------------
# Figs. 9 / 10 / 11: MAE + MNLPD vs horizon
# --------------------------------------------------------------------------


@dataclass
class AccuracyResult:
    """Per-dataset MAE and MNLPD series over horizons, per method."""

    title: str
    horizons: tuple[int, ...]
    #: ``mae_series[dataset][method] = [mae at each horizon]``
    mae_series: dict[str, dict[str, list[float]]]
    mnlpd_series: dict[str, dict[str, list[float]]]
    runs: dict[str, list[RunResult]] = field(default_factory=dict, repr=False)

    def render(self) -> str:
        """Render this result as an aligned text table."""
        blocks = []
        for dataset in self.mae_series:
            blocks.append(
                render_series(
                    "h", list(self.horizons), self.mae_series[dataset],
                    title=f"{self.title} — MAE on {dataset}",
                )
            )
            blocks.append(
                render_series(
                    "h", list(self.horizons), self.mnlpd_series[dataset],
                    title=f"{self.title} — MNLPD on {dataset}",
                )
            )
        return "\n\n".join(blocks)

    def method_mae(self, dataset: str, method: str) -> np.ndarray:
        """MAE series of one method on one dataset."""
        return np.asarray(self.mae_series[dataset][method])

    def method_mnlpd(self, dataset: str, method: str) -> np.ndarray:
        """MNLPD series of one method on one dataset."""
        return np.asarray(self.mnlpd_series[dataset][method])


def run_accuracy(
    factories: list[Callable[[], BaseForecaster]],
    scale: AccuracyScale,
    title: str,
) -> AccuracyResult:
    """Continuous prediction for every (dataset, sensor, method)."""
    mae_series: dict[str, dict[str, list[float]]] = {}
    mnlpd_series: dict[str, dict[str, list[float]]] = {}
    all_runs: dict[str, list[RunResult]] = {}
    for dataset in scale.datasets:
        ds = make_dataset(
            dataset, n_sensors=scale.n_sensors, n_points=scale.n_points,
            test_points=scale.test_points, seed=scale.seed,
        )
        per_method_runs: dict[str, list[RunResult]] = {}
        for factory in factories:
            for sensor in range(ds.n_sensors):
                history, tail = ds.sensor(sensor)
                forecaster = factory()
                result = run_continuous(
                    forecaster, history.values, tail,
                    horizons=scale.horizons, n_steps=scale.steps,
                )
                per_method_runs.setdefault(result.method, []).append(result)
        mae_series[dataset] = {}
        mnlpd_series[dataset] = {}
        for method, runs in per_method_runs.items():
            mae_series[dataset][method] = [
                float(np.mean([r.horizons[h].mae for r in runs]))
                for h in scale.horizons
            ]
            mnlpd_series[dataset][method] = [
                float(np.mean([r.horizons[h].mnlpd for r in runs]))
                for h in scale.horizons
            ]
            all_runs.setdefault(method, []).extend(runs)
    return AccuracyResult(
        title=title, horizons=scale.horizons,
        mae_series=mae_series, mnlpd_series=mnlpd_series, runs=all_runs,
    )


def run_fig9(scale: AccuracyScale | None = None) -> AccuracyResult:
    """Fig. 9: SMiLer vs the offline learning models."""
    scale = scale or AccuracyScale()
    return run_accuracy(
        smiler_factories(scale) + offline_competitors(scale),
        scale,
        "Fig. 9 (offline models)",
    )


def run_fig10(scale: AccuracyScale | None = None) -> AccuracyResult:
    """Fig. 10: SMiLer vs the online learning models."""
    scale = scale or AccuracyScale()
    return run_accuracy(
        smiler_factories(scale) + online_competitors(scale),
        scale,
        "Fig. 10 (online models)",
    )


def run_fig11(scale: AccuracyScale | None = None) -> AccuracyResult:
    """Fig. 11: auto-tuning ablation (full vs NE vs NS, GP and AR)."""
    scale = scale or AccuracyScale()
    factories = []
    for predictor in ("gp", "ar"):
        factories.extend(
            [
                lambda p=predictor: SMiLerForecaster(smiler_config(scale, p)),
                lambda p=predictor: SMiLerForecaster(
                    smiler_config(scale, p, ensemble=False)
                ),
                lambda p=predictor: SMiLerForecaster(
                    smiler_config(scale, p, self_adaptive=False)
                ),
            ]
        )
    return run_accuracy(factories, scale, "Fig. 11 (auto-tuning ablation)")


# --------------------------------------------------------------------------
# Table 4: running time comparison
# --------------------------------------------------------------------------


@dataclass
class Table4Result:
    """Training and prediction wall time per dataset and method."""

    #: ``data[dataset][method] = (train_seconds_total, predict_s_per_query)``
    data: dict[str, dict[str, tuple[float, float]]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        methods: list[str] = []
        for per_dataset in self.data.values():
            for method in per_dataset:
                if method not in methods:
                    methods.append(method)
        headers = ["method"]
        for dataset in self.data:
            headers.extend([f"{dataset} trn", f"{dataset} prd"])
        rows = []
        for method in methods:
            row = [method]
            for dataset in self.data:
                trn, prd = self.data[dataset].get(method, (np.nan, np.nan))
                row.extend([format_seconds(trn), format_seconds(prd)])
            rows.append(row)
        return render_table(
            headers, rows,
            title="Table 4: running time (wall-clock; trn = total training "
            "for all sensors, prd = per sensor per query)",
        )


def run_table4(scale: AccuracyScale | None = None) -> Table4Result:
    """Training + prediction time for all twelve methods."""
    scale = scale or AccuracyScale()
    factories = (
        smiler_factories(scale)
        + online_competitors(scale)
        + offline_competitors(scale)
    )
    data: dict[str, dict[str, tuple[float, float]]] = {}
    for dataset in scale.datasets:
        ds = make_dataset(
            dataset, n_sensors=scale.n_sensors, n_points=scale.n_points,
            test_points=scale.test_points, seed=scale.seed,
        )
        per_method: dict[str, tuple[float, float]] = {}
        for factory in factories:
            fit_total = 0.0
            predict_times = []
            method = None
            for sensor in range(ds.n_sensors):
                history, tail = ds.sensor(sensor)
                forecaster = factory()
                result = run_continuous(
                    forecaster, history.values, tail,
                    horizons=(min(scale.horizons),), n_steps=scale.steps,
                )
                method = result.method
                # SMiLer has no training phase — the paper reports "-".
                if getattr(forecaster, "is_offline", False):
                    fit_total += result.fit_seconds
                predict_times.append(result.predict_seconds_per_query)
            per_method[method] = (fit_total, float(np.mean(predict_times)))
        data[dataset] = per_method
    return Table4Result(data=data)


# --------------------------------------------------------------------------
# Fig. 12: scalability of SMiLer
# --------------------------------------------------------------------------


@dataclass
class Fig12Result:
    """(a)(b) per-step time; (c) max sensors per 6 GB GPU."""

    #: ``step_times[dataset][predictor] = (search_sim_s, predict_wall_s)``
    step_times: dict[str, dict[str, tuple[float, float]]]
    #: ``capacity[dataset] = max sensors on one 6 GB device``
    capacity: dict[str, int]
    points_per_sensor: int

    def render(self) -> str:
        """Render this result as an aligned text table."""
        rows = []
        for dataset, per_pred in self.step_times.items():
            for predictor, (search_s, predict_s) in per_pred.items():
                rows.append(
                    [dataset, predictor, format_seconds(search_s),
                     format_seconds(predict_s)]
                )
        block_a = render_table(
            ["dataset", "predictor", "search (sim device)", "step wall (search+predict)"],
            rows,
            title="Fig. 12(a)(b): per-step cost, all sensors",
        )
        block_c = render_table(
            ["dataset", "max sensors per 6GB GPU"],
            [[d, c] for d, c in self.capacity.items()],
            title=(
                f"Fig. 12(c): capacity at {self.points_per_sensor} points "
                "per sensor (one year of history)"
            ),
        )
        return block_a + "\n\n" + block_c


def index_memory_bytes(
    n_points: int, config: SMiLerConfig | None = None
) -> int:
    """Analytic device footprint of one sensor's SMiLer Index.

    Series + envelope + the two window-level posting matrices — the
    ``O(n M)`` of Section 6.4.1.
    """
    config = config or SMiLerConfig()
    n_sw = config.master_length - config.omega + 1
    n_dw = n_points // config.omega
    return 8 * (n_points + 2 * n_points + 2 * n_sw * n_dw)


def run_fig12(
    scale: AccuracyScale | None = None,
    points_per_sensor: int = 52_560,
) -> Fig12Result:
    """Per-step cost of SMiLer-AR / SMiLer-GP + device capacity."""
    scale = scale or AccuracyScale()
    step_times: dict[str, dict[str, tuple[float, float]]] = {}
    capacity: dict[str, int] = {}
    spec = DeviceSpec()
    for dataset in scale.datasets:
        ds = make_dataset(
            dataset, n_sensors=scale.n_sensors, n_points=scale.n_points,
            test_points=scale.test_points, seed=scale.seed,
        )
        step_times[dataset] = {}
        for predictor in ("ar", "gp"):
            config = smiler_config(scale, predictor=predictor)
            search_sim = 0.0
            predict_wall = 0.0
            steps = min(scale.steps, scale.test_points)
            for sensor in range(ds.n_sensors):
                history, tail = ds.sensor(sensor)
                # Paper figures need the cost model: pin the simulated backend
                # regardless of the process-default backend.
                smiler = SMiLer(
                    history.values, config,
                    backend=SimulatedGpuBackend(),
                )
                before_sim = smiler.backend.elapsed_s
                t0 = time.perf_counter()
                for point in tail[:steps]:
                    smiler.predict(horizon=min(scale.horizons))
                    smiler.observe(float(point))
                predict_wall += time.perf_counter() - t0
                search_sim += smiler.backend.elapsed_s - before_sim
            step_times[dataset][f"SMiLer-{predictor.upper()}"] = (
                search_sim / steps,
                predict_wall / steps,
            )
        per_sensor = index_memory_bytes(points_per_sensor)
        capacity[dataset] = int(spec.memory_bytes // per_sensor)
    return Fig12Result(
        step_times=step_times, capacity=capacity,
        points_per_sensor=points_per_sensor,
    )


# --------------------------------------------------------------------------
# Fig. 13: PSGP active points vs SMiLer-GP
# --------------------------------------------------------------------------


@dataclass
class Fig13Result:
    """PSGP cost/accuracy sweep against the flat SMiLer-GP reference."""

    active_points: tuple[int, ...]
    #: ``psgp[dataset] = (train_seconds per m, mae per m)``
    psgp: dict[str, tuple[list[float], list[float]]]
    smiler_mae: dict[str, float]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        blocks = []
        for dataset, (times, maes) in self.psgp.items():
            series = {
                "PSGP train (s)": times,
                "PSGP MAE": maes,
                "SMiLer-GP MAE": [self.smiler_mae[dataset]] * len(times),
            }
            blocks.append(
                render_series(
                    "active points", list(self.active_points), series,
                    title=f"Fig. 13 ({dataset}): PSGP trade-off vs SMiLer-GP",
                )
            )
        return "\n\n".join(blocks)


def run_fig13(
    scale: AccuracyScale | None = None,
    active_points: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
) -> Fig13Result:
    """Sweep PSGP's active points; compare cost and MAE to SMiLer-GP."""
    scale = scale or AccuracyScale()
    h = min(scale.horizons)
    psgp: dict[str, tuple[list[float], list[float]]] = {}
    smiler_mae: dict[str, float] = {}
    for dataset in scale.datasets:
        ds = make_dataset(
            dataset, n_sensors=scale.n_sensors, n_points=scale.n_points,
            test_points=scale.test_points, seed=scale.seed,
        )
        times: list[float] = []
        maes: list[float] = []
        for m in active_points:
            t_total, errors = 0.0, []
            for sensor in range(ds.n_sensors):
                history, tail = ds.sensor(sensor)
                x, y, _ = segment_matrix(history.values, scale.segment_length, h)
                t0 = time.perf_counter()
                model = ProjectedSparseGP(n_active=m, train_iters=20, seed=sensor)
                model.fit(x, y)
                t_total += time.perf_counter() - t0
                stream = list(history.values)
                for i in range(min(scale.steps, tail.size - h)):
                    segment = np.asarray(stream[-scale.segment_length :])
                    mean, _ = model.predict(segment[None, :])
                    errors.append(abs(float(mean[0]) - float(tail[i + h - 1])))
                    stream.append(float(tail[i]))
            times.append(t_total / scale.n_sensors)
            maes.append(float(np.mean(errors)))
        psgp[dataset] = (times, maes)

        smiler_errors = []
        for sensor in range(ds.n_sensors):
            history, tail = ds.sensor(sensor)
            forecaster = SMiLerForecaster(smiler_config(scale, predictor="gp"))
            result = run_continuous(
                forecaster, history.values, tail, horizons=(h,),
                n_steps=scale.steps,
            )
            smiler_errors.append(result.horizons[h].mae)
        smiler_mae[dataset] = float(np.mean(smiler_errors))
    return Fig13Result(
        active_points=tuple(active_points), psgp=psgp, smiler_mae=smiler_mae
    )
