"""Search-step experiments: Table 3, Fig. 7 and Fig. 8 (Section 6.2).

All timings are *simulated* device seconds from the cost model (see
DESIGN.md's substitution table): the comparisons in these experiments are
driven by operation counts and parallel occupancy, which the model
accounts exactly, so winners and approximate ratios mirror the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..dtw.knn import fast_cpu_scan
from ..backend.simulated import SimulatedGpuBackend
from ..gpu.costmodel import CpuCostModel
from ..gpu.costmodel import DeviceSpec
from ..gpu.kernels import OPS_PER_DTW_CELL, OPS_PER_LB_TERM
from ..gpu.scan import fast_gpu_scan, gpu_scan
from ..index.direct import direct_lb_en
from ..index.suffix_search import SuffixKnnEngine, SuffixSearchConfig
from ..timeseries.datasets import DATASET_NAMES, make_dataset
from .reporting import format_seconds, render_series, render_table

__all__ = [
    "SearchScale",
    "Table3Result",
    "run_table3",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
]


@dataclass(frozen=True)
class SearchScale:
    """Workload size for the search experiments (paper scale is ~60M
    points over ~1000 sensors; defaults are laptop scale).

    ``launch_overhead_s`` defaults to zero here: the real system packs
    *all* sensors' work into each kernel launch ("we only need to create
    multiple SMiLer Indexes and invoke more blocks", Section 4.4), so
    per-sensor-per-step launch overhead amortizes to noise; our drivers
    loop per sensor, which would otherwise charge it hundreds of times.
    """

    n_sensors: int = 3
    n_points: int = 4000
    continuous_steps: int = 10
    seed: int = 0
    item_lengths: tuple[int, ...] = (32, 64, 96)
    omega: int = 16
    rho: int = 8
    launch_overhead_s: float = 0.0

    def backend(self) -> SimulatedGpuBackend:
        """A fresh simulated backend in the batched-fleet regime."""
        return SimulatedGpuBackend(
            spec=DeviceSpec(
                launch_overhead_s=self.launch_overhead_s, work_conserving=True
            )
        )


def _sensor_streams(dataset: str, scale: SearchScale) -> list[np.ndarray]:
    ds = make_dataset(
        dataset,
        n_sensors=scale.n_sensors,
        n_points=scale.n_points + scale.continuous_steps,
        test_points=scale.continuous_steps,
        seed=scale.seed,
    )
    return [
        (history.values, tail)
        for history, tail in (ds.sensor(i) for i in range(ds.n_sensors))
    ]


# --------------------------------------------------------------------------
# Table 3: effect of the enhanced lower bound LB_en
# --------------------------------------------------------------------------


@dataclass
class Table3Result:
    """Per dataset and LB mode: verification time + unfiltered candidates."""

    #: ``data[dataset][mode] = (verify_sim_seconds_total, avg_unfiltered)``
    data: dict[str, dict[str, tuple[float, float]]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        rows = []
        for mode in ("eq", "ec", "en"):
            row = [f"LB_{mode.upper()}" if mode != "en" else "LB_en"]
            for dataset in DATASET_NAMES:
                t, n = self.data[dataset][mode]
                row.extend([format_seconds(t), f"{n:.0f}"])
            rows.append(row)
        headers = ["bound"]
        for dataset in DATASET_NAMES:
            headers.extend([f"{dataset} time", f"{dataset} number"])
        return render_table(
            headers, rows,
            title="Table 3: effect of the enhanced lower bound LB_en "
            "(simulated verify time; unfiltered candidates per query per sensor)",
        )


def run_table3(scale: SearchScale | None = None) -> Table3Result:
    """Continuous Suffix kNN Search under each bound variant."""
    scale = scale or SearchScale()
    data: dict[str, dict[str, tuple[float, float]]] = {}
    for dataset in DATASET_NAMES:
        streams = _sensor_streams(dataset, scale)
        data[dataset] = {}
        for mode in ("eq", "ec", "en"):
            total_time = 0.0
            total_unfiltered = 0
            total_queries = 0
            for history, tail in streams:
                config = SuffixSearchConfig(
                    item_lengths=scale.item_lengths,
                    k_max=32,
                    omega=scale.omega,
                    rho=scale.rho,
                    margin=1,
                    lb_mode=mode,
                )
                engine = SuffixKnnEngine(history, config, backend=scale.backend())
                engine.search()
                for point in tail:
                    answers = engine.step(float(point))
                    for answer in answers.values():
                        total_time += answer.verification_sim_s
                        total_unfiltered += answer.candidates_unfiltered
                        total_queries += 1
            data[dataset][mode] = (
                total_time,
                total_unfiltered / max(total_queries, 1),
            )
    return Table3Result(data=data)


# --------------------------------------------------------------------------
# Fig. 7: Suffix kNN Search running time vs k
# --------------------------------------------------------------------------


@dataclass
class Fig7Result:
    """``times[dataset][method] = [seconds per step for each k]``."""

    ks: tuple[int, ...]
    times: dict[str, dict[str, list[float]]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        blocks = []
        for dataset, series in self.times.items():
            blocks.append(
                render_series(
                    "k", list(self.ks), series,
                    title=(
                        f"Fig. 7 ({dataset}): Suffix kNN Search time per "
                        "continuous step, all sensors (simulated seconds)"
                    ),
                    fmt="{:.6f}",
                )
            )
        return "\n\n".join(blocks)

    def speedup_over(self, dataset: str, method: str, baseline: str) -> float:
        """Geometric-mean speedup of ``method`` over ``baseline``."""
        a = np.asarray(self.times[dataset][method])
        b = np.asarray(self.times[dataset][baseline])
        return float(np.exp(np.mean(np.log(b / a))))


def _direct_suffix_knn(
    backend: SimulatedGpuBackend,
    master: np.ndarray,
    series: np.ndarray,
    item_lengths: tuple[int, ...],
    rho: int,
    k: int,
) -> None:
    """SMiLer-Dir: direct LB_en filter + verification, no index reuse."""
    bounds = direct_lb_en(backend, master, series, item_lengths, rho)
    segments_cache = {}
    for d, lb in bounds.items():
        query = master[master.size - d :]
        starts = np.arange(series.size - d - 1 + 1)
        lb = lb[starts]
        if d not in segments_cache:
            segments_cache[d] = sliding_window_view(series, d)
        segments = segments_cache[d]
        pool = min(max(4 * k, 64), starts.size)
        seeds = starts[np.argpartition(lb, pool - 1)[:pool]]
        seed_distances = backend.dtw_verification(query, segments[seeds], rho)
        tau = float(np.partition(seed_distances, min(k, pool) - 1)[min(k, pool) - 1])
        unfiltered = starts[lb <= tau + 1e-12]
        to_verify = np.setdiff1d(unfiltered, seeds)
        distances = backend.dtw_verification(query, segments[to_verify], rho)
        merged = np.concatenate([seed_distances, distances])
        backend.k_select(merged, min(k, merged.size))


def run_fig7(
    scale: SearchScale | None = None,
    ks: tuple[int, ...] = (16, 32, 64, 128),
    scan_steps: int = 1,
) -> Fig7Result:
    """All five methods, per dataset, per k.

    The scan baselines redo identical work every step (no reuse), so
    their per-step cost is measured over ``scan_steps`` steps only; the
    index is measured over the full continuous run because its reuse
    needs a warmed threshold.
    """
    scale = scale or SearchScale()
    scan_steps = max(1, min(scan_steps, scale.continuous_steps))
    times: dict[str, dict[str, list[float]]] = {}
    for dataset in DATASET_NAMES:
        streams = _sensor_streams(dataset, scale)
        methods = {
            name: [] for name in (
                "SMiLer-Idx", "SMiLer-Dir", "FastGPUScan", "GPUScan",
                "FastCPUScan",
            )
        }
        for k in ks:
            # --- SMiLer-Idx: continuous reuse --------------------------------
            device = scale.backend()
            step_time = 0.0
            for history, tail in streams:
                config = SuffixSearchConfig(
                    item_lengths=scale.item_lengths, k_max=k,
                    omega=scale.omega, rho=scale.rho, margin=1,
                )
                engine = SuffixKnnEngine(history, config, backend=device)
                engine.search()  # warm-up build (not part of per-step cost)
                before = device.elapsed_s
                for point in tail:
                    engine.step(float(point))
                step_time += device.elapsed_s - before
            methods["SMiLer-Idx"].append(step_time / scale.continuous_steps)

            # --- SMiLer-Dir, scans: no reuse, every step from scratch --------
            dir_device = scale.backend()
            fgpu_device = scale.backend()
            gpu_device = scale.backend()
            cpu = CpuCostModel()
            for history, tail in streams:
                stream = np.asarray(history, dtype=np.float64)
                for point in tail[:scan_steps]:
                    stream = np.append(stream, float(point))
                    master = stream[-max(scale.item_lengths) :]
                    _direct_suffix_knn(
                        dir_device, master, stream, scale.item_lengths,
                        scale.rho, k,
                    )
                    for d in scale.item_lengths:
                        query = stream[-d:]
                        body = stream[: stream.size - 1]
                        fast_gpu_scan(fgpu_device, query, body, k, scale.rho)
                        gpu_scan(gpu_device, query, body, k)
                        result = fast_cpu_scan(query, body, k, scale.rho)
                        cpu.execute(
                            result.stats.lb_positions * OPS_PER_LB_TERM
                            + result.stats.dtw_cells * OPS_PER_DTW_CELL
                        )
            denom = scan_steps
            methods["SMiLer-Dir"].append(dir_device.elapsed_s / denom)
            methods["FastGPUScan"].append(fgpu_device.elapsed_s / denom)
            methods["GPUScan"].append(gpu_device.elapsed_s / denom)
            methods["FastCPUScan"].append(cpu.elapsed_s / denom)
        times[dataset] = methods
    return Fig7Result(ks=tuple(ks), times=times)


# --------------------------------------------------------------------------
# Fig. 8: time to compute LB_en — index vs direct
# --------------------------------------------------------------------------


@dataclass
class Fig8Result:
    """``times[dataset] = (index_seconds_per_step, direct_seconds_per_step)``."""

    times: dict[str, tuple[float, float]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        rows = [
            [dataset, format_seconds(idx), format_seconds(direct),
             f"{direct / idx:.1f}x"]
            for dataset, (idx, direct) in self.times.items()
        ]
        return render_table(
            ["dataset", "SMiLer-Idx", "SMiLer-Dir", "speedup"],
            rows,
            title="Fig. 8: time to compute LB_en for all sensors "
            "(simulated seconds per continuous step)",
        )


def run_fig8(scale: SearchScale | None = None) -> Fig8Result:
    """Lower-bound computation only: two-level index vs direct scan."""
    scale = scale or SearchScale()
    times: dict[str, tuple[float, float]] = {}
    lb_kernels = ("window_index_build", "window_index_step", "group_index_sum")
    for dataset in DATASET_NAMES:
        streams = _sensor_streams(dataset, scale)
        index_device = scale.backend()
        direct_device = scale.backend()
        index_time = 0.0

        def _lb_time() -> float:
            return sum(
                index_device.cost.per_kernel_s.get(kn, 0.0) for kn in lb_kernels
            )

        for history, tail in streams:
            config = SuffixSearchConfig(
                item_lengths=scale.item_lengths, k_max=32,
                omega=scale.omega, rho=scale.rho, margin=1,
            )
            engine = SuffixKnnEngine(history, config, backend=index_device)
            engine.search()
            before = _lb_time()
            stream = np.asarray(history, dtype=np.float64)
            for point in tail:
                engine.step(float(point))
                stream = np.append(stream, float(point))
                master = stream[-max(scale.item_lengths) :]
                direct_lb_en(
                    direct_device, master, stream, scale.item_lengths, scale.rho
                )
            index_time += _lb_time() - before
        times[dataset] = (
            index_time / scale.continuous_steps,
            direct_device.elapsed_s / scale.continuous_steps,
        )
    return Fig8Result(times=times)
