"""Plain-text rendering of experiment tables and figure series.

The paper's figures are line plots; offline we regenerate each one as an
aligned text table (one row per x-value, one column per method) so the
*shape* — who wins, by what factor, where curves cross — is readable in
the benchmark output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-friendly duration: ns/us/ms/s as appropriate."""
    if seconds < 0:
        raise ValueError(f"durations must be non-negative, got {seconds}")
    if seconds == 0:
        return "0s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    if seconds < 2 * 3600:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.2f}h"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with right-aligned numeric-ish columns."""
    if not headers:
        raise ValueError("headers must not be empty")
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        cells.append([_format_cell(c) for c in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    fmt: str = "{:.4f}",
) -> str:
    """A figure-as-table: x down the rows, one column per labelled series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x-values"
            )
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(fmt.format(series[name][i]) for name in series)])
    return render_table(headers, rows, title=title)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
