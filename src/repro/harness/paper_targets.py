"""The paper's reported numbers, machine-readable.

Everything Section 6 reports that our benchmarks compare shapes against,
transcribed from the published tables and (for figures) read off the
plots to the precision the print allows.  EXPERIMENTS.md and the
benchmark assertions reference these targets so "the paper says"
is greppable, testable and in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE2_DEFAULTS",
    "TABLE3_PAPER",
    "TABLE4_PAPER",
    "FIG7_PAPER_SPEEDUPS",
    "FIG13_PAPER_SHAPE",
    "CAPACITY_PAPER",
    "table3_ratios",
]

#: Table 2: default experiment parameters.
TABLE2_DEFAULTS = {
    "rho": 8,
    "omega": 16,
    "elv": (32, 64, 96),
    "ekv": (8, 16, 32),
}

#: Table 3: verification time (s) and unfiltered candidates per query
#: per sensor, per bound and dataset.
TABLE3_PAPER = {
    "ROAD": {"eq": (2.30, 12558), "ec": (1.55, 9206), "en": (1.11, 6739)},
    "MALL": {"eq": (1.12, 6632), "ec": (0.94, 5707), "en": (0.63, 3677)},
    "NET": {"eq": (0.11, 753), "ec": (0.11, 725), "en": (0.079, 516)},
}


def table3_ratios(dataset: str) -> dict[str, float]:
    """Paper's filtering-improvement ratios: LB_eq/LB_en and LB_ec/LB_en."""
    row = TABLE3_PAPER[dataset]
    return {
        "eq_over_en": row["eq"][1] / row["en"][1],
        "ec_over_en": row["ec"][1] / row["en"][1],
    }


#: Table 4: (training hours total, prediction ms per sensor per query)
#: on ROAD.  "-" (no training phase) is encoded as 0.0.
TABLE4_PAPER = {
    "SMiLer-GP": (0.0, 27.59),
    "SMiLer-AR": (0.0, 1.48),
    "FullHW": (0.0, 724.87),
    "SegHW": (0.0, 58.52),
    "LazyKNN": (0.0, 0.63),
    "PSGP": (1.8e3, 0.037),
    "VLGP": (198.4, 0.0068),
    "NysSVR": (95.3, 0.0085),
    "SgdSVR": (2.2, 2.1e-4),
    "SgdRR": (13.5, 2.7e-4),
    "OnlineSVR": (0.6, 2.4e-4),
    "OnlineRR": (2.4, 2.7e-4),
}

#: Fig. 7 (read off the log-scale plots): approximate per-step times in
#: seconds for all sensors on ROAD, and the headline speedups.
FIG7_PAPER_SPEEDUPS = {
    "SMiLer-Idx_seconds": 1.0,
    "FastGPUScan_seconds": 10.0,
    "FastCPUScan_seconds": 500.0,
    "idx_over_fastgpu": 10.0,
    "idx_over_fastcpu": 500.0,
}

#: Fig. 13 shape anchors on ROAD: active points -> (train seconds per
#: sensor, approximate MAE), with SMiLer-GP's MAE line at ~0.16.
FIG13_PAPER_SHAPE = {
    "active_points": (4, 8, 16, 32, 64, 128),
    "train_seconds": (200, 500, 1200, 3000, 8000, 18000),
    "mae": (0.55, 0.42, 0.30, 0.22, 0.20, 0.19),
    "smiler_gp_mae": 0.16,
}

#: Fig. 12(c): max sensors per 6 GB GPU with ~1 year of history.
CAPACITY_PAPER = {"ROAD": 1000, "MALL": 1100, "NET": 3300}


@dataclass(frozen=True)
class ShapeCheck:
    """A qualitative claim with its provenance, for EXPERIMENTS.md."""

    claim: str
    source: str


#: The qualitative claims the benchmarks assert, with their paper homes.
SHAPE_CHECKS = (
    ShapeCheck("LB_en filters more than LB_EQ and LB_EC on every dataset",
               "Table 3"),
    ShapeCheck("SMiLer-Idx ~10x FastGPUScan, >>100x FastCPUScan; stable in k",
               "Fig. 7 + Section 6.2.2"),
    ShapeCheck("Two-level index >>10x over direct LB_en computation",
               "Fig. 8"),
    ShapeCheck("SMiLer-GP leads the eager group on MAE; low-rank GPs trail",
               "Fig. 9"),
    ShapeCheck("SMiLer-GP's MNLPD far better than SMiLer-AR/LazyKNN on ROAD",
               "Fig. 10"),
    ShapeCheck("Full ensemble beats NE and NS ablations",
               "Fig. 11"),
    ShapeCheck("SMiLer trains nothing; eager models pay hours",
               "Table 4"),
    ShapeCheck("~1000 one-year sensors fit one 6 GB GPU",
               "Fig. 12(c) + Section 6.4.1"),
    ShapeCheck("PSGP cost explodes in active points while MAE saturates "
               "above SMiLer-GP's",
               "Fig. 13"),
)
