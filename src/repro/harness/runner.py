"""Continuous-prediction evaluation runner (Section 6.3.1 protocol).

The paper's protocol: cut a tail segment off each sensor, then walk it
step by step — predict h steps ahead for every horizon, reveal the true
value, let online models update, repeat.  The runner drives anything
that speaks the :class:`~repro.baselines.base.BaseForecaster` protocol;
:class:`SMiLerForecaster` adapts the SMiLer system to it so all twelve
methods are scored identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..backend.base import ComputeBackend
from ..baselines.base import BaseForecaster
from ..core.config import SMiLerConfig
from ..core.smiler import SMiLer
from ..metrics.errors import mae, mnlpd, rmse

__all__ = ["SMiLerForecaster", "HorizonScores", "RunResult", "run_continuous"]


class SMiLerForecaster(BaseForecaster):
    """Adapter: a SMiLer instance behind the common forecaster protocol.

    SMiLer tracks its own stream (the search index owns the history), so
    ``context`` is only used for sanity checking.
    """

    is_offline = False

    def __init__(
        self, config: SMiLerConfig, backend: ComputeBackend | None = None
    ) -> None:
        self.config = config
        self.backend = backend
        self.name = "SMiLer-GP" if config.predictor == "gp" else "SMiLer-AR"
        if not config.ensemble:
            self.name += " (NE)"
        elif not config.self_adaptive:
            self.name += " (NS)"
        self._smiler: SMiLer | None = None

    @property
    def smiler(self) -> SMiLer:
        """The wrapped SMiLer instance (requires fit())."""
        if self._smiler is None:
            raise RuntimeError("fit() must be called first")
        return self._smiler

    def fit(self, history: np.ndarray) -> "SMiLerForecaster":
        """Train on the historical stream (see BaseForecaster.fit)."""
        self._smiler = SMiLer(
            np.asarray(history, dtype=np.float64), self.config,
            backend=self.backend,
        )
        return self

    def predict(self, context: np.ndarray, horizon: int) -> tuple[float, float]:
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        output = self.smiler.predict(horizon=horizon)[horizon]
        return output.mean, output.variance

    def observe(self, value: float) -> None:
        """Consume the newly revealed true value (see BaseForecaster.observe)."""
        self.smiler.observe(value)


@dataclass
class HorizonScores:
    """Scores of one method at one horizon."""

    horizon: int
    mae: float
    rmse: float
    mnlpd: float
    n_scored: int


@dataclass
class RunResult:
    """One (method, sensor) continuous-prediction run."""

    method: str
    horizons: dict[int, HorizonScores]
    fit_seconds: float
    predict_seconds_total: float
    n_predictions: int
    predictions: dict[int, list[tuple[float, float, float]]] = field(
        default_factory=dict, repr=False
    )

    @property
    def predict_seconds_per_query(self) -> float:
        """Average wall seconds per prediction call."""
        if self.n_predictions == 0:
            return 0.0
        return self.predict_seconds_total / self.n_predictions


def run_continuous(
    forecaster: BaseForecaster,
    history: np.ndarray,
    tail: np.ndarray,
    horizons: tuple[int, ...] = (1,),
    n_steps: int | None = None,
    keep_predictions: bool = False,
) -> RunResult:
    """Fit on ``history``, then walk ``tail`` scoring every horizon.

    At tail position ``i`` the context is ``history + tail[:i]`` and the
    h-step prediction targets ``tail[i + h - 1]``; only predictions whose
    target lies inside the tail are scored.
    """
    history = np.asarray(history, dtype=np.float64)
    tail = np.asarray(tail, dtype=np.float64)
    horizons = tuple(sorted(set(int(h) for h in horizons)))
    if not horizons or horizons[0] <= 0:
        raise ValueError(f"horizons must be positive, got {horizons}")
    steps = tail.size if n_steps is None else min(n_steps, tail.size)
    if steps <= max(horizons):
        raise ValueError(
            f"need more than {max(horizons)} steps to score horizon "
            f"{max(horizons)}, got {steps}"
        )

    t0 = time.perf_counter()
    forecaster.fit(history)
    fit_seconds = time.perf_counter() - t0

    # records[h] = list of (truth, mean, variance).
    records: dict[int, list[tuple[float, float, float]]] = {h: [] for h in horizons}
    stream = list(history)
    predict_seconds = 0.0
    n_predictions = 0
    for i in range(steps):
        context = np.asarray(stream)
        for h in horizons:
            if i + h - 1 >= steps:
                continue  # target outside the evaluated window
            t0 = time.perf_counter()
            mean, var = forecaster.predict(context, h)
            predict_seconds += time.perf_counter() - t0
            n_predictions += 1
            records[h].append((float(tail[i + h - 1]), mean, max(var, 1e-12)))
        forecaster.observe(float(tail[i]))
        stream.append(float(tail[i]))

    scores = {}
    for h in horizons:
        rows = records[h]
        truth = [r[0] for r in rows]
        means = [r[1] for r in rows]
        variances = [r[2] for r in rows]
        scores[h] = HorizonScores(
            horizon=h,
            mae=mae(truth, means),
            rmse=rmse(truth, means),
            mnlpd=mnlpd(truth, means, variances),
            n_scored=len(rows),
        )
    return RunResult(
        method=forecaster.name,
        horizons=scores,
        fit_seconds=fit_seconds,
        predict_seconds_total=predict_seconds,
        n_predictions=n_predictions,
        predictions=records if keep_predictions else {},
    )
