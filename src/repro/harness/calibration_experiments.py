"""Extension study: how calibrated is each method's uncertainty?

The paper scores predictive uncertainty with MNLPD only (Figs. 9-11).
This extension unpacks that number with the diagnostics of
:mod:`repro.metrics.calibration`: empirical coverage of the 95% band,
mean calibration error across levels, and sharpness.  It is where the
semi-lazy GP's *closed-form posterior* shows up most clearly against
LazyKNN's neighbour-spread pseudo-variance and the AR predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.lazy_knn import LazyKNNForecaster
from ..metrics.calibration import (
    calibration_error,
    interval_coverage,
    sharpness,
)
from ..timeseries.datasets import make_dataset
from .accuracy_experiments import AccuracyScale, smiler_config
from .reporting import render_table
from .runner import SMiLerForecaster, run_continuous

__all__ = ["CalibrationStudy", "run_calibration_study"]


@dataclass
class CalibrationStudy:
    """Per-method coverage/calibration/sharpness on one dataset."""

    dataset: str
    #: ``rows[method] = (coverage95, calibration_error, sharpness, mnlpd)``
    rows: dict[str, tuple[float, float, float, float]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        table = [
            [method, f"{c95:.3f}", f"{ce:.3f}", f"{sh:.3f}", f"{nl:.3f}"]
            for method, (c95, ce, sh, nl) in self.rows.items()
        ]
        return render_table(
            ["method", "coverage@95%", "calib. error", "sharpness", "MNLPD"],
            table,
            title=(
                f"Calibration study on {self.dataset} (extension of the "
                "paper's MNLPD comparison)"
            ),
        )


def run_calibration_study(
    scale: AccuracyScale | None = None,
    dataset: str = "ROAD",
) -> CalibrationStudy:
    """Score coverage/calibration/sharpness for GP, AR and LazyKNN."""
    scale = scale or AccuracyScale(datasets=(dataset,))
    ds = make_dataset(
        dataset, n_sensors=scale.n_sensors, n_points=scale.n_points,
        test_points=scale.test_points, seed=scale.seed,
    )
    h = min(scale.horizons)
    factories = [
        lambda: SMiLerForecaster(smiler_config(scale, "gp")),
        lambda: SMiLerForecaster(smiler_config(scale, "ar")),
        lambda: LazyKNNForecaster(
            segment_length=scale.segment_length, k=32, rho=8
        ),
        lambda: LazyKNNForecaster(
            segment_length=scale.segment_length, k=32, rho=8, bootstrap=64
        ),
    ]
    rows: dict[str, tuple[float, float, float, float]] = {}
    for factory in factories:
        truths: list[float] = []
        means: list[float] = []
        variances: list[float] = []
        mnlpds: list[float] = []
        method = None
        for sensor in range(ds.n_sensors):
            history, tail = ds.sensor(sensor)
            forecaster = factory()
            result = run_continuous(
                forecaster, history.values, tail, horizons=(h,),
                n_steps=scale.steps, keep_predictions=True,
            )
            method = result.method
            mnlpds.append(result.horizons[h].mnlpd)
            for truth, mean, var in result.predictions[h]:
                truths.append(truth)
                means.append(mean)
                variances.append(var)
        rows[method] = (
            interval_coverage(truths, means, variances, level=0.95),
            calibration_error(truths, means, variances),
            sharpness(variances),
            float(np.mean(mnlpds)),
        )
    return CalibrationStudy(dataset=dataset, rows=rows)
