"""Ablation studies for the design decisions DESIGN.md calls out.

Beyond the paper's own Fig. 11 ablation, these drivers isolate the
mechanisms the system leans on:

* :func:`run_warmstart_ablation` — the fixed-5-step warm-started CG of
  Section 5.2.2 versus cold-starting the GP hyperparameters each step,
* :func:`run_threshold_reuse_ablation` — recycling the previous step's
  kNN as the filtering threshold versus re-seeding from lower bounds,
* :func:`run_window_reuse_ablation` — the ring-buffer continuous update
  of Fig. 6 versus rebuilding the window-level index every step,
* :func:`run_parameter_sensitivity` — omega/rho sweeps around the
  paper's Table 2 defaults,
* :func:`run_history_tradeoff` — Section 6.4.1's space/accuracy trade:
  truncated history versus MAE and device capacity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.config import SMiLerConfig
from ..core.scaleout import truncate_history
from ..core.smiler import SMiLer
from ..gpu.costmodel import DeviceSpec
from ..index.suffix_search import SuffixKnnEngine, SuffixSearchConfig
from ..index.window_index import WindowLevelIndex
from ..timeseries.datasets import make_dataset
from .accuracy_experiments import AccuracyScale, index_memory_bytes, smiler_config
from .reporting import format_seconds, render_table
from .runner import SMiLerForecaster, run_continuous
from .search_experiments import SearchScale

__all__ = [
    "WarmstartAblation",
    "run_warmstart_ablation",
    "ThresholdReuseAblation",
    "run_threshold_reuse_ablation",
    "WindowReuseAblation",
    "run_window_reuse_ablation",
    "ParameterSensitivity",
    "run_parameter_sensitivity",
    "HistoryTradeoff",
    "run_history_tradeoff",
]


# --------------------------------------------------------------------------
# Warm-started online GP training
# --------------------------------------------------------------------------


@dataclass
class WarmstartAblation:
    """MAE + wall time of warm-started vs cold-started GP training."""

    warm_mae: float
    cold_mae: float
    warm_seconds_per_query: float
    cold_seconds_per_query: float

    def render(self) -> str:
        """Render this result as an aligned text table."""
        return render_table(
            ["variant", "MAE", "prediction time/query"],
            [
                ["warm-start (5-step CG)", f"{self.warm_mae:.4f}",
                 format_seconds(self.warm_seconds_per_query)],
                ["cold-start (full CG)", f"{self.cold_mae:.4f}",
                 format_seconds(self.cold_seconds_per_query)],
            ],
            title="Ablation: online GP training (Section 5.2.2)",
        )


class _ColdStartForecaster(SMiLerForecaster):
    """SMiLer-GP that re-seeds GP hyperparameters on every prediction."""

    def __init__(self, config: SMiLerConfig) -> None:
        super().__init__(config)
        self.name = "SMiLer-GP (cold)"

    def predict(self, context, horizon):
        """Gaussian h-step-ahead prediction (see BaseForecaster.predict)."""
        for cell in self.smiler.ensemble(horizon).cells:
            predictor = self.smiler.ensemble(horizon).state(cell).predictor
            if hasattr(predictor, "reset"):
                predictor.reset()
        return super().predict(context, horizon)


def run_warmstart_ablation(scale: AccuracyScale | None = None) -> WarmstartAblation:
    """Warm-started 5-step CG vs cold-start full CG (Section 5.2.2)."""
    scale = scale or AccuracyScale(datasets=("ROAD",))
    ds = make_dataset(
        "ROAD", n_sensors=scale.n_sensors, n_points=scale.n_points,
        test_points=scale.test_points, seed=scale.seed,
    )
    h = min(scale.horizons)
    warm_maes, cold_maes = [], []
    warm_times, cold_times = [], []
    for sensor in range(ds.n_sensors):
        history, tail = ds.sensor(sensor)
        # Warm: paper default (initial fit once, 5 CG steps after).
        warm = run_continuous(
            SMiLerForecaster(smiler_config(scale, "gp")),
            history.values, tail, horizons=(h,), n_steps=scale.steps,
        )
        # Cold: every step re-seeds and spends the full initial budget.
        cold = run_continuous(
            _ColdStartForecaster(smiler_config(scale, "gp")),
            history.values, tail, horizons=(h,), n_steps=scale.steps,
        )
        warm_maes.append(warm.horizons[h].mae)
        cold_maes.append(cold.horizons[h].mae)
        warm_times.append(warm.predict_seconds_per_query)
        cold_times.append(cold.predict_seconds_per_query)
    return WarmstartAblation(
        warm_mae=float(np.mean(warm_maes)),
        cold_mae=float(np.mean(cold_maes)),
        warm_seconds_per_query=float(np.mean(warm_times)),
        cold_seconds_per_query=float(np.mean(cold_times)),
    )


# --------------------------------------------------------------------------
# Threshold reuse in the continuous search
# --------------------------------------------------------------------------


@dataclass
class ThresholdReuseAblation:
    """Unfiltered candidates with and without threshold reuse."""

    reuse_unfiltered: float
    fresh_unfiltered: float
    reuse_sim_s: float
    fresh_sim_s: float

    def render(self) -> str:
        """Render this result as an aligned text table."""
        return render_table(
            ["variant", "unfiltered/query", "verify sim time/step"],
            [
                ["previous-kNN threshold", f"{self.reuse_unfiltered:.0f}",
                 format_seconds(self.reuse_sim_s)],
                ["fresh LB-pool threshold", f"{self.fresh_unfiltered:.0f}",
                 format_seconds(self.fresh_sim_s)],
            ],
            title="Ablation: continuous threshold reuse (Section 4.3.3)",
        )


def run_threshold_reuse_ablation(
    scale: SearchScale | None = None,
) -> ThresholdReuseAblation:
    """Previous-kNN threshold vs fresh LB-pool threshold."""
    scale = scale or SearchScale()
    ds = make_dataset(
        "ROAD", n_sensors=scale.n_sensors,
        n_points=scale.n_points + scale.continuous_steps,
        test_points=scale.continuous_steps, seed=scale.seed,
    )
    stats = {}
    for reuse in (True, False):
        total_unfiltered, total_queries, total_sim = 0, 0, 0.0
        for sensor in range(ds.n_sensors):
            history, tail = ds.sensor(sensor)
            config = SuffixSearchConfig(
                item_lengths=scale.item_lengths, k_max=32,
                omega=scale.omega, rho=scale.rho, margin=1,
                reuse_threshold=reuse,
            )
            engine = SuffixKnnEngine(
                history.values, config, backend=scale.backend()
            )
            engine.search()
            for point in tail:
                for answer in engine.step(float(point)).values():
                    total_unfiltered += answer.candidates_unfiltered
                    total_sim += answer.verification_sim_s
                    total_queries += 1
        stats[reuse] = (total_unfiltered / total_queries, total_sim / scale.continuous_steps)
    return ThresholdReuseAblation(
        reuse_unfiltered=stats[True][0],
        fresh_unfiltered=stats[False][0],
        reuse_sim_s=stats[True][1],
        fresh_sim_s=stats[False][1],
    )


# --------------------------------------------------------------------------
# Ring reuse of the window-level index
# --------------------------------------------------------------------------


@dataclass
class WindowReuseAblation:
    """Simulated kernel time: ring update vs full rebuild per step."""

    step_sim_s: float
    rebuild_sim_s: float

    def render(self) -> str:
        """Render this result as an aligned text table."""
        return render_table(
            ["variant", "window-level sim time/step"],
            [
                ["ring update (Fig. 6)", format_seconds(self.step_sim_s)],
                ["full rebuild", format_seconds(self.rebuild_sim_s)],
            ],
            title="Ablation: continuous window-index reuse (Remark 1)",
        )


def run_window_reuse_ablation(
    scale: SearchScale | None = None,
) -> WindowReuseAblation:
    """Ring update (Fig. 6) vs rebuilding the window index per step."""
    scale = scale or SearchScale()
    ds = make_dataset(
        "ROAD", n_sensors=1,
        n_points=scale.n_points + scale.continuous_steps,
        test_points=scale.continuous_steps, seed=scale.seed,
    )
    history, tail = ds.sensor(0)
    master_len = max(scale.item_lengths)

    # Ring updates.
    ring_device = scale.backend()
    ring = WindowLevelIndex(
        history.values, master_len, scale.omega, scale.rho, backend=ring_device
    )
    ring.build(history.values[-master_len:])
    before = ring_device.elapsed_s
    for point in tail:
        ring.step(float(point))
    step_time = (ring_device.elapsed_s - before) / scale.continuous_steps

    # Rebuild from scratch each step.
    rebuild_device = scale.backend()
    stream = np.asarray(history.values, dtype=np.float64)
    before = rebuild_device.elapsed_s
    for point in tail:
        stream = np.append(stream, float(point))
        fresh = WindowLevelIndex(
            stream, master_len, scale.omega, scale.rho, backend=rebuild_device
        )
        fresh.build(stream[-master_len:])
    rebuild_time = (rebuild_device.elapsed_s - before) / scale.continuous_steps
    return WindowReuseAblation(step_sim_s=step_time, rebuild_sim_s=rebuild_time)


# --------------------------------------------------------------------------
# omega / rho sensitivity
# --------------------------------------------------------------------------


@dataclass
class ParameterSensitivity:
    """Search cost and filtering quality around the Table 2 defaults."""

    #: rows: ``(omega, rho, unfiltered/query, sim seconds/step)``
    rows: list[tuple[int, int, float, float]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        return render_table(
            ["omega", "rho", "unfiltered/query", "search sim time/step"],
            [
                [o, r, f"{u:.0f}", format_seconds(t)]
                for o, r, u, t in self.rows
            ],
            title="Ablation: omega/rho sensitivity (Table 2 defaults: 16/8)",
        )


def run_parameter_sensitivity(
    scale: SearchScale | None = None,
    omegas: tuple[int, ...] = (8, 16, 32),
    rhos: tuple[int, ...] = (4, 8, 16),
) -> ParameterSensitivity:
    """Sweep omega/rho around the paper's Table 2 defaults."""
    scale = scale or SearchScale()
    ds = make_dataset(
        "ROAD", n_sensors=1,
        n_points=scale.n_points + scale.continuous_steps,
        test_points=scale.continuous_steps, seed=scale.seed,
    )
    history, tail = ds.sensor(0)
    rows = []
    for omega in omegas:
        for rho in rhos:
            if min(scale.item_lengths) < omega:
                continue
            device = scale.backend()
            config = SuffixSearchConfig(
                item_lengths=scale.item_lengths, k_max=32,
                omega=omega, rho=rho, margin=1,
            )
            engine = SuffixKnnEngine(history.values, config, backend=device)
            engine.search()
            before = device.elapsed_s
            unfiltered, queries = 0, 0
            for point in tail:
                for answer in engine.step(float(point)).values():
                    unfiltered += answer.candidates_unfiltered
                    queries += 1
            rows.append(
                (
                    omega, rho, unfiltered / queries,
                    (device.elapsed_s - before) / scale.continuous_steps,
                )
            )
    return ParameterSensitivity(rows=rows)


# --------------------------------------------------------------------------
# History truncation trade-off
# --------------------------------------------------------------------------


@dataclass
class HistoryTradeoff:
    """MAE and memory against the kept history fraction."""

    #: rows: ``(fraction, mae, memory_bytes, sensors_per_gpu)``
    rows: list[tuple[float, float, int, int]]

    def render(self) -> str:
        """Render this result as an aligned text table."""
        return render_table(
            ["history kept", "MAE", "index bytes/sensor", "sensors/6GB GPU"],
            [
                [f"{f:.0%}", f"{m:.4f}", b, c]
                for f, m, b, c in self.rows
            ],
            title="Ablation: history size vs accuracy vs capacity "
            "(Section 6.4.1 trade-off)",
        )


def run_history_tradeoff(
    scale: AccuracyScale | None = None,
    fractions: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0),
) -> HistoryTradeoff:
    """Accuracy and device capacity vs kept history (Section 6.4.1)."""
    scale = scale or AccuracyScale(datasets=("ROAD",))
    ds = make_dataset(
        "ROAD", n_sensors=scale.n_sensors, n_points=scale.n_points,
        test_points=scale.test_points, seed=scale.seed,
    )
    h = min(scale.horizons)
    spec = DeviceSpec()
    rows = []
    for fraction in fractions:
        maes = []
        memory = 0
        for sensor in range(ds.n_sensors):
            history, tail = ds.sensor(sensor)
            kept = truncate_history(history.values, fraction)
            result = run_continuous(
                SMiLerForecaster(smiler_config(scale, "ar")),
                kept, tail, horizons=(h,), n_steps=scale.steps,
            )
            maes.append(result.horizons[h].mae)
            memory = index_memory_bytes(kept.size)
        capacity = int(spec.memory_bytes // memory)
        rows.append((fraction, float(np.mean(maes)), memory, capacity))
    return HistoryTradeoff(rows=rows)
