"""Extension study: is DTW really the right similarity measure?

Section 4 picks banded DTW over Euclidean, LCSS, ERP and EDR, citing
robustness to shifting/scaling and evidence from [30, 54, 60].  This
driver puts the claim to the test *in SMiLer's own setting*: kNN
forecasting accuracy on the road data when the neighbour retrieval uses
each measure (everything else held fixed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..dtw.distance import dtw_batch
from ..dtw.measures import edr_distance, erp_distance, lcss_distance
from ..timeseries.datasets import make_dataset
from .reporting import render_table

__all__ = ["MeasureComparison", "run_measure_comparison"]


@dataclass
class MeasureComparison:
    """kNN forecasting MAE per similarity measure."""

    dataset: str
    #: ``mae[measure_name]``
    mae: dict[str, float]
    k: int
    segment_length: int

    def render(self) -> str:
        """Render this result as an aligned text table."""
        ranked = sorted(self.mae.items(), key=lambda kv: kv[1])
        return render_table(
            ["measure", "kNN-forecast MAE"],
            [[name, f"{value:.4f}"] for name, value in ranked],
            title=(
                f"Similarity measures on {self.dataset} "
                f"(k={self.k}, d={self.segment_length}; Section 4's choice)"
            ),
        )


def _knn_forecast(
    distances: np.ndarray, targets: np.ndarray, k: int
) -> float:
    nearest = np.argpartition(distances, k - 1)[:k]
    return float(targets[nearest].mean())


def run_measure_comparison(
    n_points: int = 1500,
    steps: int = 20,
    k: int = 8,
    segment_length: int = 32,
    rho: int = 8,
    seed: int = 0,
    dataset: str = "ROAD",
) -> MeasureComparison:
    """kNN forecasting with each measure over ``steps`` continuous steps.

    The slower edit-distance measures run a Python DP per candidate, so
    the scale is deliberately small; the *ranking* is the result.
    """
    ds = make_dataset(dataset, n_sensors=1, n_points=n_points + steps,
                      test_points=steps, seed=seed)
    history, tail = ds.sensor(0)
    stream = np.asarray(history.values, dtype=np.float64)
    d = segment_length

    def epsilon_for(series: np.ndarray) -> float:
        """LCSS/EDR matching threshold scaled to the series."""
        return 0.25 * float(np.std(series))

    measures = {
        f"DTW (rho={rho})": lambda q, segs: dtw_batch(q, segs, rho),
        "Euclidean": lambda q, segs: dtw_batch(q, segs, 0),
        "ERP": lambda q, segs: np.array(
            [erp_distance(q, s, rho=rho) for s in segs]
        ),
        "EDR": lambda q, segs: np.array(
            [float(edr_distance(q, s, epsilon_for(q), rho=rho)) for s in segs]
        ),
        "LCSS": lambda q, segs: np.array(
            [lcss_distance(q, s, epsilon_for(q), rho=rho) for s in segs]
        ),
    }

    errors: dict[str, list[float]] = {name: [] for name in measures}
    for step in range(steps):
        truth = float(tail[step])
        query = stream[-d:]
        n_candidates = stream.size - d  # targets must exist (h = 1)
        segments = sliding_window_view(stream, d)[:n_candidates]
        targets = stream[d:]
        for name, distance_fn in measures.items():
            distances = distance_fn(query, segments)
            forecast = _knn_forecast(distances, targets, k)
            errors[name].append(abs(forecast - truth))
        stream = np.append(stream, truth)

    return MeasureComparison(
        dataset=dataset,
        mae={name: float(np.mean(errs)) for name, errs in errors.items()},
        k=k,
        segment_length=d,
    )
