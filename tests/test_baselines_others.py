"""Tests for LazyKNN, Holt-Winters, NysSVR, sparse-GP forecasters, CV."""

import numpy as np
import pytest

from repro.baselines import (
    HoltWintersForecaster,
    LazyKNNForecaster,
    NysSVRForecaster,
    NystromFeatureMap,
    PSGPForecaster,
    ResidualVariance,
    VLGPForecaster,
    grid_search_cv,
    kfold_slices,
)
from repro.baselines.holt_winters import fit_holt_winters
from repro.gp.kernels import squared_distances


def seasonal_stream(n=1200, period=24, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        np.sin(2 * np.pi * t / period)
        + 0.3 * np.sin(2 * np.pi * t / (period * 7))
        + 0.05 * rng.normal(size=n)
    )


class TestResidualVariance:
    def test_plain_average(self):
        tracker = ResidualVariance()
        tracker.update_many([1.0, -1.0, 1.0, -1.0])
        assert tracker.variance == pytest.approx(1.0)

    def test_decay_adapts(self):
        tracker = ResidualVariance(decay=0.5)
        tracker.update_many([10.0] * 5)
        before = tracker.variance
        tracker.update_many([0.1] * 20)
        assert tracker.variance < before / 100

    def test_prior_variance_when_empty(self):
        assert ResidualVariance().variance == 1.0

    def test_decay_validation(self):
        with pytest.raises(ValueError):
            ResidualVariance(decay=1.5)


class TestLazyKnn:
    def test_predicts_periodic_stream(self):
        stream = seasonal_stream()
        model = LazyKNNForecaster(segment_length=24, k=8, rho=4)
        errors = []
        for t in range(1100, 1180):
            mean, var = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            assert var > 0
        assert float(np.mean(errors)) < 0.15

    def test_variance_is_neighbour_spread(self):
        """On near-deterministic data the kNN targets agree -> tiny var."""
        stream = np.tile(np.sin(np.linspace(0, 2 * np.pi, 50)), 30)
        model = LazyKNNForecaster(segment_length=25, k=4, rho=2)
        _, var = model.predict(stream, 1)
        assert var < 1e-3

    def test_context_too_short(self):
        model = LazyKNNForecaster(segment_length=50, k=4)
        with pytest.raises(ValueError):
            model.predict(np.zeros(55), 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            LazyKNNForecaster(segment_length=0)
        with pytest.raises(ValueError):
            LazyKNNForecaster(k=0)
        with pytest.raises(ValueError):
            LazyKNNForecaster(rho=-1)
        with pytest.raises(ValueError):
            LazyKNNForecaster(segment_length=8).predict(np.zeros(100), 0)


class TestHoltWinters:
    def test_fit_recovers_seasonality(self):
        stream = seasonal_stream(n=600, period=24)
        model = fit_holt_winters(stream, period=24)
        mean, var = model.forecast(1)
        assert abs(mean - np.sin(2 * np.pi * 600 / 24)) < 0.5
        assert var > 0

    def test_variance_grows_with_horizon(self):
        stream = seasonal_stream(n=600, period=24, seed=1)
        model = fit_holt_winters(stream, period=24)
        v1 = model.forecast(1)[1]
        v20 = model.forecast(20)[1]
        assert v20 > v1

    def test_full_vs_seg_names(self):
        assert HoltWintersForecaster(period=24).name == "FullHW"
        assert HoltWintersForecaster(period=24, window=240).name == "SegHW"

    def test_forecaster_tracks_stream(self):
        stream = seasonal_stream(n=900, period=24, seed=2)
        model = HoltWintersForecaster(period=24, window=240, refit_every=8)
        errors = []
        for t in range(700, 780):
            mean, _ = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            model.observe(stream[t])
        assert float(np.mean(errors)) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(period=24, window=30)
        with pytest.raises(ValueError):
            HoltWintersForecaster(period=24, refit_every=0)
        with pytest.raises(ValueError):
            fit_holt_winters(np.zeros(10), period=1)
        with pytest.raises(ValueError):
            fit_holt_winters(np.zeros(10), period=24)
        with pytest.raises(ValueError):
            fit_holt_winters(seasonal_stream(100), period=24).forecast(0)


class TestNystrom:
    def test_feature_map_approximates_rbf(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 4))
        fmap = NystromFeatureMap(landmarks=x[:40], gamma=0.5)
        features = fmap.transform(x)
        approx = features @ features.T
        exact = np.exp(-0.5 * squared_distances(x, x))
        # Landmarks cover the data well, so the approximation is close.
        assert float(np.mean(np.abs(approx - exact))) < 0.05

    def test_forecaster_beats_trivial_on_seasonal(self):
        stream = seasonal_stream(n=900, period=24, seed=3)
        model = NysSVRForecaster(
            segment_length=24, horizons=(1,), rank=48, epochs=8
        )
        model.fit(stream[:700])
        errors, trivial = [], []
        for t in range(700, 780):
            mean, _ = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            trivial.append(abs(stream[t - 1] - stream[t]))
        assert np.mean(errors) < np.mean(trivial)

    def test_validation(self):
        with pytest.raises(ValueError):
            NysSVRForecaster(rank=0)
        with pytest.raises(ValueError):
            NystromFeatureMap(np.zeros((3, 2)), gamma=0.0)
        with pytest.raises(RuntimeError):
            NysSVRForecaster().predict(np.zeros(100), 1)


class TestSparseGpForecasters:
    @pytest.mark.parametrize("cls", [PSGPForecaster, VLGPForecaster])
    def test_fit_predict_seasonal(self, cls):
        stream = seasonal_stream(n=700, period=24, seed=4)
        model = cls(
            segment_length=24, horizons=(1,), n_support=16,
            train_iters=15, max_train=300,
        )
        model.fit(stream[:600])
        errors = []
        for t in range(600, 650):
            mean, var = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            assert var > 0
        assert float(np.mean(errors)) < 0.3

    def test_unknown_horizon(self):
        model = PSGPForecaster(segment_length=12, horizons=(1,), max_train=100)
        model.fit(seasonal_stream(300))
        with pytest.raises(KeyError):
            model.predict(seasonal_stream(300), 9)


class TestGridSearch:
    def test_kfold_partition(self):
        folds = kfold_slices(10, 5)
        all_test = np.concatenate([test for _, test in folds])
        np.testing.assert_array_equal(np.sort(all_test), np.arange(10))
        for train, test in folds:
            assert np.intersect1d(train, test).size == 0

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            kfold_slices(10, 1)
        with pytest.raises(ValueError):
            kfold_slices(3, 5)

    def test_grid_search_finds_good_ridge(self):
        class Ridge:
            def __init__(self, lam):
                self.lam = lam

            def fit(self, x, y):
                a = x.T @ x + self.lam * np.eye(x.shape[1])
                self.w = np.linalg.solve(a, x.T @ y)
                return self

            def predict(self, x):
                return x @ self.w

        rng = np.random.default_rng(5)
        x = rng.normal(size=(100, 5))
        y = x @ np.array([1.0, -1.0, 0.5, 0.0, 2.0]) + 0.01 * rng.normal(size=100)
        result = grid_search_cv(
            Ridge, {"lam": [1e-6, 1.0, 1e6]}, x, y, n_folds=5
        )
        assert result.best_params["lam"] in (1e-6, 1.0)
        assert len(result.scores) == 3

    def test_grid_search_validation(self):
        with pytest.raises(ValueError):
            grid_search_cv(lambda: None, {}, np.zeros((4, 1)), np.zeros(4))
