"""Tests for envelope construction and streaming extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.dtw import compute_envelope, envelope_extend

floats = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


def naive_envelope(values, rho):
    n = len(values)
    upper = np.empty(n)
    lower = np.empty(n)
    for i in range(n):
        lo = max(0, i - rho)
        hi = min(n, i + rho + 1)
        upper[i] = values[lo:hi].max()
        lower[i] = values[lo:hi].min()
    return upper, lower


class TestComputeEnvelope:
    def test_rho_zero_is_identity(self):
        x = np.array([3.0, -1.0, 2.0])
        env = compute_envelope(x, 0)
        np.testing.assert_array_equal(env.upper, x)
        np.testing.assert_array_equal(env.lower, x)

    def test_simple_case(self):
        x = np.array([0.0, 5.0, 1.0, 1.0])
        env = compute_envelope(x, 1)
        np.testing.assert_array_equal(env.upper, [5.0, 5.0, 5.0, 1.0])
        np.testing.assert_array_equal(env.lower, [0.0, 0.0, 1.0, 1.0])

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), n=st.integers(1, 80), rho=st.integers(0, 12))
    def test_matches_naive(self, data, n, rho):
        x = data.draw(arrays(np.float64, (n,), elements=floats))
        env = compute_envelope(x, rho)
        upper, lower = naive_envelope(x, rho)
        np.testing.assert_array_equal(env.upper, upper)
        np.testing.assert_array_equal(env.lower, lower)

    @given(data=st.data(), n=st.integers(1, 40), rho=st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_envelope_sandwiches_values(self, data, n, rho):
        x = data.draw(arrays(np.float64, (n,), elements=floats))
        env = compute_envelope(x, rho)
        assert (env.upper >= x).all()
        assert (env.lower <= x).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_envelope(np.arange(4.0), -1)
        with pytest.raises(ValueError):
            compute_envelope(np.zeros((2, 2)), 1)

    def test_slice(self):
        x = np.arange(10.0)
        env = compute_envelope(x, 2)
        sub = env.slice(3, 7)
        np.testing.assert_array_equal(sub.upper, env.upper[3:7])
        assert len(sub) == 4


class TestEnvelopeExtend:
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        n_old=st.integers(1, 50),
        n_new=st.integers(1, 10),
        rho=st.integers(0, 8),
    )
    def test_extend_matches_recompute(self, data, n_old, n_new, rho):
        old_values = data.draw(arrays(np.float64, (n_old,), elements=floats))
        new_values = data.draw(arrays(np.float64, (n_new,), elements=floats))
        full = np.concatenate([old_values, new_values])
        old_env = compute_envelope(old_values, rho)
        extended = envelope_extend(full, old_env, n_new)
        fresh = compute_envelope(full, rho)
        np.testing.assert_array_equal(extended.upper, fresh.upper)
        np.testing.assert_array_equal(extended.lower, fresh.lower)

    def test_length_mismatch(self):
        env = compute_envelope(np.arange(5.0), 1)
        with pytest.raises(ValueError):
            envelope_extend(np.arange(10.0), env, 3)
