"""Tests for CSV IO, gap filling and re-interpolation."""

import numpy as np
import pytest

from repro.timeseries import (
    TimeSeries,
    fill_missing,
    load_csv,
    load_directory,
    reinterpolate,
    save_csv,
)


class TestCsvRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "sensors.csv"
        sensors = {
            "a": TimeSeries([1.0, 2.0, 3.0]),
            "b": TimeSeries([4.0, 5.0, 6.0]),
        }
        save_csv(path, sensors)
        loaded = load_csv(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"].values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(loaded["b"].values, [4.0, 5.0, 6.0])

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        loaded = load_csv(path)
        assert set(loaded) == {"column-0", "column-1"}
        np.testing.assert_allclose(loaded["column-0"].values, [1.0, 3.0])

    def test_column_selection_by_name_and_index(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("x,y\n1,10\n2,20\n")
        by_name = load_csv(path, column="y")
        assert list(by_name) == ["y"]
        np.testing.assert_allclose(by_name["y"].values, [10.0, 20.0])
        by_index = load_csv(path, column=0)
        np.testing.assert_allclose(by_index["x"].values, [1.0, 2.0])

    def test_missing_cells_become_nan(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("v\n1.0\n\nNaN\n4.0\n")
        values = load_csv(path)["v"].values
        assert values.size == 3  # the blank line is skipped entirely
        assert np.isnan(values[1])

    def test_ragged_columns_padded(self, tmp_path):
        path = tmp_path / "ragged.csv"
        save_csv(path, {"a": np.array([1.0, 2.0, 3.0]), "b": np.array([9.0])})
        loaded = load_csv(path)
        assert np.isnan(loaded["b"].values[1:]).all()

    def test_validation(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_csv(empty)
        header_only = tmp_path / "h.csv"
        header_only.write_text("a,b\n")
        with pytest.raises(ValueError):
            load_csv(header_only)
        with pytest.raises(KeyError):
            load_csv_with_header(tmp_path, column="zz")
        with pytest.raises(ValueError):
            save_csv(tmp_path / "x.csv", {})


def load_csv_with_header(tmp_path, column):
    path = tmp_path / "hh.csv"
    path.write_text("a,b\n1,2\n")
    return load_csv(path, column=column)


class TestDirectory:
    def test_one_file_per_sensor(self, tmp_path):
        (tmp_path / "s1.csv").write_text("1.0\n2.0\n")
        (tmp_path / "s2.csv").write_text("3.0\n4.0\n")
        sensors = load_directory(tmp_path)
        assert list(sensors) == ["s1", "s2"]
        assert sensors["s2"].sensor_id == "s2"

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_directory(tmp_path)


class TestFillMissing:
    def test_interior_gap_interpolated(self):
        values = np.array([0.0, np.nan, np.nan, 3.0])
        np.testing.assert_allclose(fill_missing(values), [0.0, 1.0, 2.0, 3.0])

    def test_edges_extended(self):
        values = np.array([np.nan, 1.0, np.nan])
        np.testing.assert_allclose(fill_missing(values), [1.0, 1.0, 1.0])

    def test_no_gaps_copy(self):
        values = np.array([1.0, 2.0])
        filled = fill_missing(values)
        np.testing.assert_array_equal(filled, values)
        filled[0] = 99.0
        assert values[0] == 1.0  # original untouched

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError):
            fill_missing(np.full(4, np.nan))


class TestReinterpolate:
    def test_identity_factor(self):
        values = np.array([0.0, 1.0, 4.0])
        np.testing.assert_allclose(reinterpolate(values, 1.0), values)

    def test_upsample_linear(self):
        values = np.array([0.0, 2.0])
        np.testing.assert_allclose(reinterpolate(values, 2.0), [0.0, 1.0, 2.0])

    def test_downsample_keeps_endpoints(self):
        values = np.linspace(0.0, 10.0, 11)
        resampled = reinterpolate(values, 0.5)
        assert resampled[0] == 0.0
        assert resampled[-1] == 10.0
        assert resampled.size < values.size

    def test_validation(self):
        with pytest.raises(ValueError):
            reinterpolate(np.arange(5.0), 0.0)
        with pytest.raises(ValueError):
            reinterpolate(np.array([1.0]), 2.0)
        with pytest.raises(ValueError):
            reinterpolate(np.array([1.0, np.nan, 2.0]), 2.0)
