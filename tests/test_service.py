"""Tests for the deployment-shaped PredictionService."""

import numpy as np
import pytest

from repro.core import SMiLerConfig
from repro.gpu.costmodel import DeviceSpec
from repro.gpu.device import GpuDevice
from repro.service import Forecast, PredictionService

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1, 3),
    predictor="ar",
)


def raw_history(n=600, seed=0, scale=50.0, offset=200.0):
    rng = np.random.default_rng(seed)
    return offset + scale * (
        np.sin(np.arange(n) / 9.0) + 0.05 * rng.normal(size=n)
    )


def make_service(**kwargs):
    return PredictionService(CONFIG, min_history=100, **kwargs)


class TestRegistration:
    def test_register_and_list(self):
        service = make_service()
        service.register("s1", raw_history())
        service.register("s2", raw_history(seed=1))
        assert service.sensor_ids == ["s1", "s2"]

    def test_duplicate_rejected(self):
        service = make_service()
        service.register("s1", raw_history())
        with pytest.raises(ValueError):
            service.register("s1", raw_history())

    def test_short_history_rejected(self):
        with pytest.raises(ValueError):
            make_service().register("s1", raw_history(n=50))

    def test_non_finite_history_rejected(self):
        history = raw_history()
        history[10] = np.nan
        with pytest.raises(ValueError):
            make_service().register("s1", history)

    def test_deregister(self):
        service = make_service()
        service.register("s1", raw_history())
        service.deregister("s1")
        assert service.sensor_ids == []
        with pytest.raises(KeyError):
            service.deregister("s1")

    def test_min_history_validation(self):
        with pytest.raises(ValueError):
            PredictionService(CONFIG, min_history=0)

    def test_deregister_frees_device_memory(self):
        service = make_service()
        service.register("s1", raw_history())
        assert service.device.allocated_bytes > 0
        service.deregister("s1")
        assert service.device.allocated_bytes == 0

    def test_register_deregister_loop_never_exhausts_device(self):
        """Regression: deregister used to leak the register() allocation,
        so churning sensors eventually raised a spurious GpuMemoryError."""
        probe = make_service()
        probe.register("s", raw_history())
        footprint = probe.device.allocated_bytes
        # Headroom for ~2 sensors: any leak blows up within a few laps.
        device = GpuDevice(DeviceSpec(memory_bytes=int(2.5 * footprint)))
        service = make_service(device=device)
        for _ in range(50):
            service.register("s", raw_history())
            service.deregister("s")
        assert service.device.allocated_bytes == 0


class TestServing:
    def test_forecast_on_raw_scale(self):
        service = make_service()
        history = raw_history()
        service.register("s1", history)
        forecast = service.forecast("s1")
        # Raw scale: near the sensor's operating range, not z-scores.
        assert 100.0 < forecast.mean < 300.0
        assert forecast.std > 0
        assert forecast.interval_low < forecast.mean < forecast.interval_high

    def test_ingest_then_forecast_tracks(self):
        service = make_service()
        full = raw_history(n=660, seed=2)
        service.register("s1", full[:600])
        errors = []
        for value in full[600:640]:
            forecast = service.forecast("s1")
            errors.append(abs(forecast.mean - value))
            service.ingest("s1", value)
        assert float(np.mean(errors)) < 15.0  # scale=50 sine

    def test_multi_horizon(self):
        service = make_service()
        service.register("s1", raw_history())
        f3 = service.forecast("s1", horizon=3)
        assert f3.horizon == 3
        with pytest.raises(KeyError):
            service.forecast("s1", horizon=9)

    def test_non_positive_horizon_rejected(self):
        """Regression: ``horizon or default`` silently remapped 0 to the
        default horizon instead of rejecting it."""
        service = make_service()
        service.register("s1", raw_history())
        with pytest.raises(ValueError, match="horizon must be positive"):
            service.forecast("s1", horizon=0)
        with pytest.raises(ValueError, match="horizon must be positive"):
            service.forecast("s1", horizon=-3)

    def test_default_horizon_is_smallest_configured(self):
        service = make_service()
        service.register("s1", raw_history())
        assert service.forecast("s1").horizon == min(CONFIG.horizons)
        assert service.forecast("s1", horizon=None).horizon == min(
            CONFIG.horizons
        )

    def test_forecast_all(self):
        service = make_service()
        service.register("a", raw_history())
        service.register("b", raw_history(seed=3))
        forecasts = service.forecast_all()
        assert set(forecasts) == {"a", "b"}

    def test_interval_level(self):
        service = make_service()
        service.register("s1", raw_history())
        wide = service.forecast("s1", level=0.99)
        narrow = service.forecast("s1", level=0.5)
        assert (wide.interval_high - wide.interval_low) > (
            narrow.interval_high - narrow.interval_low
        )
        with pytest.raises(ValueError):
            service.forecast("s1", level=1.0)

    def test_non_finite_ingest_rejected(self):
        service = make_service()
        service.register("s1", raw_history())
        with pytest.raises(ValueError):
            service.ingest("s1", np.nan)

    def test_unknown_sensor(self):
        with pytest.raises(KeyError):
            make_service().forecast("ghost")

    def test_forecast_as_dict(self):
        forecast = Forecast("s", 1, 1.0, 0.5, 0.0, 2.0, 0.95)
        record = forecast.as_dict()
        assert record["sensor_id"] == "s"
        assert record["interval"] == [0.0, 2.0]


class TestSnapshotRestore:
    def test_roundtrip(self, tmp_path):
        service = make_service()
        full = raw_history(n=620, seed=4)
        service.register("s1", full[:600])
        for value in full[600:610]:
            service.forecast("s1")
            service.ingest("s1", value)
        before = service.forecast("s1")
        service.snapshot(tmp_path)

        restored = make_service()
        restored.restore(tmp_path)
        assert restored.sensor_ids == ["s1"]
        after = restored.forecast("s1")
        assert after.mean == pytest.approx(before.mean, rel=1e-4)
        assert after.std == pytest.approx(before.std, rel=1e-3)

    def test_restore_requires_empty_service(self, tmp_path):
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        with pytest.raises(RuntimeError):
            service.restore(tmp_path)

    def test_restore_missing_snapshot(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            make_service().restore(tmp_path / "nope")


class TestStatus:
    def test_status_fields(self):
        service = make_service()
        service.register("s1", raw_history())
        service.forecast("s1")
        status = service.status()
        assert status["n_sensors"] == 1
        assert status["device_memory_bytes"] > 0
        assert "s1" in status["sensors"]
