"""Tests for the deployment-shaped PredictionService."""

import numpy as np
import pytest

from repro.backend import NativeBackend, SimulatedGpuBackend
from repro.core import SMiLerConfig
from repro.gpu.costmodel import DeviceSpec
from repro.gpu.device import GpuDevice
from repro.service import Forecast, PredictionService, SnapshotCorruptionError

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1, 3),
    predictor="ar",
)


def raw_history(n=600, seed=0, scale=50.0, offset=200.0):
    rng = np.random.default_rng(seed)
    return offset + scale * (
        np.sin(np.arange(n) / 9.0) + 0.05 * rng.normal(size=n)
    )


def make_service(**kwargs):
    return PredictionService(CONFIG, min_history=100, **kwargs)


class TestRegistration:
    def test_register_and_list(self):
        service = make_service()
        service.register("s1", raw_history())
        service.register("s2", raw_history(seed=1))
        assert service.sensor_ids == ["s1", "s2"]

    def test_duplicate_rejected(self):
        service = make_service()
        service.register("s1", raw_history())
        with pytest.raises(ValueError):
            service.register("s1", raw_history())

    def test_short_history_rejected(self):
        with pytest.raises(ValueError):
            make_service().register("s1", raw_history(n=50))

    def test_non_finite_history_rejected(self):
        history = raw_history()
        history[10] = np.nan
        with pytest.raises(ValueError):
            make_service().register("s1", history)

    def test_deregister(self):
        service = make_service()
        service.register("s1", raw_history())
        service.deregister("s1")
        assert service.sensor_ids == []
        with pytest.raises(KeyError):
            service.deregister("s1")

    def test_min_history_validation(self):
        with pytest.raises(ValueError):
            PredictionService(CONFIG, min_history=0)

    def test_deregister_frees_device_memory(self):
        service = make_service()
        service.register("s1", raw_history())
        assert service.backends[0].allocated_bytes > 0
        service.deregister("s1")
        assert service.backends[0].allocated_bytes == 0

    def test_register_deregister_loop_never_exhausts_device(self):
        """Regression: deregister used to leak the register() allocation,
        so churning sensors eventually raised a spurious GpuMemoryError."""
        probe = make_service()
        probe.register("s", raw_history())
        footprint = probe.backends[0].allocated_bytes
        # Headroom for ~2 sensors: any leak blows up within a few laps.
        device = GpuDevice(DeviceSpec(memory_bytes=int(2.5 * footprint)))
        service = make_service(backends=device)
        for _ in range(50):
            service.register("s", raw_history())
            service.deregister("s")
        assert service.backends[0].allocated_bytes == 0


class TestSensorIdValidation:
    @pytest.mark.parametrize(
        "bad_id",
        [
            "",                  # empty
            "building/3",        # path separator: would nest snapshot dirs
            "..",                # traversal
            "_norms",            # collides with the normalisation archive
            ".hidden",           # dotfile
            "a b",               # whitespace
            "s1\n",              # trailing control character
        ],
    )
    def test_bad_ids_rejected_at_register(self, bad_id):
        with pytest.raises(ValueError, match="invalid sensor id"):
            make_service().register(bad_id, raw_history())

    def test_non_string_id_rejected(self):
        with pytest.raises(ValueError, match="invalid sensor id"):
            make_service().register(7, raw_history())

    @pytest.mark.parametrize(
        "good_id", ["s1", "building-3_floor:2", "A.b", "0"]
    )
    def test_good_ids_accepted(self, good_id):
        service = make_service()
        service.register(good_id, raw_history())
        assert service.sensor_ids == [good_id]

    def test_rejected_id_allocates_nothing(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.register("bad/id", raw_history())
        assert service.backends[0].allocated_bytes == 0


class TestServing:
    def test_forecast_on_raw_scale(self):
        service = make_service()
        history = raw_history()
        service.register("s1", history)
        forecast = service.forecast("s1")
        # Raw scale: near the sensor's operating range, not z-scores.
        assert 100.0 < forecast.mean < 300.0
        assert forecast.std > 0
        assert forecast.interval_low < forecast.mean < forecast.interval_high

    def test_ingest_then_forecast_tracks(self):
        service = make_service()
        full = raw_history(n=660, seed=2)
        service.register("s1", full[:600])
        errors = []
        for value in full[600:640]:
            forecast = service.forecast("s1")
            errors.append(abs(forecast.mean - value))
            service.ingest("s1", value)
        assert float(np.mean(errors)) < 15.0  # scale=50 sine

    def test_multi_horizon(self):
        service = make_service()
        service.register("s1", raw_history())
        f3 = service.forecast("s1", horizon=3)
        assert f3.horizon == 3
        with pytest.raises(KeyError):
            service.forecast("s1", horizon=9)

    def test_non_positive_horizon_rejected(self):
        """Regression: ``horizon or default`` silently remapped 0 to the
        default horizon instead of rejecting it."""
        service = make_service()
        service.register("s1", raw_history())
        with pytest.raises(ValueError, match="horizon must be positive"):
            service.forecast("s1", horizon=0)
        with pytest.raises(ValueError, match="horizon must be positive"):
            service.forecast("s1", horizon=-3)

    def test_default_horizon_is_smallest_configured(self):
        service = make_service()
        service.register("s1", raw_history())
        assert service.forecast("s1").horizon == min(CONFIG.horizons)
        assert service.forecast("s1", horizon=None).horizon == min(
            CONFIG.horizons
        )

    def test_forecast_all(self):
        service = make_service()
        service.register("a", raw_history())
        service.register("b", raw_history(seed=3))
        forecasts = service.forecast_all()
        assert set(forecasts) == {"a", "b"}

    def test_interval_level(self):
        service = make_service()
        service.register("s1", raw_history())
        wide = service.forecast("s1", level=0.99)
        narrow = service.forecast("s1", level=0.5)
        assert (wide.interval_high - wide.interval_low) > (
            narrow.interval_high - narrow.interval_low
        )
        with pytest.raises(ValueError):
            service.forecast("s1", level=1.0)

    def test_non_finite_ingest_rejected(self):
        service = make_service()
        service.register("s1", raw_history())
        with pytest.raises(ValueError):
            service.ingest("s1", np.nan)

    def test_unknown_sensor(self):
        with pytest.raises(KeyError):
            make_service().forecast("ghost")

    def test_forecast_as_dict(self):
        forecast = Forecast("s", 1, 1.0, 0.5, 0.0, 2.0, 0.95)
        record = forecast.as_dict()
        assert record["sensor_id"] == "s"
        assert record["interval"] == [0.0, 2.0]


class TestSnapshotRestore:
    def test_roundtrip(self, tmp_path):
        service = make_service()
        full = raw_history(n=620, seed=4)
        service.register("s1", full[:600])
        for value in full[600:610]:
            service.forecast("s1")
            service.ingest("s1", value)
        before = service.forecast("s1")
        service.snapshot(tmp_path)

        restored = make_service()
        restored.restore(tmp_path)
        assert restored.sensor_ids == ["s1"]
        after = restored.forecast("s1")
        assert after.mean == pytest.approx(before.mean, rel=1e-4)
        assert after.std == pytest.approx(before.std, rel=1e-3)

    def test_restore_requires_empty_service(self, tmp_path):
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        with pytest.raises(RuntimeError):
            service.restore(tmp_path)

    def test_restore_missing_snapshot(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            make_service().restore(tmp_path / "nope")

    def test_restore_orphan_archive_names_the_file(self, tmp_path):
        """An archive with no matching normalisation stats is corruption,
        reported by filename — not a raw KeyError from deep in numpy."""
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        # Drop an orphan sensor archive (from "another snapshot") in.
        other = make_service()
        other.register("ghost", raw_history(seed=9))
        other.snapshot(tmp_path / "other")
        (tmp_path / "other" / "ghost.npz").rename(tmp_path / "ghost.npz")

        with pytest.raises(SnapshotCorruptionError, match="ghost.npz"):
            make_service().restore(tmp_path)

    def test_restore_rejects_invalid_declared_id(self, tmp_path):
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        # Hand-edit the archive metadata to declare a hostile sensor id.
        import json

        with np.load(tmp_path / "s1.npz") as archive:
            data = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
        meta["sensor_id"] = "../evil"
        data["meta_json"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(tmp_path / "s1.npz", **data)
        with pytest.raises(SnapshotCorruptionError, match="s1.npz"):
            make_service().restore(tmp_path)

    def test_restore_missing_norm_entry_names_the_file(self, tmp_path):
        """A ``_norms.npz`` missing one of a sensor's two stats (mean
        present, std gone — a partially hand-edited archive) is
        corruption, not a KeyError at forecast time."""
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        with np.load(tmp_path / "_norms.npz") as archive:
            norms = {name: archive[name] for name in archive.files}
        del norms["s1_std"]
        np.savez(tmp_path / "_norms.npz", **norms)
        with pytest.raises(SnapshotCorruptionError, match="s1.npz"):
            make_service().restore(tmp_path)

    def test_restore_rejects_hand_edited_series_shape(self, tmp_path):
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        with np.load(tmp_path / "s1.npz") as archive:
            data = {name: archive[name] for name in archive.files}
        data["series"] = data["series"].reshape(2, -1)
        np.savez(tmp_path / "s1.npz", **data)
        with pytest.raises(SnapshotCorruptionError, match="s1.npz"):
            make_service().restore(tmp_path)

    def test_restore_unparseable_archive_names_the_file(self, tmp_path):
        """Any npz that is not a sensor snapshot (here: missing keys) is
        reported as corruption with the offending filename."""
        service = make_service()
        service.register("s1", raw_history())
        service.snapshot(tmp_path)
        np.savez(tmp_path / "junk.npz", noise=np.arange(4))
        with pytest.raises(SnapshotCorruptionError, match="junk.npz"):
            make_service().restore(tmp_path)


class TestIngestMany:
    def test_batch_advances_every_sensor(self):
        service = make_service()
        service.register("a", raw_history())
        service.register("b", raw_history(seed=3))
        before = {sid: service.sensor(sid).now for sid in ("a", "b")}
        service.ingest_many({"a": 201.0, "b": 199.5})
        for sid in ("a", "b"):
            assert service.sensor(sid).now == before[sid] + 1

    def test_bad_batch_applies_nothing(self):
        """Validation covers the whole batch before any sensor advances:
        one bad reading must not leave the fleet half-ticked."""
        service = make_service()
        service.register("a", raw_history())
        service.register("b", raw_history(seed=3))
        before = {sid: service.sensor(sid).now for sid in ("a", "b")}
        with pytest.raises(ValueError):
            service.ingest_many({"a": 201.0, "b": np.nan})
        with pytest.raises(KeyError):
            service.ingest_many({"a": 201.0, "ghost": 1.0})
        for sid in ("a", "b"):
            assert service.sensor(sid).now == before[sid]


class TestMultiBackend:
    def make_sharded(self, n_backends=2, n_sensors=4):
        service = PredictionService(
            CONFIG,
            backends=[SimulatedGpuBackend() for _ in range(n_backends)],
            min_history=100,
        )
        for i in range(n_sensors):
            service.register(f"s{i}", raw_history(seed=i))
        return service

    def test_greedy_placement_balances(self):
        service = self.make_sharded(n_backends=2, n_sensors=4)
        assert service.sensors_per_backend() == [2, 2]
        # Equal-size sensors on equal devices alternate greedily.
        assert [service.placement_of(f"s{i}") for i in range(4)] == [0, 1, 0, 1]

    def test_forecast_all_covers_the_fleet(self):
        service = self.make_sharded()
        forecasts = service.forecast_all()
        assert list(forecasts) == sorted(service.sensor_ids)
        assert all(f.std > 0 for f in forecasts.values())

    def test_status_reports_per_backend(self):
        service = self.make_sharded()
        status = service.status()
        assert len(status["backends"]) == 2
        assert [b["n_sensors"] for b in status["backends"]] == [2, 2]
        assert all(b["allocated_bytes"] > 0 for b in status["backends"])
        assert sum(
            b["allocated_bytes"] for b in status["backends"]
        ) == status["device_memory_bytes"]

    def test_deregister_frees_on_the_hosting_backend(self):
        service = self.make_sharded(n_backends=2, n_sensors=2)
        host = service.placement_of("s0")
        before = service.backends[host].allocated_bytes
        service.deregister("s0")
        assert service.backends[host].allocated_bytes < before
        assert service.sensors_per_backend()[host] == 0

    def test_mixed_backend_kinds_shard_together(self):
        service = PredictionService(
            CONFIG,
            backends=[SimulatedGpuBackend(), NativeBackend()],
            min_history=100,
        )
        service.register("s0", raw_history())
        service.register("s1", raw_history(seed=1))
        # The native backend is unbounded, so it always has the most
        # free bytes: everything lands there after the pool warms up.
        names = {b["name"] for b in service.status()["backends"]}
        assert names == {"simulated", "native"}
        assert sum(service.sensors_per_backend()) == 2


class TestStatus:
    def test_status_fields(self):
        service = make_service()
        service.register("s1", raw_history())
        service.forecast("s1")
        status = service.status()
        assert status["n_sensors"] == 1
        assert status["device_memory_bytes"] > 0
        assert "s1" in status["sensors"]
