"""End-to-end backend parity: the native fast path must reproduce the
simulated backend's answers bit for bit.

The backend contract (``repro.backend.base``) promises identical float64
DTW distances and identical tie-breaking in k-selection; these tests pin
the consequence — identical kNN answer sets and bit-identical forecasts
— over a seeded continuous run, so any backend divergence fails loudly
rather than skewing accuracy figures.
"""

import numpy as np
import pytest

from repro.backend import NativeBackend, SimulatedGpuBackend
from repro.core import SMiLer, SMiLerConfig
from repro.index.suffix_search import SuffixKnnEngine, SuffixSearchConfig
from repro.service import PredictionService

CONFIG = SMiLerConfig(
    elv=(16, 32), ekv=(4, 8), rho=4, omega=8, horizons=(1, 3),
    predictor="ar",
)


def seeded_stream(n=800, seed=11):
    rng = np.random.default_rng(seed)
    return 40.0 + 8.0 * (
        np.sin(np.arange(n) / 11.0)
        + 0.3 * np.sin(np.arange(n) / 3.0)
        + 0.1 * rng.normal(size=n)
    )


class TestSearchParity:
    def test_identical_knn_answers_over_continuous_run(self):
        stream = seeded_stream()
        config = SuffixSearchConfig(
            item_lengths=(16, 32), k_max=8, omega=8, rho=4, margin=1
        )
        sim = SuffixKnnEngine(
            stream[:700], config, backend=SimulatedGpuBackend()
        )
        nat = SuffixKnnEngine(stream[:700], config, backend=NativeBackend())
        for answers in (sim.search(), nat.search()):
            assert set(answers) == {16, 32}
        for t in range(700, 720):
            a = sim.step(float(stream[t]))
            b = nat.step(float(stream[t]))
            for d in (16, 32):
                np.testing.assert_array_equal(
                    a[d].starts, b[d].starts,
                    err_msg=f"kNN answer sets diverge at t={t}, d={d}",
                )
                np.testing.assert_array_equal(a[d].distances, b[d].distances)
                assert a[d].candidates_unfiltered == b[d].candidates_unfiltered


class TestForecastParity:
    def test_bit_identical_forecasts(self):
        stream = seeded_stream(seed=23)

        def run(backend):
            service = PredictionService(
                CONFIG, backends=backend, min_history=100
            )
            service.register("sensor-A", stream[:700])
            outputs = []
            for value in stream[700:730]:
                outputs.append(service.forecast("sensor-A"))
                service.ingest("sensor-A", float(value))
            outputs.append(service.forecast("sensor-A", horizon=3))
            return outputs

        for sim, nat in zip(run(SimulatedGpuBackend()), run(NativeBackend())):
            assert sim.mean == nat.mean  # bit-identical, no tolerance
            assert sim.std == nat.std
            assert sim.interval_low == nat.interval_low
            assert sim.interval_high == nat.interval_high

    def test_smiler_predictions_identical(self):
        stream = seeded_stream(seed=31)
        sim = SMiLer(stream[:700], CONFIG, backend=SimulatedGpuBackend())
        nat = SMiLer(stream[:700], CONFIG, backend=NativeBackend())
        for t in range(700, 715):
            a = sim.predict()
            b = nat.predict()
            for h in CONFIG.horizons:
                assert a[h].mean == b[h].mean
                assert a[h].variance == b[h].variance
            sim.observe(float(stream[t]))
            nat.observe(float(stream[t]))


class TestTimeAttribution:
    def test_only_simulated_accrues_time(self):
        stream = seeded_stream(seed=7)
        sim = SMiLer(stream[:700], CONFIG, backend=SimulatedGpuBackend())
        nat = SMiLer(stream[:700], CONFIG, backend=NativeBackend())
        sim.predict()
        nat.predict()
        assert sim.backend.elapsed_s > 0
        assert nat.backend.elapsed_s == 0.0
        assert sim.diagnostics()["device_sim_seconds"] > 0
        assert nat.diagnostics()["device_sim_seconds"] == 0.0
