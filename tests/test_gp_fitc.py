"""Tests for the FITC sparse GP approximation."""

import numpy as np
import pytest

from repro.gp import (
    FitcSparseGP,
    GaussianProcessRegressor,
    ProjectedSparseGP,
    SquaredExponentialKernel,
)


def toy_problem(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(-4, 4, size=n))[:, None]
    y = np.sin(1.5 * x[:, 0]) + 0.1 * rng.normal(size=n)
    return x, y


class TestFitc:
    def test_fit_predict_reasonable(self):
        x, y = toy_problem()
        model = FitcSparseGP(n_inducing=24, train_iters=30).fit(x, y)
        mean, var = model.predict(x)
        assert float(np.mean(np.abs(mean - y))) < 0.25
        assert (var > 0).all()

    def test_full_rank_matches_exact_gp(self):
        """With m = n the FITC diagonal correction vanishes.

        A short length-scale keeps the noise-free K_uu well conditioned
        (FITC inverts it directly; the exact GP never does).
        """
        x, y = toy_problem(n=25, seed=1)
        kernel = SquaredExponentialKernel(1.0, 0.25, 0.2)
        fitc = FitcSparseGP(n_inducing=25, kernel=kernel, train_iters=0).fit(x, y)
        exact = GaussianProcessRegressor(kernel).fit(x, y)
        x_star = np.linspace(-3, 3, 7)[:, None]
        np.testing.assert_allclose(
            fitc.predict(x_star)[0], exact.predict(x_star)[0], atol=1e-5
        )
        np.testing.assert_allclose(
            fitc.predict(x_star)[1], exact.predict(x_star)[1], atol=1e-4
        )
        assert fitc.log_marginal_likelihood() == pytest.approx(
            exact.log_marginal_likelihood(), abs=1e-4
        )

    def test_fitc_variance_not_overconfident_vs_dtc(self):
        """FITC's diagonal correction raises variance off the inducing set."""
        x, y = toy_problem(n=150, seed=2)
        kernel = SquaredExponentialKernel(1.0, 0.8, 0.15)
        fitc = FitcSparseGP(n_inducing=6, kernel=kernel, train_iters=0, seed=3)
        dtc = ProjectedSparseGP(n_active=6, kernel=kernel, train_iters=0, seed=3)
        fitc.fit(x, y)
        dtc.fit(x, y)
        x_star = np.linspace(-4, 4, 40)[:, None]
        # On average the FITC marginal likelihood accounts for the lost
        # signal; its training fit should be at least as honest.
        assert np.mean(fitc.predict(x_star)[1]) >= (
            np.mean(dtc.predict(x_star)[1]) * 0.9
        )

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            FitcSparseGP().predict(np.zeros((1, 1)))

    def test_validation(self):
        with pytest.raises(ValueError):
            FitcSparseGP(n_inducing=0)
        with pytest.raises(ValueError):
            FitcSparseGP().fit(np.zeros((3, 1)), np.zeros(4))

    def test_likelihood_finite_on_duplicates(self):
        x = np.zeros((30, 2))
        y = np.random.default_rng(4).normal(size=30)
        model = FitcSparseGP(n_inducing=5, train_iters=5).fit(x, y)
        assert np.isfinite(model.log_marginal_likelihood())
