"""Tests for the statistical-regression family: AR/ARI, SES/Holt, GARCH."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ARForecaster,
    ExponentialSmoothingForecaster,
    GarchForecaster,
    fit_ar,
    fit_garch,
    select_ar_order,
)
from repro.baselines.exponential import HoltLinearTrend, SimpleExponentialSmoothing


def ar2_stream(n=1500, phi=(0.5, 0.3), c=0.1, sigma=0.1, seed=0):
    rng = np.random.default_rng(seed)
    values = [0.0, 0.0]
    for _ in range(n - 2):
        values.append(
            c + phi[0] * values[-1] + phi[1] * values[-2]
            + sigma * rng.normal()
        )
    return np.asarray(values)


class TestFitAr:
    def test_recovers_coefficients(self):
        stream = ar2_stream()
        model = fit_ar(stream, 2)
        np.testing.assert_allclose(model.coefficients, [0.5, 0.3], atol=0.06)
        assert model.intercept == pytest.approx(0.1, abs=0.05)
        assert model.noise_variance == pytest.approx(0.01, rel=0.3)

    def test_order_zero_is_mean_model(self):
        stream = np.array([1.0, 3.0, 2.0, 2.0, 1.0, 3.0])
        model = fit_ar(stream, 0)
        assert model.intercept == pytest.approx(2.0)
        mean, var = model.forecast(stream, 5)
        assert mean == pytest.approx(2.0)
        # iid model: every future value has the same (innovation) variance.
        assert var == pytest.approx(model.noise_variance, rel=1e-6)

    def test_aic_selects_near_true_order(self):
        stream = ar2_stream(n=3000, seed=1)
        model = select_ar_order(stream, max_order=8)
        assert 2 <= model.order <= 4

    def test_psi_weights_ar1(self):
        stream = 0.8 ** np.arange(50) + np.random.default_rng(2).normal(0, 0.01, 50)
        model = fit_ar(ar2_stream(2000, phi=(0.7, 0.0), seed=3), 1)
        psi = model.psi_weights(4)
        phi = model.coefficients[0]
        np.testing.assert_allclose(psi, [1, phi, phi**2, phi**3], rtol=1e-9)

    def test_forecast_variance_grows(self):
        model = fit_ar(ar2_stream(seed=4), 2)
        context = ar2_stream(100, seed=5)
        v1 = model.forecast(context, 1)[1]
        v10 = model.forecast(context, 10)[1]
        assert v10 > v1

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_ar(np.arange(3.0), 5)
        with pytest.raises(ValueError):
            fit_ar(np.arange(10.0), -1)
        with pytest.raises(ValueError):
            select_ar_order(np.arange(1.0))
        model = fit_ar(ar2_stream(100), 2)
        with pytest.raises(ValueError):
            model.forecast(np.arange(1.0), 1)
        with pytest.raises(ValueError):
            model.psi_weights(0)


class TestARForecaster:
    def test_tracks_ar_stream(self):
        stream = ar2_stream(seed=6)
        model = ARForecaster(max_order=6).fit(stream[:1200])
        errors = []
        for t in range(1200, 1300):
            mean, var = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            assert var > 0
        assert float(np.mean(errors)) < 0.12

    def test_differencing_handles_random_walk(self):
        rng = np.random.default_rng(7)
        walk = np.cumsum(0.1 * rng.normal(size=2000)) + 5.0
        model = ARForecaster(max_order=4, d_diff=1).fit(walk[:1800])
        mean, var = model.predict(walk[:1900], 1)
        # A random walk's best 1-step forecast is close to the last value.
        assert abs(mean - walk[1899]) < 0.5
        v5 = model.predict(walk[:1900], 5)[1]
        assert v5 > var

    def test_refit_every(self):
        stream = ar2_stream(seed=8)
        model = ARForecaster(max_order=4, refit_every=5).fit(stream[:1000])
        for t in range(1000, 1012):
            model.predict(stream[:t], 1)
            model.observe(stream[t])

    def test_validation(self):
        with pytest.raises(ValueError):
            ARForecaster(d_diff=2)
        with pytest.raises(ValueError):
            ARForecaster(max_order=0)
        with pytest.raises(RuntimeError):
            ARForecaster().predict(np.zeros(100), 1)


class TestExponentialSmoothing:
    def test_ses_level_tracks_mean_shift(self):
        values = np.concatenate([np.zeros(100), np.full(100, 5.0)])
        values += 0.01 * np.random.default_rng(9).normal(size=200)
        model = SimpleExponentialSmoothing.fit(values)
        assert model.forecast(1)[0] == pytest.approx(5.0, abs=0.3)

    def test_holt_extrapolates_trend(self):
        t = np.arange(200.0)
        values = 0.5 * t + 0.05 * np.random.default_rng(10).normal(size=200)
        model = HoltLinearTrend.fit(values)
        mean10, _ = model.forecast(10)
        assert mean10 == pytest.approx(0.5 * 209, rel=0.05)

    def test_variance_monotone_in_horizon(self):
        values = np.random.default_rng(11).normal(size=100)
        for model in (
            SimpleExponentialSmoothing.fit(values),
            HoltLinearTrend.fit(values),
        ):
            variances = [model.forecast(h)[1] for h in (1, 5, 20)]
            assert variances[0] <= variances[1] <= variances[2]

    def test_forecaster_protocol(self):
        rng = np.random.default_rng(12)
        stream = np.sin(np.arange(300) / 10.0) + 0.05 * rng.normal(size=300)
        model = ExponentialSmoothingForecaster(trend=True, refit_every=4)
        errors = []
        for t in range(250, 290):
            mean, var = model.predict(stream[:t], 1)
            errors.append(abs(mean - stream[t]))
            model.observe(stream[t])
            assert var > 0
        assert float(np.mean(errors)) < 0.3

    def test_names(self):
        assert ExponentialSmoothingForecaster().name == "SES"
        assert ExponentialSmoothingForecaster(trend=True).name == "Holt"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialSmoothingForecaster(window=2)
        with pytest.raises(ValueError):
            ExponentialSmoothingForecaster(refit_every=0)
        with pytest.raises(ValueError):
            SimpleExponentialSmoothing.fit(np.zeros(2))
        with pytest.raises(ValueError):
            HoltLinearTrend.fit(np.zeros(3))
        model = SimpleExponentialSmoothing.fit(np.random.default_rng(0).normal(size=30))
        with pytest.raises(ValueError):
            model.forecast(0)


class TestGarch:
    def _garch_stream(self, n=3000, seed=13):
        """Simulate AR(1)-GARCH(1,1) with known parameters."""
        rng = np.random.default_rng(seed)
        omega, alpha, beta = 0.02, 0.15, 0.7
        phi, c = 0.5, 0.05
        h = omega / (1 - alpha - beta)
        values = [0.0]
        eps_prev_sq = h
        for _ in range(n - 1):
            h = omega + alpha * eps_prev_sq + beta * h
            eps = np.sqrt(h) * rng.normal()
            values.append(c + phi * values[-1] + eps)
            eps_prev_sq = eps * eps
        return np.asarray(values)

    def test_fit_recovers_persistence(self):
        stream = self._garch_stream()
        model = fit_garch(stream)
        assert model.alpha + model.beta == pytest.approx(0.85, abs=0.15)
        assert model.ar_coefficient == pytest.approx(0.5, abs=0.1)

    def test_variance_reverts_to_unconditional(self):
        stream = self._garch_stream(seed=14)
        model = fit_garch(stream)
        far_var = model.forecast(200)[1]
        # Long-horizon variance approaches the AR-scaled unconditional
        # level: finite and larger than the 1-step variance.
        assert np.isfinite(far_var)
        assert far_var > model.forecast(1)[1] * 0.5

    def test_forecaster_protocol(self):
        stream = self._garch_stream(seed=15)
        model = GarchForecaster(window=500, refit_every=10)
        for t in range(2000, 2012):
            mean, var = model.predict(stream[:t], 1)
            assert np.isfinite(mean) and var > 0
            model.observe(stream[t])

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_garch(np.zeros(10))
        with pytest.raises(ValueError):
            GarchForecaster(window=5)
        with pytest.raises(ValueError):
            GarchForecaster(refit_every=0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_forecast_always_positive_variance(self, seed):
        stream = self._garch_stream(n=300, seed=seed)
        model = fit_garch(stream, max_iters=40)
        for h in (1, 5, 30):
            mean, var = model.forecast(h)
            assert np.isfinite(mean)
            assert var > 0
