"""The tiered pruning cascade: exactness, admissibility, edge cases.

The contract under test: the cascade (LB_Kim → LB_w → LB_Improved →
early-abandoning DTW) is a pure optimisation — every answer set is
**bit-identical** (starts *and* distances) to the full banded-DTW
reference scan :func:`repro.index.reference.suffix_knn_reference`, under
both compute backends and with the cascade switched on or off.  Engine
parity (inline/thread/process execution) over the same search pipeline
is pinned separately by ``tests/test_exec_parity.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import make_backend
from repro.dtw import (
    compute_envelope,
    compute_envelope_batch,
    dtw_batch,
    dtw_batch_pruned,
    dtw_distance,
    envelope_shift,
    lb_en,
    lb_eq,
    lb_improved,
    lb_improved_profile,
    lb_kim,
    lb_kim_profile,
)
from repro.index import SuffixKnnEngine, SuffixSearchConfig
from repro.index.reference import suffix_knn_reference


def make_series(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.cumsum(0.3 * rng.normal(size=n)) + np.sin(np.arange(n) / 9.0)


SMALL_CFG = SuffixSearchConfig(
    item_lengths=(8, 16, 24), k_max=6, omega=4, rho=2, margin=2
)

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def assert_matches_reference(engine, answers, margin):
    """Every answer must equal the full-scan reference bit-for-bit."""
    series = engine.series
    for d, answer in answers.items():
        ref_starts, ref_dist = suffix_knn_reference(
            series, engine.item_query(d), engine.config.k_max,
            engine.config.rho, margin=margin,
        )
        np.testing.assert_array_equal(answer.starts, ref_starts)
        np.testing.assert_array_equal(answer.distances, ref_dist)


class TestDifferentialExactness:
    """Cascade answers == reference full scan, bit for bit."""

    @pytest.mark.parametrize("backend_name", ["simulated", "native"])
    def test_continuous_run_matches_reference(self, backend_name):
        series = make_series(260, seed=1)
        future = make_series(6, seed=2)
        engine = SuffixKnnEngine(
            series, SMALL_CFG, backend=make_backend(backend_name)
        )
        assert_matches_reference(engine, engine.search(), SMALL_CFG.margin)
        for p in future:
            answers = engine.step(p)
            assert_matches_reference(engine, answers, SMALL_CFG.margin)

    @pytest.mark.parametrize("backend_name", ["simulated", "native"])
    def test_cascade_and_baseline_answers_identical(self, backend_name):
        """cascade=False is the same search, only slower."""
        series = make_series(240, seed=3)
        future = make_series(4, seed=4)
        base_cfg = SuffixSearchConfig(
            item_lengths=(8, 16, 24), k_max=6, omega=4, rho=2, margin=2,
            cascade=False,
        )
        fast = SuffixKnnEngine(
            series, SMALL_CFG, backend=make_backend(backend_name)
        )
        slow = SuffixKnnEngine(
            series, base_cfg, backend=make_backend(backend_name)
        )
        for fa, sa in zip(fast.search().values(), slow.search().values()):
            np.testing.assert_array_equal(fa.starts, sa.starts)
            np.testing.assert_array_equal(fa.distances, sa.distances)
        for p in future:
            fast_answers = fast.step(p)
            slow_answers = slow.step(p)
            for d in SMALL_CFG.item_lengths:
                np.testing.assert_array_equal(
                    fast_answers[d].starts, slow_answers[d].starts
                )
                np.testing.assert_array_equal(
                    fast_answers[d].distances, slow_answers[d].distances
                )

    def test_backends_bit_identical_with_cascade(self):
        series = make_series(220, seed=5)
        engines = {
            name: SuffixKnnEngine(series, SMALL_CFG, backend=make_backend(name))
            for name in ("simulated", "native")
        }
        for p in make_series(5, seed=6):
            answers = {n: e.step(p) for n, e in engines.items()}
            for d in SMALL_CFG.item_lengths:
                np.testing.assert_array_equal(
                    answers["simulated"][d].starts, answers["native"][d].starts
                )
                np.testing.assert_array_equal(
                    answers["simulated"][d].distances,
                    answers["native"][d].distances,
                )


class TestTierAdmissibility:
    """Every cascade tier is a provable lower bound of banded DTW."""

    @settings(max_examples=120, deadline=None)
    @given(
        data=st.lists(finite_floats, min_size=2, max_size=48),
        rho=st.integers(0, 8),
        seed=st.integers(0, 10_000),
    )
    def test_all_tiers_below_dtw(self, data, rho, seed):
        d = len(data) // 2
        query = np.asarray(data[:d], dtype=np.float64)
        candidate = np.asarray(data[d : 2 * d], dtype=np.float64)
        rng = np.random.default_rng(seed)
        candidate = candidate + rng.normal(scale=0.5, size=d)
        dtw = dtw_distance(query, candidate, rho)
        slack = 1e-9 * max(1.0, dtw)
        assert lb_kim(query, candidate) <= dtw + slack
        assert lb_en(query, candidate, rho) <= dtw + slack
        lbi = lb_improved(query, candidate, rho)
        assert lbi <= dtw + slack
        # Lemire's second pass only ever adds: LB_Improved >= LB_EQ.
        assert lbi >= lb_eq(query, candidate, rho) - slack

    def test_lb_kim_single_point_is_admissible(self):
        # Both alignments collapse to the same DP cell for length-1
        # sequences; counting it twice would exceed the DTW distance.
        q, c = np.array([2.0]), np.array([5.0])
        assert lb_kim(q, c) == dtw_distance(q, c, rho=0) == 9.0
        np.testing.assert_array_equal(
            lb_kim_profile(q, np.array([5.0, 7.0]), np.array([0, 1])),
            np.array([9.0, 25.0]),
        )

    def test_lb_kim_profile_matches_scalar(self):
        series = make_series(80, seed=7)
        query = series[-12:]
        starts = np.arange(series.size - 12 + 1)
        profile = lb_kim_profile(query, series, starts)
        for t in starts:
            assert profile[t] == lb_kim(query, series[t : t + 12])

    def test_tiers_are_not_mutually_ordered(self):
        # The documented counterexample: LB_Kim can exceed LB_en, so the
        # cascade's tiers prune independently rather than monotonically.
        q, c = np.array([0.0, 5.0]), np.array([5.0, 0.0])
        assert lb_kim(q, c) == 50.0
        assert lb_en(q, c, rho=1) == 0.0
        assert dtw_distance(q, c, rho=1) == 50.0


class TestBatchedPrimitives:
    """Vectorised envelope + pruned DTW match their reference forms."""

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=40),
        rho=st.integers(0, 6),
    )
    def test_envelope_matches_window_definition(self, values, rho):
        x = np.asarray(values, dtype=np.float64)
        env = compute_envelope(x, rho)
        for i in range(x.size):
            window = x[max(0, i - rho) : i + rho + 1]
            assert env.upper[i] == window.max()
            assert env.lower[i] == window.min()

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        n=st.integers(1, 6),
        d=st.integers(1, 30),
        rho=st.integers(0, 5),
    )
    def test_envelope_batch_matches_per_row(self, seed, n, d, rho):
        rng = np.random.default_rng(seed)
        batch = rng.normal(size=(n, d))
        upper, lower = compute_envelope_batch(batch, rho)
        for r in range(n):
            env = compute_envelope(batch[r], rho)
            np.testing.assert_array_equal(upper[r], env.upper)
            np.testing.assert_array_equal(lower[r], env.lower)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 5_000),
        n=st.integers(1, 40),
        rho=st.integers(0, 6),
    )
    def test_envelope_shift_is_exact(self, seed, n, rho):
        rng = np.random.default_rng(seed)
        old_values = rng.normal(size=n)
        new_values = np.concatenate([old_values[1:], rng.normal(size=1)])
        shifted = envelope_shift(new_values, compute_envelope(old_values, rho))
        fresh = compute_envelope(new_values, rho)
        np.testing.assert_array_equal(shifted.upper, fresh.upper)
        np.testing.assert_array_equal(shifted.lower, fresh.lower)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        d=st.integers(2, 28),
        n=st.integers(1, 30),
        rho=st.integers(0, 6),
        quantile=st.floats(0.05, 0.95),
    )
    def test_pruned_dtw_exact_for_survivors(self, seed, d, n, rho, quantile):
        rng = np.random.default_rng(seed)
        query = rng.normal(size=d) * 3.0
        candidates = rng.normal(size=(n, d)) * 3.0
        reference = dtw_batch(query, candidates, rho)
        cutoff = float(np.quantile(reference, quantile))
        _, terms = lb_improved_profile(
            query, candidates, rho, return_terms=True
        )
        pruned = dtw_batch_pruned(
            query, candidates, rho, cutoff=cutoff, lb_terms=terms
        )
        survivors = np.isfinite(pruned)
        # Survivors are bit-identical; abandoned truly exceed the cutoff.
        np.testing.assert_array_equal(pruned[survivors], reference[survivors])
        assert (reference[~survivors] > cutoff).all()
        # Nothing at or below the cutoff may ever be abandoned.
        assert survivors[reference <= cutoff].all()

    def test_pruned_dtw_without_cutoff_equals_batch(self):
        rng = np.random.default_rng(11)
        query = rng.normal(size=20)
        candidates = rng.normal(size=(15, 20))
        np.testing.assert_array_equal(
            dtw_batch_pruned(query, candidates, rho=4),
            dtw_batch(query, candidates, rho=4),
        )

    def test_pruned_dtw_reports_cell_savings(self):
        rng = np.random.default_rng(13)
        query = rng.normal(size=32)
        candidates = np.concatenate(
            [query[None, :] + 0.01, rng.normal(size=(63, 32)) + 50.0]
        )
        _, terms = lb_improved_profile(query, candidates, 4, return_terms=True)
        _, cells = dtw_batch_pruned(
            query, candidates, 4, cutoff=1.0, lb_terms=terms,
            return_cells=True,
        )
        full_cells = 64 * 32 * min(32, 2 * 4 + 1)
        assert 0 < cells < full_cells / 2


class TestSearchEdgeCases:
    def test_empty_to_verify_batch(self):
        """When the seed pool covers every unfiltered candidate the
        verification batch is empty — the answer must still be exact."""
        # Series barely longer than the master query: few candidates,
        # k_max above all of them, so every candidate becomes a seed.
        cfg = SuffixSearchConfig(
            item_lengths=(8, 16), k_max=32, omega=4, rho=2, margin=1
        )
        series = make_series(16 + 6, seed=21)
        engine = SuffixKnnEngine(series, cfg)
        answers = engine.search()
        assert_matches_reference(engine, answers, cfg.margin)
        for answer in answers.values():
            assert answer.candidates_verified >= answer.candidates_unfiltered

    def test_k_max_above_candidate_count(self):
        cfg = SuffixSearchConfig(
            item_lengths=(8, 16), k_max=500, omega=4, rho=2, margin=1
        )
        series = make_series(40, seed=22)
        engine = SuffixKnnEngine(series, cfg)
        answers = engine.step(0.7)
        assert_matches_reference(engine, answers, cfg.margin)
        for d, answer in answers.items():
            # Every valid candidate is an answer.
            assert answer.starts.size == answer.candidates_total
            assert answer.candidates_verified == answer.candidates_total

    def test_series_barely_longer_than_largest_item(self):
        """Exactly one candidate for the largest item length."""
        cfg = SuffixSearchConfig(
            item_lengths=(8, 16), k_max=4, omega=4, rho=2, margin=1
        )
        series = make_series(16 + 1, seed=23)
        engine = SuffixKnnEngine(series, cfg)
        answers = engine.search()
        assert answers[16].candidates_total == 1
        assert_matches_reference(engine, answers, cfg.margin)
        # One step later there are two candidates; still exact.
        answers = engine.step(-0.2)
        assert answers[16].candidates_total == 2
        assert_matches_reference(engine, answers, cfg.margin)

    def test_threshold_reuse_with_stale_previous_knn(self):
        """Out-of-range _previous_knn indices (a restore() artefact or a
        truncated history) must be ignored, not crash or skew tau."""
        series = make_series(200, seed=24)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        engine.search()
        for d in SMALL_CFG.item_lengths:
            engine._previous_knn[d] = np.array([10_000, 20_000, 30_000])
        answers = engine.step(0.4)
        assert_matches_reference(engine, answers, SMALL_CFG.margin)

    def test_search_exact_immediately_after_restore(self, tmp_path):
        """restore() rebuilds the engine with no _previous_knn; the next
        prediction must be bit-identical to the never-saved instance."""
        from repro.core import SMiLerConfig
        from repro.core.persistence import load_smiler, save_smiler
        from repro.core.smiler import SMiLer

        config = SMiLerConfig(
            elv=(8, 16), ekv=(2, 4), rho=2, omega=4, horizons=(1,),
            predictor="ar",
        )
        history = make_series(120, seed=25)
        original = SMiLer(history, config, sensor_id="edge-0")
        original.predict()
        original.observe(0.31)
        save_smiler(original, tmp_path / "edge-0.npz")
        restored = load_smiler(tmp_path / "edge-0.npz")
        assert restored.engine._previous_knn == {}

        # The restored engine answers its very first (reuse-free) search
        # exactly like the warm original answers its reuse-based one.
        warm = original.engine.search()
        cold = restored.engine.search()
        for d in (8, 16):
            np.testing.assert_array_equal(warm[d].starts, cold[d].starts)
            np.testing.assert_array_equal(
                warm[d].distances, cold[d].distances
            )
        assert_matches_reference(restored.engine, cold, config.margin)


class TestAccounting:
    def test_verified_includes_seeds_above_tau(self):
        """candidates_verified counts seeds ∪ to_verify, never less than
        the unfiltered survivor count (the fixed accounting)."""
        series = make_series(300, seed=31)
        engine = SuffixKnnEngine(series, SMALL_CFG)
        engine.search()
        answers = engine.step(0.1)
        for answer in answers.values():
            assert answer.candidates_verified >= answer.candidates_unfiltered
            assert answer.candidates_verified <= answer.candidates_total
            pruned = (
                answer.pruned_kim
                + answer.pruned_window
                + answer.pruned_improved
            )
            assert pruned == answer.candidates_total - answer.candidates_unfiltered
            assert answer.abandoned_early >= 0

    def test_sim_time_split_between_verification_and_selection(self):
        """The k_select span must be charged to selection_sim_s, not to
        verification_sim_s (the fixed attribution)."""
        series = make_series(300, seed=32)
        engine = SuffixKnnEngine(
            series, SMALL_CFG, backend=make_backend("simulated")
        )
        answers = engine.search()
        for answer in answers.values():
            assert answer.verification_sim_s > 0.0
            assert answer.selection_sim_s > 0.0

    def test_total_sim_time_is_conserved(self):
        """verification + selection spans tile the ledger delta."""
        series = make_series(280, seed=33)
        backend = make_backend("simulated")
        engine = SuffixKnnEngine(series, SMALL_CFG, backend=backend)
        backend.reset_time()
        start = backend.elapsed_s
        answers = engine.search()
        spent = backend.elapsed_s - start
        accounted = sum(
            a.verification_sim_s + a.selection_sim_s
            for a in answers.values()
        )
        # The only other work inside search() is the group-index bound
        # computation, so the per-answer spans must not exceed the total.
        assert accounted <= spent + 1e-12
        assert accounted > 0.0

    def test_cascade_prunes_on_smooth_data(self):
        """On self-similar data the cascade kills most candidates before
        verification and abandons some of the rest mid-DTW."""
        series = make_series(2000, seed=34)
        cfg = SuffixSearchConfig(
            item_lengths=(32, 64), k_max=8, omega=16, rho=8, margin=1
        )
        engine = SuffixKnnEngine(series, cfg)
        engine.search()
        answers = engine.step(float(series[-1]))
        total_pruned = sum(
            a.pruned_kim + a.pruned_window + a.pruned_improved
            for a in answers.values()
        )
        total = sum(a.candidates_total for a in answers.values())
        assert total_pruned > total / 2
