"""Tests for the adaptive ensemble (weights, sleep & recovery)."""

import numpy as np
import pytest

from repro.core import AdaptiveEnsemble, GaussianPrediction
from repro.core.predictor import SemiLazyPredictor


class FixedPredictor(SemiLazyPredictor):
    """Deterministic stub: always predicts N(mean, variance)."""

    def __init__(self, mean, variance=0.1):
        self.mean = mean
        self.variance = variance

    def predict(self, query, neighbours, targets):
        return GaussianPrediction(self.mean, self.variance)


def make_ensemble(means, sleep=True, adaptive=True, variance=0.1):
    cells = [(k, 8) for k in range(1, len(means) + 1)]
    table = dict(zip(cells, means))
    return (
        AdaptiveEnsemble(
            cells,
            lambda cell: FixedPredictor(table[cell], variance),
            self_adaptive=adaptive,
            sleep_enabled=sleep,
        ),
        cells,
    )


def dummy_inputs(cells):
    return {
        cell: (np.zeros(8), np.zeros((2, 8)), np.zeros(2)) for cell in cells
    }


class TestWeights:
    def test_initial_weights_uniform(self):
        ens, cells = make_ensemble([0.0, 1.0, 2.0])
        for w in ens.weights().values():
            assert w == pytest.approx(1 / 3)

    def test_good_predictor_gains_weight(self):
        ens, cells = make_ensemble([0.0, 5.0], sleep=False)
        out = ens.predict(dummy_inputs(cells))
        ens.update(0.0, out.components)  # truth favours the first cell
        weights = ens.weights()
        assert weights[cells[0]] > weights[cells[1]]
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_weights_converge_with_repetition(self):
        ens, cells = make_ensemble([0.0, 3.0], sleep=False)
        for _ in range(20):
            out = ens.predict(dummy_inputs(cells))
            ens.update(0.0, out.components)
        assert ens.weights()[cells[0]] > 0.9

    def test_non_adaptive_keeps_uniform(self):
        ens, cells = make_ensemble([0.0, 5.0], adaptive=False)
        out = ens.predict(dummy_inputs(cells))
        ens.update(0.0, out.components)
        for w in ens.weights().values():
            assert w == pytest.approx(0.5)

    def test_update_is_exponential_smoothing(self):
        """One update moves weights by the normalised likelihood then
        renormalises (Eqns. 8-9)."""
        ens, cells = make_ensemble([0.0, 1.0], sleep=False, variance=1.0)
        out = ens.predict(dummy_inputs(cells))
        truth = 0.0
        l0 = out.components[cells[0]].density(truth)
        l1 = out.components[cells[1]].density(truth)
        expected0 = (0.5 + l0 / (l0 + l1)) / 2.0
        ens.update(truth, out.components)
        assert ens.weights()[cells[0]] == pytest.approx(expected0)


class TestMixture:
    def test_mixture_mean_is_weighted(self):
        ens, cells = make_ensemble([0.0, 2.0], sleep=False)
        out = ens.predict(dummy_inputs(cells))
        assert out.mean == pytest.approx(1.0)

    def test_mixture_variance_includes_disagreement(self):
        ens, cells = make_ensemble([0.0, 2.0], variance=0.01)
        out = ens.predict(dummy_inputs(cells))
        # Moment matching: between-component spread dominates 0.01.
        assert out.variance == pytest.approx(0.01 + 1.0, rel=1e-6)

    def test_missing_inputs_rejected(self):
        ens, cells = make_ensemble([0.0, 1.0])
        with pytest.raises(KeyError):
            ens.predict(dummy_inputs(cells[:1]))

    def test_single_cell(self):
        ens, cells = make_ensemble([1.5])
        out = ens.predict(dummy_inputs(cells))
        assert out.mean == 1.5
        assert not ens.sleep_enabled  # nothing to schedule with one cell


class TestSleepRecovery:
    def run_steps(self, ens, cells, truth, steps):
        for _ in range(steps):
            inputs = dummy_inputs(ens.awake_cells())
            out = ens.predict(inputs)
            ens.update(truth, out.components)

    def test_bad_predictor_falls_asleep(self):
        ens, cells = make_ensemble([0.0, 0.0, 50.0], variance=0.01)
        self_cells = cells
        self.run_steps(ens, self_cells, truth=0.0, steps=5)
        bad = self_cells[2]
        assert ens.state(bad).asleep
        assert bad not in ens.awake_cells()

    def test_sleeper_recovers_at_eta(self):
        ens, cells = make_ensemble([0.0, 0.0, 50.0], variance=0.01)
        self.run_steps(ens, cells, truth=0.0, steps=2)  # falls asleep (span 1)
        assert ens.state(cells[2]).asleep
        self.run_steps(ens, cells, truth=0.0, steps=1)  # wakes up
        st = ens.state(cells[2])
        assert not st.asleep
        assert st.weight == pytest.approx(ens.eta)
        assert st.just_recovered

    def test_sleep_span_doubles_on_immediate_resleep(self):
        ens, cells = make_ensemble([0.0, 0.0, 50.0], variance=0.01)
        spans = []
        for _ in range(20):
            self.run_steps(ens, cells, truth=0.0, steps=1)
            spans.append(ens.state(cells[2]).sleep_span)
        assert max(spans) >= 4  # doubled at least twice

    def test_surviving_predictor_halves_span(self):
        ens, cells = make_ensemble([0.0, 0.1], variance=1.0)
        ens.state(cells[0]).sleep_span = 8
        self.run_steps(ens, cells, truth=0.0, steps=3)
        assert ens.state(cells[0]).sleep_span == 1

    def test_never_all_asleep(self):
        ens, cells = make_ensemble([10.0, 20.0, 30.0], variance=0.01)
        self.run_steps(ens, cells, truth=0.0, steps=30)
        assert len(ens.awake_cells()) >= 1

    def test_awake_weights_always_normalised(self):
        ens, cells = make_ensemble([0.0, 5.0, 50.0], variance=0.01)
        for _ in range(15):
            self.run_steps(ens, cells, truth=0.0, steps=1)
            assert sum(ens.weights().values()) == pytest.approx(1.0)


class TestValidation:
    def test_empty_cells(self):
        with pytest.raises(ValueError):
            AdaptiveEnsemble([], lambda c: FixedPredictor(0.0))

    def test_duplicate_cells(self):
        with pytest.raises(ValueError):
            AdaptiveEnsemble(
                [(1, 8), (1, 8)], lambda c: FixedPredictor(0.0)
            )


from hypothesis import settings as hsettings
from hypothesis import strategies as hst
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule


class EnsembleMachine(RuleBasedStateMachine):
    """Random prediction/update traffic must never break the invariants."""

    def __init__(self):
        super().__init__()
        cells = [(k, 8) for k in (1, 2, 3, 4)]
        means = {cell: float(i) for i, cell in enumerate(cells)}
        self.ensemble = AdaptiveEnsemble(
            cells,
            lambda cell: FixedPredictor(means[cell], 0.05),
            self_adaptive=True,
            sleep_enabled=True,
        )

    @rule(truth=hst.floats(-5.0, 5.0, allow_nan=False))
    def predict_and_update(self, truth):
        inputs = {
            cell: (np.zeros(8), np.zeros((2, 8)), np.zeros(2))
            for cell in self.ensemble.awake_cells()
        }
        out = self.ensemble.predict(inputs)
        self.ensemble.update(truth, out.components)

    @invariant()
    def someone_is_awake(self):
        assert len(self.ensemble.awake_cells()) >= 1

    @invariant()
    def awake_weights_normalised(self):
        weights = self.ensemble.weights()
        if weights:
            assert abs(sum(weights.values()) - 1.0) < 1e-9
            assert all(w >= 0 for w in weights.values())

    @invariant()
    def sleep_state_consistent(self):
        for cell in self.ensemble.cells:
            st = self.ensemble.state(cell)
            assert st.sleep_span >= 1
            if st.asleep:
                assert st.sleep_remaining >= 0
                assert st.weight == 0.0


EnsembleMachine.TestCase.settings = hsettings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestEnsembleStateMachine = EnsembleMachine.TestCase
