"""Tests for the deterministic fault-injection layer (repro.faults)."""

import numpy as np
import pytest

from repro.backend import (
    GpuMemoryError,
    NativeBackend,
    SimulatedGpuBackend,
    make_backend,
)
from repro.faults import (
    FAULT_PROFILE_ENV_VAR,
    FAULT_PROFILE_NAMES,
    BackendDeadError,
    FaultInjectingBackend,
    FaultProfile,
    KernelFaultError,
    as_fault_profile,
    parse_fault_profile,
)


def wrapped(profile, inner=None):
    return FaultInjectingBackend(inner or NativeBackend(), profile)


QUERY = np.sin(np.arange(8.0))
CANDS = np.stack([np.sin(np.arange(8.0) + i / 7.0) for i in range(6)])


class TestFaultProfile:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultProfile(kernel_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(malloc_error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultProfile(added_latency_s=-1e-9)
        with pytest.raises(ValueError):
            FaultProfile(dies_at_tick=-1)
        with pytest.raises(ValueError):
            FaultProfile(burst=(5, 5))

    def test_is_null(self):
        assert FaultProfile().is_null
        assert not FaultProfile(kernel_error_rate=0.1).is_null
        assert not FaultProfile(dies_at_tick=0).is_null

    def test_burst_window_half_open(self):
        profile = FaultProfile(burst=(3, 5))
        assert not profile.in_burst(2)
        assert profile.in_burst(3)
        assert profile.in_burst(4)
        assert not profile.in_burst(5)
        assert FaultProfile().in_burst(10**6)  # no burst = always on

    def test_named_profiles_parse(self):
        for name in FAULT_PROFILE_NAMES:
            profile = parse_fault_profile(name)
            assert profile.name == name

    def test_spec_parsing(self):
        profile = parse_fault_profile(
            "kernel_error=0.25,seed=7,burst=10:20,dies_at=99"
        )
        assert profile.kernel_error_rate == 0.25
        assert profile.seed == 7
        assert profile.burst == (10, 20)
        assert profile.dies_at_tick == 99

    def test_spec_with_named_base(self):
        profile = parse_fault_profile("flaky-kernels,seed=3")
        assert profile.kernel_error_rate == 0.05  # from the base
        assert profile.seed == 3  # overridden

    def test_spec_rejects_unknown_keys_and_names(self):
        with pytest.raises(ValueError, match="unknown fault-profile key"):
            parse_fault_profile("frobnicate=1")
        with pytest.raises(ValueError, match="unknown fault profile"):
            parse_fault_profile("not-a-profile")
        with pytest.raises(ValueError):
            parse_fault_profile("   ")

    def test_as_fault_profile_coercion(self):
        assert as_fault_profile(None) is None
        assert as_fault_profile("none") is None  # null profile -> no wrap
        assert as_fault_profile(FaultProfile()) is None
        profile = as_fault_profile("kernel_error=0.5")
        assert isinstance(profile, FaultProfile)
        with pytest.raises(TypeError):
            as_fault_profile(42)


class TestFaultInjectingBackend:
    def test_transparent_when_quiet(self):
        inner = NativeBackend()
        backend = wrapped(FaultProfile(seed=1), inner)
        assert backend.name == inner.name
        out = backend.dtw_verification(QUERY, CANDS, rho=2)
        np.testing.assert_array_equal(
            out, inner.dtw_verification(QUERY, CANDS, rho=2)
        )

    def test_refuses_stacking(self):
        backend = wrapped(FaultProfile())
        with pytest.raises(ValueError, match="stack"):
            FaultInjectingBackend(backend, FaultProfile())

    def test_deterministic_same_seed_same_faults(self):
        def trace(seed):
            backend = wrapped(FaultProfile(seed=seed, kernel_error_rate=0.4))
            events = []
            for _ in range(40):
                try:
                    backend.dtw_verification(QUERY, CANDS, rho=2)
                    events.append("ok")
                except KernelFaultError:
                    events.append("fault")
            return events

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)  # different stream, different story

    def test_nan_corruption_marks_exactly_one_entry(self):
        backend = wrapped(FaultProfile(seed=0, kernel_nan_rate=1.0))
        out = backend.dtw_verification(QUERY, CANDS, rho=2)
        assert np.isnan(out).sum() == 1
        assert backend.injected["kernel_nan"] == 1

    def test_k_select_never_corrupted(self):
        backend = wrapped(FaultProfile(seed=0, kernel_nan_rate=1.0))
        out = backend.k_select(np.array([3.0, 1.0, 2.0]), 2)
        np.testing.assert_array_equal(out, [1, 2])

    def test_dies_at_tick_kills_everything(self):
        backend = wrapped(FaultProfile(dies_at_tick=2))
        backend.dtw_verification(QUERY, CANDS, rho=2)  # tick 0
        backend.malloc(64, "ok")  # tick 1
        with pytest.raises(BackendDeadError):
            backend.dtw_verification(QUERY, CANDS, rho=2)
        with pytest.raises(BackendDeadError):
            backend.malloc(64, "dead")
        with pytest.raises(BackendDeadError):
            backend.free(object())
        assert backend.injected["dead_op"] == 3

    def test_burst_gates_the_rates(self):
        backend = wrapped(
            FaultProfile(seed=0, kernel_error_rate=1.0, burst=(2, 3))
        )
        backend.dtw_verification(QUERY, CANDS, rho=2)  # tick 0: pre-burst
        backend.dtw_verification(QUERY, CANDS, rho=2)  # tick 1: pre-burst
        with pytest.raises(KernelFaultError):
            backend.dtw_verification(QUERY, CANDS, rho=2)  # tick 2: burst
        backend.dtw_verification(QUERY, CANDS, rho=2)  # tick 3: post-burst

    def test_injected_latency_lands_in_elapsed(self):
        inner = SimulatedGpuBackend()
        backend = wrapped(FaultProfile(added_latency_s=1e-3), inner)
        backend.dtw_verification(QUERY, CANDS, rho=2)
        backend.full_dtw(QUERY, CANDS)
        assert backend.elapsed_s == pytest.approx(inner.elapsed_s + 2e-3)
        backend.reset_time()
        assert backend.elapsed_s == 0.0

    def test_malloc_fault_is_a_gpu_memory_error(self):
        backend = wrapped(FaultProfile(seed=0, malloc_error_rate=1.0))
        with pytest.raises(GpuMemoryError):
            backend.malloc(64, "buf")
        assert backend.injected["malloc_error"] == 1
        assert backend.allocated_bytes == 0  # nothing leaked on the inner

    def test_getattr_delegates_to_inner(self):
        inner = SimulatedGpuBackend()
        backend = wrapped(FaultProfile(), inner)
        assert backend.device is inner.device  # simulated-only extra


class TestWiring:
    def test_make_backend_wraps(self):
        backend = make_backend("simulated", fault_profile="kernel_error=0.5")
        assert isinstance(backend, FaultInjectingBackend)
        assert backend.name == "simulated"

    def test_make_backend_skips_null_profiles(self):
        assert not isinstance(
            make_backend("native", fault_profile=None), FaultInjectingBackend
        )
        assert not isinstance(
            make_backend("native", fault_profile="none"), FaultInjectingBackend
        )

    def test_env_var_selects_profile(self, monkeypatch):
        from repro.backend import default_backend

        monkeypatch.setenv(FAULT_PROFILE_ENV_VAR, "flaky-kernels")
        backend = default_backend()
        assert isinstance(backend, FaultInjectingBackend)
        assert backend.profile.name == "flaky-kernels"
        monkeypatch.delenv(FAULT_PROFILE_ENV_VAR)
        assert not isinstance(default_backend(), FaultInjectingBackend)
