"""Tests for the naive reference forecasters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DriftForecaster,
    MeanForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
)


class TestPersistence:
    def test_forecast_is_last_value(self):
        mean, var = PersistenceForecaster().predict(np.array([1.0, 2.0, 7.0]), 3)
        assert mean == 7.0
        assert var > 0

    def test_variance_linear_in_horizon(self):
        context = np.random.default_rng(0).normal(size=100)
        model = PersistenceForecaster()
        v1 = model.predict(context, 1)[1]
        v4 = model.predict(context, 4)[1]
        assert v4 == pytest.approx(4 * v1)

    def test_optimal_on_random_walk(self):
        """On a pure random walk nothing should beat persistence."""
        rng = np.random.default_rng(1)
        walk = np.cumsum(rng.normal(size=2000))
        persistence_errors, mean_errors = [], []
        p, m = PersistenceForecaster(), MeanForecaster()
        for t in range(1500, 1600):
            persistence_errors.append(abs(p.predict(walk[:t], 1)[0] - walk[t]))
            mean_errors.append(abs(m.predict(walk[:t], 1)[0] - walk[t]))
        assert np.mean(persistence_errors) < np.mean(mean_errors)

    def test_validation(self):
        with pytest.raises(ValueError):
            PersistenceForecaster().predict(np.array([1.0]), 1)
        with pytest.raises(ValueError):
            PersistenceForecaster().predict(np.arange(5.0), 0)


class TestMean:
    def test_forecast_is_mean(self):
        mean, _ = MeanForecaster().predict(np.array([2.0, 4.0]), 1)
        assert mean == 3.0

    def test_variance_positive_even_for_constant(self):
        _, var = MeanForecaster().predict(np.full(10, 3.0), 1)
        assert var > 0


class TestDrift:
    def test_extrapolates_line(self):
        context = np.linspace(0.0, 9.0, 10)  # slope exactly 1
        mean, var = DriftForecaster().predict(context, 5)
        assert mean == pytest.approx(14.0)
        assert var > 0

    def test_variance_superlinear(self):
        context = np.random.default_rng(2).normal(size=50).cumsum()
        model = DriftForecaster()
        v1 = model.predict(context, 1)[1]
        v10 = model.predict(context, 10)[1]
        assert v10 > 10 * v1

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftForecaster().predict(np.array([1.0, 2.0]), 1)


class TestSeasonalNaive:
    def test_repeats_last_season(self):
        season = np.array([1.0, 2.0, 3.0, 4.0])
        context = np.tile(season, 5)
        model = SeasonalNaiveForecaster(period=4)
        for h in range(1, 9):
            mean, _ = model.predict(context, h)
            assert mean == season[(h - 1) % 4]

    def test_perfect_on_periodic_data(self):
        t = np.arange(600)
        stream = np.sin(2 * np.pi * t / 24)
        model = SeasonalNaiveForecaster(period=24)
        for t0 in range(500, 520):
            mean, _ = model.predict(stream[:t0], 1)
            assert mean == pytest.approx(stream[t0], abs=1e-9)

    def test_variance_steps_per_season(self):
        context = np.random.default_rng(3).normal(size=200)
        model = SeasonalNaiveForecaster(period=10)
        v1 = model.predict(context, 1)[1]
        v11 = model.predict(context, 11)[1]
        assert v11 == pytest.approx(2 * v1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaiveForecaster(period=1)
        model = SeasonalNaiveForecaster(period=50)
        with pytest.raises(ValueError):
            model.predict(np.zeros(60), 1)

    @settings(max_examples=20, deadline=None)
    @given(
        period=st.integers(2, 12),
        h=st.integers(1, 30),
        seed=st.integers(0, 100),
    )
    def test_always_finite(self, period, h, seed):
        rng = np.random.default_rng(seed)
        context = rng.normal(size=5 * period)
        mean, var = SeasonalNaiveForecaster(period).predict(context, h)
        assert np.isfinite(mean)
        assert var > 0
