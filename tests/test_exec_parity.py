"""Differential tests: every execution engine serves identical bits.

The engine contract (``docs/architecture.md``, "Execution engines") is
that ``inline``, ``thread`` and ``process`` are *indistinguishable*
through the public API on a healthy pool: the same
:class:`~repro.service.Forecast` floats, the same
:attr:`~repro.service.ForecastBatch.errors` (type and message), the same
per-backend simulated-time ledgers.  These tests pin that contract
differentially — identically-constructed services, one per engine,
driven through the same 52-sensor / 4-backend workload — then exercise
the process engine's crash semantics (a SIGKILLed shard worker must
evacuate, never hang) and its flush-on-close telemetry drain.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import obs
from repro.backend import BACKEND_NAMES, make_backend
from repro.core import SMiLerConfig
from repro.exec import ENGINE_ENV_VAR, ENGINE_NAMES
from repro.faults import FaultProfile
from repro.service import (
    PredictionService,
    ResiliencePolicy,
    ServiceConfig,
)

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1, 3),
    predictor="ar",
)

N_SENSORS = 52
N_BACKENDS = 4
HISTORY_POINTS = 280


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def make_workload(n_sensors=N_SENSORS, n_points=HISTORY_POINTS, n_future=8):
    """Seeded histories + future readings, shared across engines."""
    rng = np.random.default_rng(1234)
    histories, futures = {}, {}
    for i in range(n_sensors):
        sensor_id = f"s{i:03d}"
        phase = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n_points + n_future)
        wave = 100.0 + 25.0 * np.sin(t / 7.0 + phase)
        wave += 0.05 * rng.normal(size=t.size)
        histories[sensor_id] = wave[:n_points]
        futures[sensor_id] = wave[n_points:]
    return histories, futures


def build_service(
    backend_name,
    engine,
    n_backends=N_BACKENDS,
    fault_profiles=None,
    resilience=None,
    **config_kwargs,
):
    backends = [
        make_backend(
            backend_name,
            fault_profile=None if fault_profiles is None else fault_profiles[i],
        )
        for i in range(n_backends)
    ]
    return PredictionService(
        CONFIG,
        backends=backends,
        min_history=100,
        resilience=resilience,
        service_config=ServiceConfig(
            engine=engine, max_workers=4, **config_kwargs
        ),
    )


def drive(service, histories, futures, rounds=2, singles=4):
    """Register the fleet, alternate batch ops, sprinkle single ops.

    Returns ``(batches, single_forecasts)`` and *closes the service*, so
    the process engine's workers are flushed and state authority is back
    in the parent before the caller inspects ledgers.
    """
    try:
        for sensor_id, history in histories.items():
            service.register(sensor_id, history)
        batches, single_forecasts = [], {}
        single_ids = sorted(histories)[:singles]
        for step in range(rounds):
            batches.append(service.forecast_all())
            for sensor_id in single_ids:  # singles ride the same engine
                try:
                    single_forecasts[(step, sensor_id)] = service.forecast(
                        sensor_id
                    )
                except Exception as error:  # parity includes failures
                    single_forecasts[(step, sensor_id)] = (
                        type(error).__name__, str(error)
                    )
            service.ingest_many(
                {sid: float(futures[sid][step]) for sid in histories}
            )
        batches.append(service.forecast_all())
        placements = {sid: service.placement_of(sid) for sid in histories}
    finally:
        service.close()
    elapsed = [backend.elapsed_s for backend in service.backends]
    return batches, single_forecasts, placements, elapsed


def assert_batches_identical(reference, other):
    """Bit-identical forecasts and matching error side-channels."""
    assert len(reference) == len(other)
    for batch_ref, batch_other in zip(reference, other):
        # Forecast is a frozen dataclass: == compares every float exactly.
        assert dict(batch_ref) == dict(batch_other)
        assert set(batch_ref.errors) == set(batch_other.errors)
        for sensor_id, error_ref in batch_ref.errors.items():
            error_other = batch_other.errors[sensor_id]
            assert type(error_ref) is type(error_other)
            assert str(error_ref) == str(error_other)


class TestEngineResolution:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            ServiceConfig(engine="gpu-cluster")
        with pytest.raises(ValueError):
            ServiceConfig(engine_timeout_s=0.0)

    def test_explicit_engine_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "process")
        assert ServiceConfig(engine="inline").resolved_engine(4) == "inline"

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "process")
        assert ServiceConfig().resolved_engine(1) == "process"
        monkeypatch.setenv(ENGINE_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            ServiceConfig().resolved_engine(1)

    def test_default_tracks_worker_count(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert ServiceConfig().resolved_engine(1) == "inline"
        assert ServiceConfig().resolved_engine(4) == "thread"

    def test_status_reports_engine(self):
        service = build_service("native", engine="thread", n_backends=2)
        try:
            assert service.status()["engine"] == "thread"
        finally:
            service.close()


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
class TestEngineParity:
    """All three engines, both backends: indistinguishable bits."""

    def test_fault_free_bit_identical(self, backend_name):
        histories, futures = make_workload()
        results = {}
        for engine in ENGINE_NAMES:
            results[engine] = drive(
                build_service(backend_name, engine), histories, futures
            )
        ref_batches, ref_singles, ref_placements, ref_elapsed = results[
            "inline"
        ]
        assert all(len(batch) == N_SENSORS for batch in ref_batches)
        assert all(batch.ok for batch in ref_batches)
        for engine in ("thread", "process"):
            batches, singles, placements, elapsed = results[engine]
            assert_batches_identical(ref_batches, batches)
            assert singles == ref_singles  # frozen dataclass, exact floats
            assert placements == ref_placements
            assert elapsed == ref_elapsed  # exact float equality
        if backend_name == "simulated":
            assert all(s > 0.0 for s in ref_elapsed)

    def test_error_side_channel_identical(self, backend_name):
        """Deterministic injected faults cross the process boundary with
        their type and message intact, and land on the same sensors."""
        histories, futures = make_workload(n_sensors=24)
        profiles = [
            FaultProfile(seed=100 + i, kernel_error_rate=0.08,
                         kernel_nan_rate=0.05)
            for i in range(N_BACKENDS)
        ]
        policy = ResiliencePolicy(
            attempts=1, ladder=("ensemble",), failover=False
        )
        results = {}
        for engine in ENGINE_NAMES:
            service = build_service(
                backend_name, engine,
                fault_profiles=profiles, resilience=policy,
            )
            results[engine] = drive(service, histories, futures, rounds=3)
        ref_batches = results["inline"][0]
        # The profile rates make silence astronomically unlikely: the
        # test must actually exercise the error side-channel.
        assert any(batch.errors for batch in ref_batches)
        assert any(len(batch) > 0 for batch in ref_batches)
        for engine in ("thread", "process"):
            assert_batches_identical(ref_batches, results[engine][0])


class TestWorkerCrash:
    """SIGKILL a shard worker: the batch completes (no hang), the dead
    shard's sensors evacuate to survivors, and serving continues."""

    N_CRASH_BACKENDS = 3
    N_CRASH_SENSORS = 9

    def _build(self):
        return build_service(
            "simulated", "process",
            n_backends=self.N_CRASH_BACKENDS,
            engine_timeout_s=20.0,
        )

    def test_killed_worker_evacuates_without_hanging(self):
        histories, futures = make_workload(n_sensors=self.N_CRASH_SENSORS)
        service = self._build()
        try:
            for sensor_id, history in histories.items():
                service.register(sensor_id, history)
            # Snapshot placements first: placement_of() refreshes the
            # engine, and refreshing a process engine flushes (retires)
            # the live worker generation.
            placements = {
                sid: service.placement_of(sid) for sid in histories
            }
            first = service.forecast_all()  # forks the workers
            assert first.ok and len(first) == self.N_CRASH_SENSORS
            pids = service.engine.worker_pids()
            assert len(pids) == self.N_CRASH_BACKENDS
            victim_index = sorted(pids)[0]
            evacuees = {
                sid for sid in histories if placements[sid] == victim_index
            }
            assert evacuees  # greedy balancing hosts >= 1 per backend
            os.kill(pids[victim_index], signal.SIGKILL)

            started = time.monotonic()
            batch = service.forecast_all()
            # Liveness: crash detection polls the process, it never sits
            # out the full timeout, let alone hangs.
            assert time.monotonic() - started < 15.0
            # Completeness: every sensor is accounted for exactly once.
            assert set(batch) | set(batch.errors) == set(histories)
            assert not set(batch) & set(batch.errors)

            # Evacuation: the dead shard's sensors moved to survivors
            # and the backend is out of the admission rotation.
            for sensor_id in evacuees:
                assert service.placement_of(sensor_id) != victim_index
            assert service._pool.state(victim_index) == "open"
            assert service.sensors_per_backend()[victim_index] == 0

            # The service stays serviceable on the survivor generation.
            service.ingest_many(
                {sid: float(futures[sid][0]) for sid in histories}
            )
            again = service.forecast_all()
            assert set(again) | set(again.errors) == set(histories)
            live = service.engine.worker_pids()
            assert pids[victim_index] not in live.values()
        finally:
            service.close()

    def test_crash_recovery_preserves_committed_history(self):
        """Recovered sensors are rebuilt from the shared-memory series:
        ingests committed before the crash survive into the rebuild."""
        histories, futures = make_workload(n_sensors=6)
        service = self._build()
        try:
            for sensor_id, history in histories.items():
                service.register(sensor_id, history)
            placements = {  # before forking; see the liveness test
                sid: service.placement_of(sid) for sid in histories
            }
            service.forecast_all()
            service.ingest_many(  # committed by the batch boundary
                {sid: float(futures[sid][0]) for sid in histories}
            )
            pids = service.engine.worker_pids()
            victim_index = sorted(pids)[0]
            evacuees = [
                sid for sid in histories if placements[sid] == victim_index
            ]
            os.kill(pids[victim_index], signal.SIGKILL)
            service.forecast_all()
            for sensor_id in evacuees:
                series = service.sensor(sensor_id).series
                assert series.size == HISTORY_POINTS + 1
        finally:
            service.close()


class TestFlushTelemetry:
    """Worker-side observability drains back to the parent — both per
    batch and on graceful teardown — with request accounting intact."""

    def test_no_request_events_lost_on_teardown(self):
        obs.enable()
        histories, futures = make_workload(n_sensors=6)
        service = build_service(
            "simulated", "process", n_backends=2
        )
        requests = 0
        try:
            for sensor_id, history in histories.items():
                service.register(sensor_id, history)
            for step in range(2):
                service.forecast_all()
                requests += 1
                for sensor_id in sorted(histories)[:3]:
                    service.forecast(sensor_id)
                    requests += 1
                service.ingest_many(
                    {sid: float(futures[sid][step]) for sid in histories}
                )
                requests += 1
        finally:
            # Teardown right after a batch: the workers still hold their
            # undrained telemetry tails until the FLUSH on close().
            service.close()
        events = obs.get_event_log().tail(10_000)
        kinds = [event["kind"] for event in events]
        assert kinds.count("request_start") == requests
        assert kinds.count("request_end") == requests
        assert obs.get_event_log().dropped_total == 0

    def test_worker_metrics_merge_into_parent_registry(self):
        obs.enable()
        histories, _ = make_workload(n_sensors=4)
        service = build_service("simulated", "process", n_backends=2)
        try:
            for sensor_id, history in histories.items():
                service.register(sensor_id, history)
            batch = service.forecast_all()
            assert batch.ok
        finally:
            service.close()
        metrics = obs.to_json(obs.get_registry())
        forecasts = metrics["smiler_forecasts_total"]
        total = sum(entry["value"] for entry in forecasts["series"])
        assert total >= len(histories)
