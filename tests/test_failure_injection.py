"""Failure-injection tests: the system must degrade, not crash.

Sensors misbehave: they emit stuck values, spikes, dropouts, constant
streams and NaNs.  These tests feed each failure through the full
SMiLer pipeline and assert the contract: clear errors for invalid input
(NaN), finite predictions with positive variance for everything else.
"""

import numpy as np
import pytest

from repro.core import SMiLer, SMiLerConfig
from repro.timeseries import inject_dropout, inject_spike

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,),
    predictor="gp", initial_train_iters=5, online_train_iters=2,
)


def healthy_history(n=600, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 7.0) + 0.05 * rng.normal(size=n)


def run_steps(smiler, values):
    outputs = []
    for value in values:
        outputs.append(smiler.predict()[1])
        smiler.observe(float(value))
    return outputs


class TestStuckSensor:
    def test_stuck_at_zero_stream(self):
        smiler = SMiLer(healthy_history(), CONFIG)
        outputs = run_steps(smiler, np.zeros(15))
        for out in outputs:
            assert np.isfinite(out.mean)
            assert out.variance > 0

    def test_constant_history(self):
        """A sensor that never changed still yields a working predictor."""
        smiler = SMiLer(np.full(400, 2.5), CONFIG)
        out = smiler.predict()[1]
        assert out.mean == pytest.approx(2.5, abs=0.2)
        assert out.variance > 0


class TestSpikesAndDropouts:
    def test_spiked_history(self):
        injected = inject_spike(healthy_history(), start=300, magnitude=50.0, length=3)
        smiler = SMiLer(injected.values, CONFIG)
        outputs = run_steps(smiler, healthy_history(20, seed=1))
        assert all(np.isfinite(o.mean) for o in outputs)

    def test_dropout_history(self):
        injected = inject_dropout(healthy_history(), start=200, length=50)
        smiler = SMiLer(injected.values, CONFIG)
        out = smiler.predict()[1]
        assert np.isfinite(out.mean) and out.variance > 0

    def test_extreme_observation_mid_stream(self):
        smiler = SMiLer(healthy_history(seed=2), CONFIG)
        smiler.predict()
        smiler.observe(1e6)  # absurd reading
        out = smiler.predict()[1]
        assert np.isfinite(out.mean)
        assert out.variance > 0

    def test_recovers_after_extreme_observation(self):
        """Accuracy recovers; poisoned neighbourhoods self-flag via variance.

        Once the outlier is history, most steps are accurate again.  Lazy
        learning cannot *hide* a poisoned target — when a retrieved
        neighbourhood contains the 1e6 value the mean blows up — but the
        predictive variance blows up with it, so the z-score stays sane
        (the uncertainty output is doing its job).
        """
        history = healthy_history(seed=3)
        smiler = SMiLer(history, CONFIG)
        smiler.predict()
        smiler.observe(1e6)
        errors, z_scores = [], []
        future = healthy_history(30, seed=4)
        for value in future:
            out = smiler.predict()[1]
            errors.append(abs(out.mean - value))
            z_scores.append(abs(out.mean - value) / np.sqrt(out.variance))
            smiler.observe(float(value))
        late = np.asarray(errors[10:])
        assert float(np.median(late)) < 0.5
        assert float(np.mean(late < 1.0)) >= 0.8
        assert max(z_scores) < 50.0


class TestInvalidInput:
    def test_nan_history_rejected_or_flagged(self):
        history = healthy_history()
        history[100] = np.nan
        # NaNs poison DTW silently, so construction/prediction must not
        # return NaN predictions without any signal: the contract is
        # "either raise, or produce finite output".
        try:
            smiler = SMiLer(history, CONFIG)
            out = smiler.predict()[1]
        except (ValueError, FloatingPointError):
            return
        assert not np.isfinite(out.mean) or np.isfinite(out.variance)

    def test_too_short_history_raises(self):
        with pytest.raises((ValueError, IndexError)):
            SMiLer(np.zeros(8), CONFIG).predict()
