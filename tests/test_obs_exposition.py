"""Unit tests for metric exposition (repro.obs.exposition)."""

import json

from repro.obs.exposition import to_json, to_prometheus
from repro.obs.registry import MetricsRegistry


def make_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    c = registry.counter(
        "smiler_requests_total", "Requests served.", label_names=("sensor",)
    )
    c.inc(3, sensor="a")
    c.inc(sensor="b")
    registry.gauge("smiler_memory_bytes", "Allocated bytes.").set(4096)
    h = registry.histogram(
        "smiler_latency_seconds", "Latency.", buckets=(0.1, 1.0)
    )
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return registry


class TestPrometheusText:
    def test_headers_and_counter_lines(self):
        text = to_prometheus(make_registry())
        assert "# HELP smiler_requests_total Requests served." in text
        assert "# TYPE smiler_requests_total counter" in text
        assert 'smiler_requests_total{sensor="a"} 3' in text
        assert 'smiler_requests_total{sensor="b"} 1' in text

    def test_gauge_line(self):
        text = to_prometheus(make_registry())
        assert "# TYPE smiler_memory_bytes gauge" in text
        assert "smiler_memory_bytes 4096" in text

    def test_histogram_buckets_sum_count(self):
        text = to_prometheus(make_registry())
        assert 'smiler_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'smiler_latency_seconds_bucket{le="1"} 2' in text
        assert 'smiler_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "smiler_latency_seconds_sum 5.55" in text
        assert "smiler_latency_seconds_count 3" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        c = registry.counter("odd_total", label_names=("path",))
        c.inc(path='say "hi"\nback\\slash')
        text = to_prometheus(registry)
        assert r'path="say \"hi\"\nback\\slash"' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonSnapshot:
    def test_structure_and_values(self):
        snapshot = to_json(make_registry())
        counter = snapshot["smiler_requests_total"]
        assert counter["kind"] == "counter"
        assert counter["label_names"] == ["sensor"]
        values = {
            s["labels"]["sensor"]: s["value"] for s in counter["series"]
        }
        assert values == {"a": 3, "b": 1}

    def test_histogram_series_detail(self):
        snapshot = to_json(make_registry())
        hist = snapshot["smiler_latency_seconds"]
        assert hist["buckets"] == [0.1, 1.0]
        (series,) = hist["series"]
        assert series["count"] == 3
        assert series["sum"] == 5.55
        assert series["bucket_counts"] == [1, 2, 3]
        assert 0.0 < series["p50"] <= 1.0

    def test_snapshot_is_json_serialisable(self):
        text = json.dumps(to_json(make_registry()))
        assert "smiler_memory_bytes" in text
