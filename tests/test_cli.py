"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRun:
    def test_run_fig1(self, capsys):
        assert main(["run", "fig1", "--preset", "tiny"]) == 0
        assert "TFLOPS" in capsys.readouterr().out

    def test_run_fig8_tiny(self, capsys):
        assert main(["run", "fig8", "--preset", "tiny"]) == 0
        assert "SMiLer-Idx" in capsys.readouterr().out

    def test_run_ablation_window_tiny(self, capsys):
        assert main(["run", "ablation-window", "--preset", "tiny"]) == 0
        assert "ring update" in capsys.readouterr().out

    def test_out_file(self, tmp_path, capsys):
        out = tmp_path / "nested" / "fig1.txt"
        assert main(["run", "fig1", "--out", str(out)]) == 0
        assert out.exists()
        assert "TFLOPS" in out.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])


class TestMetricsOut:
    def test_run_writes_metrics_snapshot(self, tmp_path, capsys):
        import json

        out = tmp_path / "fig8_metrics.json"
        assert main(
            ["run", "fig8", "--preset", "tiny", "--metrics-out", str(out)]
        ) == 0
        snapshot = json.loads(out.read_text())
        assert "smiler_gpu_kernel_launches_total" in snapshot

    def test_run_without_flag_stays_uninstrumented(self, capsys):
        from repro import obs

        assert main(["run", "fig1", "--preset", "tiny"]) == 0
        assert not obs.is_enabled()


class TestStats:
    def test_stats_prints_trace_and_prometheus(self, capsys):
        assert main(
            ["stats", "--dataset", "MALL", "--steps", "2",
             "--predictor", "ar"]
        ) == 0
        out = capsys.readouterr().out
        assert "forecast" in out
        assert "search" in out
        assert "smiler_gpu_kernel_launches_total" in out
        assert "smiler_forecast_latency_seconds_bucket" in out

    def test_stats_json_format(self, capsys):
        import json

        assert main(
            ["stats", "--dataset", "MALL", "--steps", "1",
             "--predictor", "ar", "--format", "json"]
        ) == 0
        out = capsys.readouterr().out
        payload = out.split("== metrics ==\n", 1)[1]
        snapshot = json.loads(payload)
        assert "smiler_forecasts_total" in snapshot

    def test_stats_validation(self):
        with pytest.raises(SystemExit):
            main(["stats", "--steps", "0"])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--dataset", "MALL", "--steps", "3",
                     "--predictor", "ar"]) == 0
        out = capsys.readouterr().out
        assert "MALL sensor" in out
        assert out.count("\n") >= 4

    def test_demo_validation(self):
        with pytest.raises(SystemExit):
            main(["demo", "--steps", "0"])

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            main(["demo", "--dataset", "XX", "--steps", "2"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiment_registry_matches_harness(self):
        import repro.harness as harness

        for driver_name, _ in EXPERIMENTS.values():
            assert hasattr(harness, driver_name), driver_name


class TestRunAll:
    def test_run_all_tiny_subset(self, tmp_path, capsys, monkeypatch):
        """run-all with a trimmed registry writes every report file."""
        import repro.cli as cli

        trimmed = {
            "fig1": cli.EXPERIMENTS["fig1"],
            "ablation-window": cli.EXPERIMENTS["ablation-window"],
        }
        monkeypatch.setattr(cli, "EXPERIMENTS", trimmed)
        assert cli.main([
            "run-all", "--preset", "tiny", "--out-dir", str(tmp_path)
        ]) == 0
        assert (tmp_path / "fig1.txt").exists()
        assert (tmp_path / "ablation_window.txt").exists()
