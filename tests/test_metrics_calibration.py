"""Tests for the calibration diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    calibration_error,
    interval_coverage,
    pit_values,
    sharpness,
)


def calibrated_sample(n=5000, seed=0):
    """Truths drawn exactly from the claimed predictive distributions."""
    rng = np.random.default_rng(seed)
    means = rng.normal(size=n)
    variances = rng.uniform(0.5, 2.0, size=n)
    truth = means + np.sqrt(variances) * rng.normal(size=n)
    return truth, means, variances


class TestCoverage:
    def test_calibrated_model_covers_nominally(self):
        truth, means, variances = calibrated_sample()
        for level in (0.5, 0.9, 0.99):
            cover = interval_coverage(truth, means, variances, level=level)
            assert cover == pytest.approx(level, abs=0.03)

    def test_overconfident_model_undercovers(self):
        truth, means, variances = calibrated_sample(seed=1)
        cover = interval_coverage(truth, means, variances / 9.0, level=0.95)
        assert cover < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_coverage([0.0], [0.0], [1.0], level=1.0)
        with pytest.raises(ValueError):
            interval_coverage([0.0], [0.0], [0.0])
        with pytest.raises(ValueError):
            interval_coverage([], [], [])
        with pytest.raises(ValueError):
            interval_coverage([0.0, 1.0], [0.0], [1.0])


class TestPit:
    def test_calibrated_pit_is_uniform(self):
        truth, means, variances = calibrated_sample(seed=2)
        pit = pit_values(truth, means, variances)
        assert pit.min() >= 0.0 and pit.max() <= 1.0
        assert float(pit.mean()) == pytest.approx(0.5, abs=0.02)
        # Roughly uniform deciles.
        counts, _ = np.histogram(pit, bins=10, range=(0, 1))
        assert counts.min() > 0.7 * len(pit) / 10

    def test_known_value(self):
        pit = pit_values([0.0], [0.0], [1.0])
        assert pit[0] == pytest.approx(0.5)

    def test_biased_model_skews_pit(self):
        truth, means, variances = calibrated_sample(seed=3)
        pit = pit_values(truth, means - 2.0, variances)
        assert float(pit.mean()) > 0.8


class TestCalibrationError:
    def test_calibrated_error_near_zero(self):
        truth, means, variances = calibrated_sample(seed=4)
        assert calibration_error(truth, means, variances) < 0.03

    def test_miscalibrated_error_large(self):
        truth, means, variances = calibrated_sample(seed=5)
        assert calibration_error(truth, means, variances * 100) > 0.2

    def test_level_validation(self):
        with pytest.raises(ValueError):
            calibration_error([0.0], [0.0], [1.0], levels=np.array([1.5]))

    @settings(max_examples=15, deadline=None)
    @given(scale=st.floats(0.1, 10.0), seed=st.integers(0, 50))
    def test_scaling_variance_never_improves_calibrated_model(self, scale, seed):
        truth, means, variances = calibrated_sample(n=2000, seed=seed)
        base = calibration_error(truth, means, variances)
        scaled = calibration_error(truth, means, variances * scale)
        if abs(scale - 1.0) > 0.5:
            assert scaled >= base - 0.02


class TestSharpness:
    def test_mean_std(self):
        assert sharpness([4.0, 16.0]) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sharpness([])
        with pytest.raises(ValueError):
            sharpness([-1.0])
