"""Smoke tests: every example imports and the fast ones run end-to-end.

Examples are the public face of the library; API drift must break CI,
not a reader's first five minutes.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert set(ALL_EXAMPLES) >= {
            "quickstart", "traffic_fleet", "suffix_knn_search",
            "uncertainty_monitoring", "custom_data", "prediction_service",
        }

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = load_example(name)
        assert callable(getattr(module, "main", None)), name

    @pytest.mark.slow
    def test_custom_data_runs(self, capsys):
        load_example("custom_data").main()
        out = capsys.readouterr().out
        assert "MAE on the raw scale" in out

    def test_suffix_knn_search_runs(self, capsys):
        load_example("suffix_knn_search").main()
        out = capsys.readouterr().out
        assert "identical kNN distances" in out
