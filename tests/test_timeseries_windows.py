"""Tests for the DualMatch window geometry and CSG alignment math."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.timeseries import (
    aligned_segment_start,
    csg_size,
    csg_window_ids,
    disjoint_window,
    disjoint_window_count,
    disjoint_windows,
    sliding_window,
    sliding_window_count,
    sliding_windows_right_to_left,
)


class TestDisjointWindows:
    def test_count(self):
        assert disjoint_window_count(12, 4) == 3
        assert disjoint_window_count(13, 4) == 3
        assert disjoint_window_count(3, 4) == 0

    def test_window_values(self):
        values = np.arange(12.0)
        np.testing.assert_array_equal(disjoint_window(values, 1, 4), [4, 5, 6, 7])

    def test_window_out_of_range(self):
        with pytest.raises(IndexError):
            disjoint_window(np.arange(8.0), 2, 4)

    def test_matrix(self):
        values = np.arange(9.0)
        mat = disjoint_windows(values, 3)
        assert mat.shape == (3, 3)
        np.testing.assert_array_equal(mat[2], [6, 7, 8])

    def test_bad_omega(self):
        with pytest.raises(ValueError):
            disjoint_window_count(10, 0)


class TestSlidingWindows:
    def test_count(self):
        assert sliding_window_count(9, 3) == 7
        assert sliding_window_count(2, 3) == 0

    def test_right_to_left_order(self):
        query = np.arange(6.0)
        # SW_0 is the rightmost omega points; SW_b shifts left by b.
        np.testing.assert_array_equal(sliding_window(query, 0, 3), [3, 4, 5])
        np.testing.assert_array_equal(sliding_window(query, 1, 3), [2, 3, 4])
        np.testing.assert_array_equal(sliding_window(query, 3, 3), [0, 1, 2])

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            sliding_window(np.arange(6.0), 4, 3)

    def test_stack(self):
        query = np.arange(5.0)
        mat = sliding_windows_right_to_left(query, 3)
        assert mat.shape == (3, 3)
        np.testing.assert_array_equal(mat[0], [2, 3, 4])
        np.testing.assert_array_equal(mat[2], [0, 1, 2])

    def test_stack_empty(self):
        assert sliding_windows_right_to_left(np.arange(2.0), 3).shape == (0, 3)


class TestCsg:
    def test_example_4_1(self):
        # Paper Example 4.1: |MQ| = 9, omega = 3.
        # CSG_0 = {SW_0, SW_3, SW_6}, CSG_1 = {SW_1, SW_4}, CSG_2 = {SW_2, SW_5}.
        assert csg_window_ids(9, 0, 3) == [0, 3, 6]
        assert csg_window_ids(9, 1, 3) == [1, 4]
        assert csg_window_ids(9, 2, 3) == [2, 5]
        # Item query IQ_0 with d_0 = 6 (prefix property).
        assert csg_window_ids(6, 0, 3) == [0, 3]
        assert csg_window_ids(6, 1, 3) == [1]
        assert csg_window_ids(6, 2, 3) == [2]

    def test_csg_prefix_property(self):
        # CSG_{i,b} is always a prefix of CSG_b of the master query.
        for b in range(3):
            short = csg_window_ids(6, b, 3)
            long = csg_window_ids(9, b, 3)
            assert long[: len(short)] == short

    def test_empty_csg(self):
        assert csg_size(4, 3, 3) == 0
        assert csg_window_ids(4, 3, 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            csg_size(9, -1, 3)
        with pytest.raises(ValueError):
            aligned_segment_start(4, 3, 2, 3)


class TestAlignment:
    def test_example_4_2(self):
        # Paper Example 4.2 (Fig. 4/5): omega = 3, IQ_0 has d = 6 and the
        # thread pairs (SW_0, DW_3) + (SW_3, DW_2) giving segment C_{6,6};
        # adding (SW_6, DW_1) extends to IQ_1 (d = 9) giving C_{3,9}.
        assert aligned_segment_start(6, 0, 3, 3) == 6
        assert aligned_segment_start(9, 0, 3, 3) == 3

    @given(
        d=st.integers(4, 64),
        omega=st.integers(2, 8),
        series_len=st.integers(64, 200),
    )
    def test_theorem_4_2_unique_alignment(self, d, omega, series_len):
        """Every valid segment start t has exactly one (b, r) alignment."""
        seen: dict[int, tuple[int, int]] = {}
        for b in range(omega):
            m = csg_size(d, b, omega)
            if m == 0:
                continue
            for r in range(m - 1, disjoint_window_count(series_len, omega)):
                t = aligned_segment_start(d, b, r, omega)
                if t < 0 or t + d > series_len:
                    continue
                assert t not in seen, (
                    f"t={t} aligned twice: {seen[t]} and {(b, r)}"
                )
                seen[t] = (b, r)
        if d >= 2 * omega - 1:
            # When every candidate has a non-empty CSG the enumeration
            # covers every start position.
            expected = set(range(series_len - d + 1))
            assert set(seen) == expected

    @given(
        d=st.integers(6, 40),
        omega=st.integers(2, 6),
    )
    def test_lemma_4_1_alignment_geometry(self, d, omega):
        """The aligned segment fully covers its CSG's disjoint windows."""
        series_len = 120
        for b in range(omega):
            m = csg_size(d, b, omega)
            if m == 0:
                continue
            for r in range(m - 1, disjoint_window_count(series_len, omega)):
                t = aligned_segment_start(d, b, r, omega)
                if t < 0 or t + d > series_len:
                    continue
                # Leftmost aligned DW starts at (r - m + 1) * omega and the
                # rightmost ends at (r + 1) * omega; both inside [t, t+d).
                assert t <= (r - m + 1) * omega
                assert (r + 1) * omega <= t + d
                # The query points to the right of DW_r number exactly b.
                assert (t + d) - (r + 1) * omega == b
