"""Tests for simulated GPU kernels and scan baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtw import dtw_distance, knn_bruteforce
from repro.gpu import (
    GpuDevice,
    dtw_verification_kernel,
    fast_gpu_scan,
    full_dtw_kernel,
    gpu_scan,
    k_select_kernel,
)


def make_series(n=300, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 7.0) + 0.1 * rng.normal(size=n)


class TestDtwKernels:
    def test_verification_matches_reference(self):
        rng = np.random.default_rng(0)
        dev = GpuDevice()
        q = rng.normal(size=16)
        cands = rng.normal(size=(10, 16))
        got = dtw_verification_kernel(dev, q, cands, rho=4)
        expected = [dtw_distance(q, c, rho=4) for c in cands]
        np.testing.assert_allclose(got, expected)
        assert dev.elapsed_s > 0

    def test_full_kernel_matches_unbanded(self):
        rng = np.random.default_rng(1)
        dev = GpuDevice()
        q = rng.normal(size=12)
        cands = rng.normal(size=(5, 12))
        got = full_dtw_kernel(dev, q, cands)
        expected = [dtw_distance(q, c, rho=None) for c in cands]
        np.testing.assert_allclose(got, expected)

    def test_banded_kernel_cheaper_than_full(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=64)
        cands = rng.normal(size=(512, 64))
        banded_dev, full_dev = GpuDevice(), GpuDevice()
        dtw_verification_kernel(banded_dev, q, cands, rho=8)
        full_dtw_kernel(full_dev, q, cands)
        assert banded_dev.elapsed_s < full_dev.elapsed_s / 3

    def test_empty_candidates(self):
        dev = GpuDevice()
        assert dtw_verification_kernel(dev, np.arange(4.0), np.empty((0, 4)), 2).size == 0
        assert full_dtw_kernel(dev, np.arange(4.0), np.empty((0, 4))).size == 0


class TestKSelect:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 500),
        k=st.integers(1, 40),
    )
    def test_matches_argsort(self, seed, n, k):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=n)
        dev = GpuDevice()
        idx = k_select_kernel(dev, values, k)
        expected = np.sort(values)[: min(k, n)]
        np.testing.assert_allclose(np.sort(values[idx]), expected)
        assert idx.size == min(k, n)

    def test_handles_ties(self):
        values = np.zeros(100)
        dev = GpuDevice()
        idx = k_select_kernel(dev, values, 7)
        assert idx.size == 7
        assert len(set(idx.tolist())) == 7

    def test_handles_tight_range(self):
        values = 1.0 + np.arange(50) * 1e-15
        dev = GpuDevice()
        idx = k_select_kernel(dev, values, 5)
        assert idx.size == 5

    def test_validation(self):
        dev = GpuDevice()
        with pytest.raises(ValueError):
            k_select_kernel(dev, np.empty(0), 1)
        with pytest.raises(ValueError):
            k_select_kernel(dev, np.arange(5.0), 0)
        with pytest.raises(ValueError):
            k_select_kernel(dev, np.zeros((2, 2)), 1)

    def test_returns_sorted_by_value(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=200)
        idx = k_select_kernel(GpuDevice(), values, 10)
        assert (np.diff(values[idx]) >= 0).all()


class TestScans:
    def test_fast_gpu_scan_matches_bruteforce(self):
        series = make_series()
        query = series[40:72].copy()
        dev = GpuDevice()
        got = fast_gpu_scan(dev, query, series, k=5, rho=4)
        expected = knn_bruteforce(query, series, k=5, rho=4)
        np.testing.assert_allclose(np.sort(got.distances), np.sort(expected.distances))

    def test_gpu_scan_unbanded_distances(self):
        series = make_series(150, seed=5)
        query = series[10:26].copy()
        dev = GpuDevice()
        got = gpu_scan(dev, query, series, k=3)
        expected = knn_bruteforce(query, series, k=3, rho=None)
        np.testing.assert_allclose(np.sort(got.distances), np.sort(expected.distances))

    def test_fast_scan_faster_than_unbanded(self):
        series = make_series(2000, seed=6)
        query = series[100:164].copy()
        fast_dev, slow_dev = GpuDevice(), GpuDevice()
        fast_gpu_scan(fast_dev, query, series, k=4, rho=8)
        gpu_scan(slow_dev, query, series, k=4)
        assert fast_dev.elapsed_s < slow_dev.elapsed_s

    def test_exclusion(self):
        series = make_series(400, seed=7)
        query = series[200:232].copy()
        res = fast_gpu_scan(GpuDevice(), query, series, k=2, rho=4, exclude=(200, 232))
        for start in res.starts:
            assert start + 32 <= 200 or start >= 232

    def test_query_longer_than_series(self):
        with pytest.raises(ValueError):
            gpu_scan(GpuDevice(), np.arange(10.0), np.arange(5.0), k=1)
