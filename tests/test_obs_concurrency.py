"""Property-based thread-safety tests for :mod:`repro.obs`.

The serving layer's worker lanes (``ServiceConfig(max_workers=...)``)
hammer the metrics registry and the tracer from several threads at once.
These properties pin the contracts that makes that safe:

* counter / gauge / histogram totals are *exact* under concurrent
  updates (no lost increments, no torn read-modify-write) — amounts are
  integer-valued so float addition is associativity-proof;
* span trees are per-thread: nesting never crosses threads, and the
  simulated-GPU attribution of a nested span is never negative and never
  exceeds (or overlaps) its parent's;
* ``Tracer.last_root`` always references a *complete* tree, whichever
  thread finished last.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer

#: Per-thread workloads: 2-6 threads, each with its own integer amounts.
WORKLOADS = st.lists(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40),
    min_size=2,
    max_size=6,
)


def run_threads(worker, per_thread_args):
    """Start one thread per argument behind a barrier; re-raise failures."""
    barrier = threading.Barrier(len(per_thread_args))
    failures = []

    def wrapped(args):
        try:
            barrier.wait()
            worker(*args)
        except BaseException as error:  # pragma: no cover - failure path
            failures.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(args,))
        for args in per_thread_args
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestRegistryUnderThreads:
    @settings(max_examples=25)
    @given(workloads=WORKLOADS)
    def test_counter_total_is_exact(self, workloads):
        registry = MetricsRegistry()
        counter = registry.counter("work_total", label_names=("lane",))

        def worker(amounts):
            for amount in amounts:
                counter.inc(amount, lane="shared")

        run_threads(worker, [(w,) for w in workloads])
        expected = float(sum(sum(w) for w in workloads))
        assert counter.value(lane="shared") == expected

    @settings(max_examples=25)
    @given(workloads=WORKLOADS)
    def test_gauge_inc_dec_nets_to_zero(self, workloads):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight", label_names=("lane",))

        def worker(amounts):
            for amount in amounts:
                gauge.inc(amount, lane="shared")
                gauge.dec(amount, lane="shared")

        run_threads(worker, [(w,) for w in workloads])
        assert gauge.value(lane="shared") == 0.0

    @settings(max_examples=25)
    @given(workloads=WORKLOADS)
    def test_histogram_count_and_sum_exact(self, workloads):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", label_names=("lane",), buckets=(10.0, 50.0, 90.0)
        )

        def worker(amounts):
            for amount in amounts:
                histogram.observe(amount, lane="shared")

        run_threads(worker, [(w,) for w in workloads])
        series = histogram.series(lane="shared")
        n_observations = sum(len(w) for w in workloads)
        assert series.count == n_observations
        assert series.sum == float(sum(sum(w) for w in workloads))
        assert series.cumulative()[-1] == n_observations

    def test_per_thread_series_never_mix(self):
        """Distinct label values from distinct threads stay independent."""
        registry = MetricsRegistry()
        counter = registry.counter("per_lane_total", label_names=("lane",))
        rounds = 200

        def worker(lane):
            for _ in range(rounds):
                counter.inc(1, lane=lane)

        lanes = [f"lane-{i}" for i in range(4)]
        run_threads(worker, [(lane,) for lane in lanes])
        for lane in lanes:
            assert counter.value(lane=lane) == float(rounds)


class FakeDevice:
    """Stub with the one attribute spans read (``elapsed_s``); each
    thread owns one, mimicking a backend shard's simulated-time ledger."""

    def __init__(self) -> None:
        self.elapsed_s = 0.0


class TestTracerUnderThreads:
    @settings(max_examples=25)
    @given(
        charges=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),  # before the child
                st.integers(min_value=0, max_value=50),  # inside the child
                st.integers(min_value=0, max_value=50),  # after the child
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_nested_gpu_attribution_never_negative_or_overlapping(
        self, charges
    ):
        """Each thread's nested span attributes exactly its own device
        seconds: child <= root, both non-negative, and the root's
        exclusive share (root - child) is exactly what ran outside the
        child — no cross-thread bleed, no double counting."""
        tracer = Tracer()
        observed = {}

        def worker(thread_index, before, inside, after):
            device = FakeDevice()
            with tracer.span("root", device=device) as root:
                device.elapsed_s += before
                with tracer.span("child", device=device) as child:
                    device.elapsed_s += inside
                device.elapsed_s += after
            observed[thread_index] = (root, child)

        run_threads(
            worker,
            [(i, b, m, a) for i, (b, m, a) in enumerate(charges)],
        )
        assert sorted(observed) == list(range(len(charges)))
        for index, (before, inside, after) in enumerate(charges):
            root, child = observed[index]
            assert child.gpu_sim_s == float(inside)
            assert root.gpu_sim_s == float(before + inside + after)
            assert 0.0 <= child.gpu_sim_s <= root.gpu_sim_s
            assert root.gpu_sim_s - child.gpu_sim_s == float(before + after)
            # Nesting stayed on this thread: exactly one child, ours.
            assert root.children == [child]
            assert child.children == []

    def test_current_is_thread_isolated(self):
        """With every thread parked inside an open span, ``current()``
        returns that thread's own span — never a peer's."""
        tracer = Tracer()
        n_threads = 4
        inside = threading.Barrier(n_threads)

        def worker(name):
            with tracer.span(name) as span:
                inside.wait()
                assert tracer.current() is span
                inside.wait()

        run_threads(worker, [(f"t{i}",) for i in range(n_threads)])

    def test_last_root_is_always_a_complete_tree(self):
        """Concurrent roots race to set ``last_root``; whoever wins, the
        retained reference is a fully-popped root, not a live span."""
        tracer = Tracer()
        n_threads = 4
        roots = []
        roots_lock = threading.Lock()

        def worker(name):
            for lap in range(20):
                with tracer.span(f"{name}-{lap}") as root:
                    with tracer.span("inner"):
                        pass
                with roots_lock:
                    roots.append(root)

        run_threads(worker, [(f"t{i}",) for i in range(n_threads)])
        last = tracer.last_root
        assert last is not None
        assert any(last is root for root in roots)
        # A retained root is complete: timed and with its child attached.
        assert last.wall_s >= 0.0
        assert len(last.children) == 1
        assert last.children[0].name == "inner"
