"""Tests for anomaly injection and the LB_Kim prefilter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtw import dtw_distance, lb_kim
from repro.timeseries import (
    inject_dropout,
    inject_level_shift,
    inject_spike,
)


class TestInjectors:
    def test_spike(self):
        base = np.zeros(10)
        result = inject_spike(base, start=3, magnitude=2.0, length=2)
        np.testing.assert_array_equal(result.values[3:5], [2.0, 2.0])
        assert result.n_affected == 2
        assert base.sum() == 0.0  # original untouched

    def test_level_shift(self):
        base = np.ones(6)
        result = inject_level_shift(base, start=4, magnitude=-1.0)
        np.testing.assert_array_equal(result.values, [1, 1, 1, 1, 0, 0])
        assert result.mask[4:].all() and not result.mask[:4].any()

    def test_dropout(self):
        base = np.arange(8.0)
        result = inject_dropout(base, start=2, length=3, fill=-9.0)
        np.testing.assert_array_equal(result.values[2:5], [-9.0] * 3)
        assert result.n_affected == 3

    def test_spike_clipped_at_end(self):
        result = inject_spike(np.zeros(5), start=4, magnitude=1.0, length=10)
        assert result.n_affected == 1

    def test_validation(self):
        with pytest.raises(IndexError):
            inject_spike(np.zeros(5), start=9, magnitude=1.0)
        with pytest.raises(ValueError):
            inject_spike(np.zeros(5), start=1, magnitude=1.0, length=0)
        with pytest.raises(IndexError):
            inject_level_shift(np.zeros(5), start=-1, magnitude=1.0)


class TestLbKim:
    def test_known_value(self):
        assert lb_kim([1.0, 5.0, 2.0], [0.0, 9.0, 4.0]) == pytest.approx(1.0 + 4.0)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 500),
        n=st.integers(2, 20),
        rho=st.integers(0, 6),
    )
    def test_lower_bounds_dtw(self, seed, n, rho):
        rng = np.random.default_rng(seed)
        q, c = rng.normal(size=n), rng.normal(size=n)
        assert lb_kim(q, c) <= dtw_distance(q, c, rho=rho) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            lb_kim([], [])
