"""Tests for the group-level index (CSG shift-sums, Theorem 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtw import dtw_distance
from repro.gpu import GpuDevice
from repro.index import GroupLevelIndex, WindowLevelIndex, direct_lb_en


def make_series(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.cos(np.arange(n) / 9.0) + 0.2 * rng.normal(size=n)


def build_group(series, item_lengths, omega, rho):
    master_len = max(item_lengths)
    wi = WindowLevelIndex(series, master_len, omega, rho, backend=GpuDevice())
    wi.build(series[-master_len:])
    return GroupLevelIndex(wi, item_lengths)


class TestConstruction:
    def test_validation(self):
        series = make_series(100)
        wi = WindowLevelIndex(series, 16, 4, 2)
        wi.build(series[-16:])
        with pytest.raises(ValueError):
            GroupLevelIndex(wi, ())
        with pytest.raises(ValueError):
            GroupLevelIndex(wi, (8, 12))  # max != master length
        with pytest.raises(ValueError):
            GroupLevelIndex(wi, (0, 16))

    def test_result_shapes(self):
        series = make_series(120)
        group = build_group(series, (8, 16), omega=4, rho=2)
        bounds = group.compute()
        assert set(bounds) == {8, 16}
        assert bounds[8].lbeq.size == 120 - 8 + 1
        assert bounds[16].lbeq.size == 120 - 16 + 1

    def test_full_coverage_when_items_long_enough(self):
        """d >= 2*omega - 1 guarantees every start has a CSG alignment."""
        series = make_series(96)
        group = build_group(series, (8, 16), omega=4, rho=2)
        bounds = group.compute()
        assert bounds[8].covered.all()
        assert bounds[16].covered.all()


class TestBoundCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 500),
        omega=st.sampled_from([3, 4, 8]),
        rho=st.integers(0, 4),
    )
    def test_lbw_never_exceeds_dtw(self, seed, omega, rho):
        """Theorem 4.3: LB_w <= DTW for every item query and candidate."""
        series = make_series(90, seed=seed)
        item_lengths = (2 * omega, 4 * omega)
        group = build_group(series, item_lengths, omega, rho)
        bounds = group.compute()
        master = series[-max(item_lengths):]
        for d in item_lengths:
            query = master[master.size - d :]
            lbw = bounds[d].enhanced()
            for t in np.flatnonzero(bounds[d].covered):
                dist = dtw_distance(query, series[t : t + d], rho=rho)
                assert lbw[t] <= dist + 1e-9, f"d={d}, t={t}"

    def test_lbw_never_exceeds_direct_lb_en(self):
        """The window-partial bound is dominated by the full LB_en."""
        series = make_series(200, seed=3)
        item_lengths = (12, 24)
        omega, rho = 4, 2
        group = build_group(series, item_lengths, omega, rho)
        bounds = group.compute()
        master = series[-24:]
        direct = direct_lb_en(GpuDevice(), master, series, item_lengths, rho)
        for d in item_lengths:
            covered = bounds[d].covered
            assert (
                bounds[d].enhanced()[covered] <= direct[d][covered] + 1e-9
            ).all()

    def test_exact_match_bound_zero(self):
        series = make_series(150, seed=4)
        # Plant the master query inside the history.
        master = series[40:64].copy()
        wi = WindowLevelIndex(series, 24, 4, 2, backend=GpuDevice())
        wi.build(master)
        group = GroupLevelIndex(wi, (12, 24))
        bounds = group.compute()
        assert bounds[24].enhanced()[40] == pytest.approx(0.0, abs=1e-12)
        assert bounds[12].enhanced()[52] == pytest.approx(0.0, abs=1e-12)

    def test_bound_mode_selector(self):
        series = make_series(100, seed=5)
        group = build_group(series, (8, 16), 4, 2)
        bounds = group.compute()[16]
        np.testing.assert_array_equal(
            bounds.bound("en"), np.maximum(bounds.lbeq, bounds.lbec)
        )
        np.testing.assert_array_equal(bounds.bound("eq"), bounds.lbeq)
        np.testing.assert_array_equal(bounds.bound("ec"), bounds.lbec)
        with pytest.raises(ValueError):
            bounds.bound("xx")

    def test_enhanced_dominates_single_sided(self):
        series = make_series(300, seed=6)
        group = build_group(series, (16, 32), 8, 3)
        bounds = group.compute()[32]
        en = bounds.enhanced()
        assert (en >= bounds.lbeq).all()
        assert (en >= bounds.lbec).all()
        # And is strictly better somewhere on generic data.
        assert (en > bounds.lbeq).any()
        assert (en > bounds.lbec).any()

    def test_gpu_accounting(self):
        series = make_series(100)
        group = build_group(series, (8, 16), 4, 2)
        before = group.backend.elapsed_s
        group.compute()
        assert group.backend.elapsed_s > before


class TestAlgorithm1Reference:
    """The vectorised shift-sum must equal the literal Algorithm 1."""

    def _compare(self, seed, omega, rho, item_lengths, n=140):
        from repro.index.reference import algorithm1_reference

        series = make_series(n, seed=seed)
        master_len = max(item_lengths)
        wi = WindowLevelIndex(series, master_len, omega, rho, backend=GpuDevice())
        wi.build(series[-master_len:])
        fast = GroupLevelIndex(wi, item_lengths).compute()
        slow = algorithm1_reference(wi, item_lengths)
        for d in item_lengths:
            np.testing.assert_array_equal(fast[d].covered, slow[d].covered)
            covered = fast[d].covered
            np.testing.assert_allclose(
                fast[d].lbeq[covered], slow[d].lbeq[covered], atol=1e-12
            )
            np.testing.assert_allclose(
                fast[d].lbec[covered], slow[d].lbec[covered], atol=1e-12
            )

    def test_paper_default_shape(self):
        self._compare(seed=0, omega=4, rho=2, item_lengths=(8, 16, 24))

    def test_single_item(self):
        self._compare(seed=1, omega=3, rho=1, item_lengths=(12,))

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 200),
        omega=st.sampled_from([2, 3, 4, 8]),
        rho=st.integers(0, 4),
    )
    def test_random_configurations(self, seed, omega, rho):
        self._compare(
            seed=seed, omega=omega, rho=rho,
            item_lengths=(2 * omega, 3 * omega, 5 * omega),
        )
