"""Tests for multi-GPU sharding, history truncation and persistence."""

import numpy as np
import pytest

from repro.backend import SimulatedGpuBackend
from repro.core import (
    SMiLer,
    SMiLerConfig,
    load_smiler,
    plan_lanes,
    save_smiler,
    truncate_history,
)
from repro.gpu import DeviceSpec, GpuMemoryError
from repro.service import PredictionService


def periodic_history(n=700, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 9.0) + 0.05 * rng.normal(size=n)


SMALL = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1,),
    predictor="ar",
)
SMALL_GP = SMiLerConfig(
    elv=(8, 16), ekv=(4,), rho=2, omega=4, horizons=(1,),
    predictor="gp", initial_train_iters=8, online_train_iters=2,
)


class TestTruncateHistory:
    def test_keeps_recent_fraction(self):
        values = np.arange(100.0)
        kept = truncate_history(values, 0.25)
        np.testing.assert_array_equal(kept, np.arange(75.0, 100.0))

    def test_full_fraction_is_identity(self):
        values = np.arange(10.0)
        np.testing.assert_array_equal(truncate_history(values, 1.0), values)

    def test_validation(self):
        with pytest.raises(ValueError):
            truncate_history(np.arange(10.0), 0.0)
        with pytest.raises(ValueError):
            truncate_history(np.arange(10.0), 1.5)

    def test_truncated_history_costs_less_memory(self):
        full = SMiLer(periodic_history(), SMALL)
        short = SMiLer(truncate_history(periodic_history(), 0.5), SMALL)
        assert short.memory_bytes() < full.memory_bytes()


def sharded_service(n_backends, spec=None):
    backends = [SimulatedGpuBackend(spec=spec) for _ in range(n_backends)]
    return PredictionService(SMALL, backends=backends, min_history=256)


class TestMultiBackendSharding:
    """Section 6.4.1 option 1 — sensors shard across a backend pool
    (served by ``PredictionService``; the ``MultiGpuFleet`` facade is
    gone)."""

    def test_shards_across_backends(self):
        service = sharded_service(2)
        for seed in range(4):
            service.register(f"s{seed}", periodic_history(seed=seed))
        counts = service.sensors_per_backend()
        assert sum(counts) == 4
        assert all(c >= 1 for c in counts)  # greedy balancing spreads them

    def test_predict_observe_roundtrip(self):
        service = sharded_service(2)
        for seed in range(3):
            service.register(f"s{seed}", periodic_history(seed=seed))
        batch = service.forecast_all()
        assert len(batch) == 3 and not batch.errors
        service.ingest_many({"s0": 0.1, "s1": 0.2, "s2": 0.3})
        assert service.status()["device_sim_seconds"] > 0

    def test_pool_exhaustion_raises(self):
        tiny = DeviceSpec(memory_bytes=60_000)
        service = sharded_service(2, spec=tiny)
        with pytest.raises(GpuMemoryError):
            for seed in range(20):
                service.register(f"s{seed}", periodic_history(seed=seed))

    def test_two_backends_host_more_than_one(self):
        """The point of the pool: capacity scales with backend count."""
        spec = DeviceSpec(memory_bytes=100_000)

        def max_hosted(n_backends):
            service = sharded_service(n_backends, spec=spec)
            hosted = 0
            for seed in range(6):
                try:
                    service.register(f"s{seed}", periodic_history(seed=seed))
                except GpuMemoryError:
                    break
                hosted += 1
            return hosted

        assert max_hosted(2) > max_hosted(1)


class TestPlanLanes:
    def test_groups_by_backend_sorted(self):
        placements = {"a": 2, "b": 0, "c": 2, "d": 0}
        plans = plan_lanes(placements, ["a", "b", "c", "d"])
        assert [p.backend_index for p in plans] == [0, 2]
        assert [p.lane_index for p in plans] == [0, 1]
        assert plans[0].sensor_ids == ("b", "d")
        assert plans[1].sensor_ids == ("a", "c")

    def test_preserves_given_order_within_lane(self):
        placements = {"a": 0, "b": 0, "c": 0}
        plans = plan_lanes(placements, ["c", "a", "b"])
        assert plans[0].sensor_ids == ("c", "a", "b")

    def test_only_hosting_backends_get_lanes(self):
        plans = plan_lanes({"x": 3}, ["x"])
        assert len(plans) == 1
        assert plans[0].backend_index == 3
        assert plans[0].lane_index == 0

    def test_empty_batch_plans_nothing(self):
        assert plan_lanes({}, []) == []


class TestPersistence:
    def _trained_smiler(self, config, steps=10):
        history = periodic_history()
        smiler = SMiLer(history[:650], config)
        for t in range(650, 650 + steps):
            smiler.predict()
            smiler.observe(history[t])
        return smiler, history

    def test_roundtrip_preserves_series_and_weights(self, tmp_path):
        smiler, _ = self._trained_smiler(SMALL)
        path = tmp_path / "sensor.npz"
        save_smiler(smiler, path)
        restored = load_smiler(path)
        np.testing.assert_allclose(restored.series, smiler.series)
        assert restored.sensor_id == smiler.sensor_id
        assert restored.config == smiler.config
        original = smiler.ensemble(1).weights()
        loaded = restored.ensemble(1).weights()
        assert set(original) == set(loaded)
        for cell in original:
            assert loaded[cell] == pytest.approx(original[cell])

    def test_roundtrip_preserves_gp_hyperparameters(self, tmp_path):
        smiler, _ = self._trained_smiler(SMALL_GP, steps=5)
        path = tmp_path / "gp.npz"
        save_smiler(smiler, path)
        restored = load_smiler(path)
        for cell in smiler.ensemble(1).cells:
            original = smiler.ensemble(1).state(cell).predictor.kernel
            loaded = restored.ensemble(1).state(cell).predictor.kernel
            if original is None:
                assert loaded is None
                continue
            assert loaded.theta0 == pytest.approx(original.theta0)
            assert loaded.theta1 == pytest.approx(original.theta1)
            assert loaded.theta2 == pytest.approx(original.theta2)

    def test_restored_instance_predicts_close_to_original(self, tmp_path):
        smiler, history = self._trained_smiler(SMALL)
        path = tmp_path / "s.npz"
        save_smiler(smiler, path)
        restored = load_smiler(path)
        a = smiler.predict()[1]
        b = restored.predict()[1]
        assert b.mean == pytest.approx(a.mean, abs=1e-6)
        assert b.variance == pytest.approx(a.variance, rel=1e-4)

    def test_sleep_state_survives(self, tmp_path):
        smiler, _ = self._trained_smiler(SMALL, steps=20)
        ensemble = smiler.ensemble(1)
        cell = ensemble.cells[0]
        ensemble.state(cell).asleep = True
        ensemble.state(cell).sleep_span = 4
        ensemble.state(cell).sleep_remaining = 2
        path = tmp_path / "sleep.npz"
        save_smiler(smiler, path)
        restored_state = load_smiler(path).ensemble(1).state(cell)
        assert restored_state.asleep
        assert restored_state.sleep_span == 4
        assert restored_state.sleep_remaining == 2

    def test_version_check(self, tmp_path):
        import json

        smiler, _ = self._trained_smiler(SMALL, steps=2)
        path = tmp_path / "v.npz"
        save_smiler(smiler, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["meta_json"].tobytes()).decode("utf-8"))
        meta["format_version"] = 999
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_smiler(path)


class TestServiceWithGpConfig:
    def test_gp_service_snapshot_roundtrip(self, tmp_path):
        """GP hyperparameters survive the service-level snapshot too."""
        from repro.service import PredictionService

        rng = np.random.default_rng(5)
        history = 100.0 + 10.0 * (
            np.sin(np.arange(700) / 9.0) + 0.05 * rng.normal(size=700)
        )
        service = PredictionService(SMALL_GP, min_history=100)
        service.register("gp-sensor", history)
        for value in history[-5:]:
            service.forecast("gp-sensor")
            service.ingest("gp-sensor", float(value))
        before = service.forecast("gp-sensor")
        service.snapshot(tmp_path)
        restored = PredictionService(SMALL_GP, min_history=100)
        restored.restore(tmp_path)
        after = restored.forecast("gp-sensor")
        assert after.mean == pytest.approx(before.mean, rel=1e-3)
