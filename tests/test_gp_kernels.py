"""Tests for the SE kernel and its log-space gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import SquaredExponentialKernel, squared_distances


class TestSquaredDistances:
    def test_known_values(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[1.0, 0.0]])
        np.testing.assert_allclose(squared_distances(a, b), [[1.0], [1.0]])

    def test_self_distances_zero_diag(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 4))
        sq = squared_distances(x, x)
        np.testing.assert_allclose(np.diag(sq), 0.0, atol=1e-10)

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 3)) * 100
        assert (squared_distances(x, x) >= 0).all()

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            squared_distances(np.zeros((2, 3)), np.zeros((2, 4)))


class TestKernel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SquaredExponentialKernel(theta0=0.0)
        with pytest.raises(ValueError):
            SquaredExponentialKernel(theta1=-1.0)
        with pytest.raises(ValueError):
            SquaredExponentialKernel(theta2=np.inf)

    def test_log_roundtrip(self):
        kernel = SquaredExponentialKernel(2.0, 0.5, 0.1)
        again = SquaredExponentialKernel.from_log_params(kernel.log_params)
        assert again.theta0 == pytest.approx(2.0)
        assert again.theta1 == pytest.approx(0.5)
        assert again.theta2 == pytest.approx(0.1)

    def test_matrix_diagonal_value(self):
        kernel = SquaredExponentialKernel(2.0, 1.0, 0.3)
        x = np.random.default_rng(2).normal(size=(5, 3))
        noisy = kernel.matrix(x, noise=True)
        np.testing.assert_allclose(np.diag(noisy), 4.0 + 0.09)

    def test_noise_on_cross_matrix_rejected(self):
        kernel = SquaredExponentialKernel()
        with pytest.raises(ValueError):
            kernel.matrix(np.zeros((2, 2)), np.zeros((3, 2)), noise=True)

    def test_matrix_positive_definite(self):
        kernel = SquaredExponentialKernel(1.0, 1.0, 0.1)
        x = np.random.default_rng(3).normal(size=(15, 4))
        eigvals = np.linalg.eigvalsh(kernel.matrix(x, noise=True))
        assert (eigvals > 0).all()

    def test_lengthscale_controls_decay(self):
        x = np.array([[0.0], [1.0]])
        wide = SquaredExponentialKernel(1.0, 10.0, 0.1).matrix(x)
        narrow = SquaredExponentialKernel(1.0, 0.1, 0.1).matrix(x)
        assert wide[0, 1] > 0.99
        assert narrow[0, 1] < 1e-10

    def test_diag(self):
        kernel = SquaredExponentialKernel(2.0, 1.0, 0.5)
        np.testing.assert_allclose(kernel.diag(np.zeros((4, 2))), 4.0)
        np.testing.assert_allclose(kernel.diag(np.zeros((4, 2)), noise=True), 4.25)

    def test_replace(self):
        kernel = SquaredExponentialKernel(1.0, 2.0, 0.3)
        new = kernel.replace(theta1=5.0)
        assert new.theta1 == 5.0
        assert new.theta0 == 1.0 and new.theta2 == 0.3

    @settings(max_examples=20, deadline=None)
    @given(
        log_params=st.lists(
            st.floats(-1.5, 1.5, allow_nan=False), min_size=3, max_size=3
        ),
        seed=st.integers(0, 100),
    )
    def test_gradients_match_finite_differences(self, log_params, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(6, 2))
        log_params = np.asarray(log_params)
        kernel = SquaredExponentialKernel.from_log_params(log_params)
        grads = kernel.gradients(x)
        eps = 1e-6
        for j in range(3):
            lp_plus = log_params.copy()
            lp_plus[j] += eps
            lp_minus = log_params.copy()
            lp_minus[j] -= eps
            k_plus = SquaredExponentialKernel.from_log_params(lp_plus).matrix(
                x, noise=True
            )
            k_minus = SquaredExponentialKernel.from_log_params(lp_minus).matrix(
                x, noise=True
            )
            fd = (k_plus - k_minus) / (2 * eps)
            np.testing.assert_allclose(grads[j], fd, rtol=1e-4, atol=1e-7)
