"""Tests for exact kNN search and the FastCPUScan baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtw import fast_cpu_scan, knn_bruteforce


def make_series(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 5.0) + 0.1 * rng.normal(size=n)


class TestBruteforce:
    def test_finds_planted_match(self):
        series = make_series()
        query = series[50:66].copy()
        result = knn_bruteforce(query, series, k=1, rho=4)
        assert result.starts[0] == 50
        assert result.distances[0] == 0.0

    def test_k_larger_than_candidates(self):
        series = np.arange(10.0)
        result = knn_bruteforce(series[:4], series, k=100, rho=2)
        assert len(result) == 7

    def test_distances_sorted(self):
        series = make_series(300, seed=1)
        result = knn_bruteforce(series[10:42], series, k=8, rho=4)
        assert (np.diff(result.distances) >= 0).all()

    def test_exclusion_zone(self):
        series = make_series()
        query = series[100:132].copy()
        result = knn_bruteforce(query, series, k=3, rho=4, exclude=(100, 132))
        for start in result.starts:
            assert start + 32 <= 100 or start >= 132

    def test_no_candidates_raises(self):
        series = np.arange(8.0)
        with pytest.raises(ValueError):
            knn_bruteforce(series, series, k=1, rho=2, exclude=(0, 8))

    def test_stats_populated(self):
        series = make_series(100)
        result = knn_bruteforce(series[:16], series, k=2, rho=4)
        assert result.stats.candidates_total == 85
        assert result.stats.dtw_cells > 0


class TestFastCpuScan:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        k=st.integers(1, 8),
        rho=st.integers(1, 6),
    )
    def test_matches_bruteforce_distances(self, seed, k, rho):
        rng = np.random.default_rng(seed)
        series = rng.normal(size=120)
        query = rng.normal(size=12)
        exact = knn_bruteforce(query, series, k=k, rho=rho)
        fast = fast_cpu_scan(query, series, k=k, rho=rho)
        # Start indices may differ on exact ties; distances must agree.
        np.testing.assert_allclose(
            np.sort(fast.distances), np.sort(exact.distances), atol=1e-9
        )

    def test_pruning_verifies_fewer_candidates(self):
        series = make_series(2000, seed=2)
        query = series[500:564].copy() + 0.01
        fast = fast_cpu_scan(query, series, k=4, rho=8)
        assert fast.stats.candidates_verified < fast.stats.candidates_total

    def test_exclusion_zone(self):
        series = make_series(400)
        query = series[200:232].copy()
        res = fast_cpu_scan(query, series, k=2, rho=4, exclude=(200, 232))
        for start in res.starts:
            assert start + 32 <= 200 or start >= 232

    def test_planted_match_found(self):
        series = make_series(500, seed=3)
        query = series[123:155].copy()
        res = fast_cpu_scan(query, series, k=1, rho=8)
        assert res.starts[0] == 123
        assert res.distances[0] == 0.0


class TestScanStats:
    def test_merge_accumulates(self):
        from repro.dtw import ScanStats

        a = ScanStats(lb_positions=10, dtw_cells=5, candidates_total=3,
                      candidates_verified=2)
        b = ScanStats(lb_positions=1, dtw_cells=1, candidates_total=1,
                      candidates_verified=1)
        a.merge(b)
        assert a.lb_positions == 11
        assert a.dtw_cells == 6
        assert a.candidates_total == 4
        assert a.candidates_verified == 3
