"""Tests for the pluggable compute-backend layer and the backend pool."""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_ENV_VAR,
    BackendPool,
    ComputeBackend,
    GpuMemoryError,
    NativeBackend,
    SimulatedGpuBackend,
    as_backend,
    default_backend,
    make_backend,
)
from repro.gpu.costmodel import DeviceSpec
from repro.gpu.device import GpuDevice


def rng_series(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 7.0) + 0.1 * rng.normal(size=n)


class TestFactory:
    def test_make_backend_names(self):
        assert make_backend("simulated").name == "simulated"
        assert make_backend("native").name == "native"
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cuda")

    def test_make_backend_forwards_kwargs(self):
        spec = DeviceSpec(memory_bytes=1234)
        backend = make_backend("simulated", spec=spec)
        assert backend.free_bytes == 1234
        backend = make_backend("native", capacity_bytes=99)
        assert backend.free_bytes == 99

    def test_default_backend_env_var(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend().name == "simulated"
        monkeypatch.setenv(BACKEND_ENV_VAR, "native")
        assert default_backend().name == "native"

    def test_both_implement_protocol(self):
        assert isinstance(SimulatedGpuBackend(), ComputeBackend)
        assert isinstance(NativeBackend(), ComputeBackend)


class TestAsBackend:
    def test_none_gives_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert as_backend(None).name == "simulated"

    def test_backend_passes_through(self):
        backend = NativeBackend()
        assert as_backend(backend) is backend

    def test_gpu_device_wrapped_sharing_ledgers(self):
        device = GpuDevice()
        backend = as_backend(device)
        assert isinstance(backend, SimulatedGpuBackend)
        backend.malloc(1000, "x")
        assert device.allocated_bytes == 1000  # same ledger
        backend.launch("k", n_blocks=4, ops_per_thread=100.0)
        assert device.elapsed_s == backend.elapsed_s > 0

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_backend(42)


class TestSimulatedGpuBackend:
    def test_device_and_spec_exclusive(self):
        with pytest.raises(ValueError):
            SimulatedGpuBackend(device=GpuDevice(), spec=DeviceSpec())

    def test_kernels_attribute_time(self):
        backend = SimulatedGpuBackend()
        query = rng_series(32)
        candidates = np.stack([rng_series(32, seed=s) for s in range(1, 6)])
        distances = backend.dtw_verification(query, candidates, rho=4)
        assert distances.shape == (5,)
        assert backend.elapsed_s > 0
        backend.reset_time()
        assert backend.elapsed_s == 0.0

    def test_memory_ledger(self):
        backend = SimulatedGpuBackend(spec=DeviceSpec(memory_bytes=100))
        handle = backend.malloc(60, "a")
        assert backend.allocated_bytes == 60
        assert backend.free_bytes == 40
        with pytest.raises(GpuMemoryError):
            backend.malloc(50, "b")
        backend.free(handle)
        assert backend.allocated_bytes == 0


class TestNativeBackend:
    def test_no_time_model(self):
        backend = NativeBackend()
        query = rng_series(32)
        candidates = np.stack([rng_series(32, seed=s) for s in range(1, 4)])
        backend.dtw_verification(query, candidates, rho=4)
        backend.full_dtw(query, candidates)
        assert backend.launch("k", n_blocks=4, ops_per_thread=1.0) == 0.0
        assert backend.elapsed_s == 0.0

    def test_k_select_stable_ties(self):
        backend = NativeBackend()
        values = np.array([3.0, 1.0, 1.0, 0.5])
        np.testing.assert_array_equal(
            backend.k_select(values, 3), [3, 1, 2]
        )
        with pytest.raises(ValueError):
            backend.k_select(values, 0)
        with pytest.raises(ValueError):
            backend.k_select(np.empty(0), 1)

    def test_unbounded_by_default(self):
        backend = NativeBackend()
        backend.malloc(10**12, "huge")  # no error
        assert backend.allocated_bytes == 10**12

    def test_bounded_capacity(self):
        backend = NativeBackend(capacity_bytes=100)
        handle = backend.malloc(80, "a")
        with pytest.raises(GpuMemoryError):
            backend.malloc(30, "b")
        backend.free(handle)
        with pytest.raises(KeyError):
            backend.free(handle)  # double free
        with pytest.raises(ValueError):
            NativeBackend(capacity_bytes=0)


class TestKernelParity:
    """Simulated and native must return identical answers (the contract
    the parity tests pin end-to-end)."""

    def test_dtw_identical(self):
        sim, nat = SimulatedGpuBackend(), NativeBackend()
        query = rng_series(48, seed=3)
        candidates = np.stack([rng_series(48, seed=s) for s in range(4, 12)])
        np.testing.assert_array_equal(
            sim.dtw_verification(query, candidates, rho=6),
            nat.dtw_verification(query, candidates, rho=6),
        )
        np.testing.assert_array_equal(
            sim.full_dtw(query, candidates), nat.full_dtw(query, candidates)
        )

    def test_k_select_identical_with_ties(self):
        sim, nat = SimulatedGpuBackend(), NativeBackend()
        rng = np.random.default_rng(7)
        for trial in range(20):
            # Coarse quantisation forces plenty of exact ties.
            values = np.round(rng.uniform(0, 3, size=200), 1)
            k = int(rng.integers(1, 50))
            np.testing.assert_array_equal(
                sim.k_select(values, k), nat.k_select(values, k)
            )


class TestBackendPool:
    def test_requires_backends(self):
        with pytest.raises(ValueError):
            BackendPool([])

    def test_coerces_devices(self):
        pool = BackendPool([GpuDevice(), NativeBackend()])
        assert pool.backends[0].name == "simulated"
        assert pool.backends[1].name == "native"

    def test_greedy_placement_balances(self):
        pool = BackendPool([
            NativeBackend(capacity_bytes=100),
            NativeBackend(capacity_bytes=100),
        ])
        placements = [pool.allocate(30, f"s{i}") for i in range(3)]
        # Greedy max-free, ties to lowest index: 0, 1, 0.
        assert [p.backend_index for p in placements] == [0, 1, 0]

    def test_exhaustion_raises_with_label(self):
        pool = BackendPool([NativeBackend(capacity_bytes=10)])
        with pytest.raises(GpuMemoryError, match="'big'"):
            pool.allocate(20, "big")

    def test_release_and_resize(self):
        pool = BackendPool([NativeBackend(capacity_bytes=100)])
        placement = pool.allocate(40, "s")
        placement = pool.resize(placement, 70)
        assert pool.allocated_bytes == 70
        # A resize that cannot fit rolls the old reservation back.
        with pytest.raises(GpuMemoryError):
            pool.resize(placement, 200)
        assert pool.allocated_bytes == 70
        pool.release(placement)
        assert pool.allocated_bytes == 0

    def test_elapsed_is_busiest_backend(self):
        a, b = SimulatedGpuBackend(), SimulatedGpuBackend()
        pool = BackendPool([a, b])
        a.launch("k", n_blocks=1, ops_per_thread=10.0)
        b.launch("k", n_blocks=64, ops_per_thread=1000.0)
        assert pool.elapsed_s == max(a.elapsed_s, b.elapsed_s) == b.elapsed_s
        pool.reset_time()
        assert pool.elapsed_s == 0.0
