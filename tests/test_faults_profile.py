"""Fault-profile spec grammar: ``parse`` and ``format`` are inverses.

The property pinned here is the round trip over the parser's entire
image: for every profile the spec grammar can express,
``parse_fault_profile(format_fault_profile(p)) == p`` — including
bit-exact float rates (``repr`` round-tripping) and the ``burst``
window.  Registered names format back to the bare name; names outside
the grammar raise.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.faults import (
    FAULT_PROFILE_NAMES,
    FaultProfile,
    format_fault_profile,
    parse_fault_profile,
)

rates = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
latencies = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
ticks = st.integers(min_value=0, max_value=2**40)

#: Every profile the spec grammar can express (the parser's image):
#: ad-hoc profiles are always named "custom".
custom_profiles = st.builds(
    FaultProfile,
    name=st.just("custom"),
    seed=st.integers(min_value=-(2**31), max_value=2**63),
    kernel_error_rate=rates,
    kernel_nan_rate=rates,
    malloc_error_rate=rates,
    added_latency_s=latencies,
    dies_at_tick=st.none() | ticks,
    burst=st.none() | st.tuples(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=1, max_value=2**30),
    ).map(lambda p: (p[0], p[0] + p[1])),
)


@given(custom_profiles)
def test_round_trip_over_the_parser_image(profile):
    assert parse_fault_profile(format_fault_profile(profile)) == profile


@given(custom_profiles)
def test_format_is_canonical(profile):
    """Formatting is a normal form: format∘parse∘format is format."""
    spec = format_fault_profile(profile)
    assert format_fault_profile(parse_fault_profile(spec)) == spec


@pytest.mark.parametrize("name", FAULT_PROFILE_NAMES)
def test_registered_profiles_format_as_their_name(name):
    profile = parse_fault_profile(name)
    assert format_fault_profile(profile) == name
    assert parse_fault_profile(format_fault_profile(profile)) == profile


def test_near_named_profile_falls_back_to_spec():
    """Equal rates but the ad-hoc name: must not format as the
    registered name (parse would return a different ``name`` field)."""
    flaky = parse_fault_profile("flaky-kernels")
    twin = dataclasses.replace(flaky, name="custom")
    spec = format_fault_profile(twin)
    assert spec != "flaky-kernels"
    assert parse_fault_profile(spec) == twin


def test_default_profile_survives_despite_empty_overrides():
    """The all-defaults profile must format to a non-empty spec (the
    parser rejects empty strings)."""
    profile = FaultProfile()
    spec = format_fault_profile(profile)
    assert spec
    assert parse_fault_profile(spec) == profile


def test_unrepresentable_name_raises():
    with pytest.raises(ValueError, match="not representable"):
        format_fault_profile(FaultProfile(name="my-bespoke-profile", seed=1))
