"""Tests for the continuous-prediction runner and reporting helpers."""

import numpy as np
import pytest

from repro.baselines.base import BaseForecaster
from repro.core import SMiLerConfig
from repro.harness import (
    SMiLerForecaster,
    format_seconds,
    render_series,
    render_table,
    run_continuous,
)


class ConstantForecaster(BaseForecaster):
    """Predicts a constant; used to verify scoring arithmetic."""

    name = "Constant"

    def __init__(self, mean=0.0, var=1.0):
        self._mean, self._var = mean, var
        self.observed = []

    def predict(self, context, horizon):
        return self._mean, self._var

    def observe(self, value):
        self.observed.append(value)


class TestRunContinuous:
    def test_scores_constant_forecaster(self):
        history = np.zeros(50)
        tail = np.ones(20)
        result = run_continuous(
            ConstantForecaster(0.0), history, tail, horizons=(1,)
        )
        scores = result.horizons[1]
        assert scores.mae == pytest.approx(1.0)
        assert scores.rmse == pytest.approx(1.0)
        assert scores.n_scored == 20

    def test_horizon_alignment(self):
        """An h-step prediction is scored against tail[i + h - 1]."""

        class Oracle(BaseForecaster):
            name = "Oracle"

            def __init__(self, tail):
                self.tail = tail
                self.i = 0

            def predict(self, context, horizon):
                return float(self.tail[self.i + horizon - 1]), 1.0

            def observe(self, value):
                self.i += 1

        tail = np.arange(30.0)
        result = run_continuous(
            Oracle(tail), np.zeros(10), tail, horizons=(1, 3, 7)
        )
        for h in (1, 3, 7):
            assert result.horizons[h].mae == 0.0
            assert result.horizons[h].n_scored == 30 - h + 1

    def test_observe_called_once_per_step(self):
        forecaster = ConstantForecaster()
        tail = np.arange(15.0)
        run_continuous(forecaster, np.zeros(10), tail, horizons=(1, 2))
        np.testing.assert_array_equal(forecaster.observed, tail)

    def test_n_steps_limits_walk(self):
        forecaster = ConstantForecaster()
        result = run_continuous(
            forecaster, np.zeros(10), np.arange(50.0), horizons=(1,), n_steps=12
        )
        assert result.horizons[1].n_scored == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            run_continuous(
                ConstantForecaster(), np.zeros(10), np.arange(5.0), horizons=(9,)
            )
        with pytest.raises(ValueError):
            run_continuous(
                ConstantForecaster(), np.zeros(10), np.arange(5.0), horizons=(0,)
            )

    def test_keep_predictions(self):
        result = run_continuous(
            ConstantForecaster(), np.zeros(10), np.ones(10), horizons=(1,),
            keep_predictions=True,
        )
        assert len(result.predictions[1]) == 10

    def test_smiler_adapter_end_to_end(self):
        rng = np.random.default_rng(0)
        stream = np.sin(np.arange(400) / 8.0) + 0.05 * rng.normal(size=400)
        config = SMiLerConfig(
            elv=(8, 16), ekv=(4,), rho=2, omega=4, horizons=(1,),
            predictor="ar",
        )
        result = run_continuous(
            SMiLerForecaster(config), stream[:360], stream[360:], horizons=(1,)
        )
        assert result.method == "SMiLer-AR"
        assert result.horizons[1].mae < 0.3
        assert result.predict_seconds_per_query > 0

    def test_adapter_requires_fit(self):
        adapter = SMiLerForecaster(SMiLerConfig())
        with pytest.raises(RuntimeError):
            adapter.predict(np.zeros(100), 1)

    def test_adapter_names(self):
        assert SMiLerForecaster(SMiLerConfig(predictor="gp")).name == "SMiLer-GP"
        assert SMiLerForecaster(SMiLerConfig(predictor="ar")).name == "SMiLer-AR"
        assert "NE" in SMiLerForecaster(SMiLerConfig(ensemble=False)).name
        assert "NS" in SMiLerForecaster(SMiLerConfig(self_adaptive=False)).name


class TestReporting:
    def test_format_seconds_ranges(self):
        assert format_seconds(0) == "0s"
        assert format_seconds(5e-7).endswith("ns")
        assert format_seconds(5e-5).endswith("us")
        assert format_seconds(5e-2).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert format_seconds(600).endswith("min")
        assert format_seconds(10_000).endswith("h")
        with pytest.raises(ValueError):
            format_seconds(-1)

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.5000" in out

    def test_render_table_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_series(self):
        out = render_series("h", [1, 5], {"m1": [0.1, 0.2], "m2": [0.3, 0.4]})
        assert "m1" in out and "0.4000" in out

    def test_render_series_validation(self):
        with pytest.raises(ValueError):
            render_series("h", [1, 2], {"m": [0.1]})
