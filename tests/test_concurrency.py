"""Differential tests: concurrent serving is bit-identical to sequential.

The serving layer's concurrency contract (``docs/architecture.md``,
"Threading model") is that ``forecast_all`` / ``ingest_many`` with
``max_workers > 1`` return *exactly* what a sequential run returns: the
same :class:`~repro.service.Forecast` floats, the same
:attr:`~repro.service.ForecastBatch.errors`, the same per-backend
simulated-time ledgers.  These tests pin that contract differentially —
two identically-constructed services, one sequential and one with four
lanes, driven through the same workload — and then stress the breaker /
memory-ledger invariants under injected chaos.
"""

import numpy as np
import pytest

from repro.backend import BACKEND_NAMES, BreakerConfig, make_backend
from repro.core import SMiLerConfig
from repro.faults import FaultProfile
from repro.service import (
    PredictionService,
    ResiliencePolicy,
    ServiceConfig,
    WORKERS_ENV_VAR,
)

CONFIG = SMiLerConfig(
    elv=(8, 16), ekv=(4, 8), rho=2, omega=4, horizons=(1, 3),
    predictor="ar",
)

N_SENSORS = 52
N_BACKENDS = 4
HISTORY_POINTS = 280


def make_workload(n_sensors=N_SENSORS, n_points=HISTORY_POINTS, n_future=8):
    """Seeded histories + future readings, shared by both services."""
    rng = np.random.default_rng(1234)
    histories, futures = {}, {}
    for i in range(n_sensors):
        sensor_id = f"s{i:03d}"
        phase = rng.uniform(0.0, 2.0 * np.pi)
        t = np.arange(n_points + n_future)
        wave = 100.0 + 25.0 * np.sin(t / 7.0 + phase)
        wave += 0.05 * rng.normal(size=t.size)
        histories[sensor_id] = wave[:n_points]
        futures[sensor_id] = wave[n_points:]
    return histories, futures


def build_service(
    backend_name,
    workers,
    n_backends=N_BACKENDS,
    fault_profiles=None,
    resilience=None,
    breaker=None,
):
    """A fresh service over ``n_backends`` identically-seeded backends."""
    backends = [
        make_backend(
            backend_name,
            fault_profile=None if fault_profiles is None else fault_profiles[i],
        )
        for i in range(n_backends)
    ]
    return PredictionService(
        CONFIG,
        backends=backends,
        min_history=100,
        resilience=resilience,
        breaker=breaker,
        service_config=ServiceConfig(max_workers=workers),
    )


def drive(service, histories, futures, rounds=2):
    """Register the fleet, then alternate forecast_all / ingest_many."""
    for sensor_id, history in histories.items():
        service.register(sensor_id, history)
    batches = []
    for step in range(rounds):
        batches.append(service.forecast_all())
        service.ingest_many(
            {sid: float(futures[sid][step]) for sid in histories}
        )
    batches.append(service.forecast_all())
    return batches


def assert_batches_identical(sequential, concurrent):
    """Bit-identical forecasts and matching error side-channels."""
    assert len(sequential) == len(concurrent)
    for batch_seq, batch_con in zip(sequential, concurrent):
        # Forecast is a frozen dataclass: == compares every float exactly.
        assert dict(batch_seq) == dict(batch_con)
        assert set(batch_seq.errors) == set(batch_con.errors)
        for sensor_id, error_seq in batch_seq.errors.items():
            error_con = batch_con.errors[sensor_id]
            assert type(error_seq) is type(error_con)
            assert str(error_seq) == str(error_con)


@pytest.mark.parametrize("backend_name", BACKEND_NAMES)
class TestConcurrentParity:
    def test_fault_free_bit_identical(self, backend_name):
        """workers=4 serves the exact Forecasts of workers=1 — 52 sensors
        sharded over 4 backends, multiple forecast/ingest rounds."""
        histories, futures = make_workload()
        sequential = build_service(backend_name, workers=1)
        concurrent = build_service(backend_name, workers=4)
        batches_seq = drive(sequential, histories, futures)
        batches_con = drive(concurrent, histories, futures)
        assert_batches_identical(batches_seq, batches_con)
        assert all(batch.ok for batch in batches_seq)
        assert all(len(batch) == N_SENSORS for batch in batches_con)

    def test_placements_and_sim_time_identical(self, backend_name):
        """Lane-per-shard keeps every backend's operation stream — hence
        its simulated-time ledger — identical to the sequential run."""
        histories, futures = make_workload(n_sensors=24)
        sequential = build_service(backend_name, workers=1)
        concurrent = build_service(backend_name, workers=4)
        drive(sequential, histories, futures, rounds=1)
        drive(concurrent, histories, futures, rounds=1)
        assert (
            sequential.sensors_per_backend()
            == concurrent.sensors_per_backend()
        )
        for sid in histories:
            assert sequential.placement_of(sid) == concurrent.placement_of(sid)
        elapsed_seq = [b.elapsed_s for b in sequential.backends]
        elapsed_con = [b.elapsed_s for b in concurrent.backends]
        assert elapsed_seq == elapsed_con  # exact float equality
        if backend_name == "simulated":
            assert all(s > 0.0 for s in elapsed_seq)

    def test_error_side_channel_identical(self, backend_name):
        """Injected failures land in ForecastBatch.errors identically.

        One seeded FaultProfile per backend and a truncated ladder with
        failover off make every injection deterministic per backend, so
        the *same* sensors must fail with the *same* exceptions at any
        worker count — and the surviving forecasts stay bit-identical.
        """
        histories, futures = make_workload(n_sensors=24)
        profiles = [
            FaultProfile(seed=100 + i, kernel_error_rate=0.08,
                         kernel_nan_rate=0.05)
            for i in range(N_BACKENDS)
        ]
        policy = ResiliencePolicy(
            attempts=1, ladder=("ensemble",), failover=False
        )
        sequential = build_service(
            backend_name, workers=1, fault_profiles=profiles, resilience=policy
        )
        concurrent = build_service(
            backend_name, workers=4, fault_profiles=profiles, resilience=policy
        )
        batches_seq = drive(sequential, histories, futures, rounds=3)
        batches_con = drive(concurrent, histories, futures, rounds=3)
        assert_batches_identical(batches_seq, batches_con)
        # The profile rates make silence astronomically unlikely: the
        # test must actually exercise the error side-channel.
        assert any(batch.errors for batch in batches_seq)
        assert any(len(batch) > 0 for batch in batches_seq)


class TestWorkerConfiguration:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_workers=-2)

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert ServiceConfig().resolved_workers() == 3
        # An explicit value wins over the environment.
        assert ServiceConfig(max_workers=1).resolved_workers() == 1

    def test_env_var_validated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "zero")
        with pytest.raises(ValueError):
            ServiceConfig().resolved_workers()
        monkeypatch.setenv(WORKERS_ENV_VAR, "-1")
        with pytest.raises(ValueError):
            ServiceConfig().resolved_workers()

    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert ServiceConfig().resolved_workers() == 1

    def test_status_reports_workers(self):
        service = build_service("native", workers=4, n_backends=2)
        assert service.status()["max_workers"] == 4


class TestChaosStress:
    """Race the lanes against injected faults, mid-batch failover and
    evacuation, then assert the structural invariants from a quiesced
    state after every batch (forecast_all has returned and its executor
    is shut down, so nothing mutates during the checks)."""

    N_CHAOS_BACKENDS = 3

    def _build(self, workers=4):
        profiles = [
            FaultProfile(seed=7 + i, kernel_error_rate=0.15,
                         kernel_nan_rate=0.05, malloc_error_rate=0.02)
            for i in range(self.N_CHAOS_BACKENDS)
        ]
        return build_service(
            "simulated",
            workers=workers,
            n_backends=self.N_CHAOS_BACKENDS,
            fault_profiles=profiles,
            breaker=BreakerConfig(failure_threshold=2, cooldown_ops=8),
        )

    def _check_invariants(self, service, capacities):
        pool = service._pool
        healthy = set(pool.healthy_indices())
        for i in range(len(pool)):
            state = pool.state(i)
            assert state in ("closed", "open", "half_open")
            # An open breaker never accepts placements; a non-open one
            # always does (fail-open is a placement-time fallback, not a
            # health state).
            assert (i in healthy) == (state != "open")
            assert pool.admits(i) == (state != "open")
            record = pool.health_dict(i)
            assert record["failures_total"] >= 0
            assert record["successes_total"] >= 0
            assert record["trips"] >= (1 if state == "open" else 0)
        # Memory accounting: every backend's ledger still sums to its
        # capacity, and the pool total equals the placements' total —
        # failover re-admissions never leak or double-free a reservation.
        for i, backend in enumerate(service.backends):
            assert backend.allocated_bytes >= 0
            assert backend.free_bytes >= 0
            assert backend.allocated_bytes + backend.free_bytes == capacities[i]
        placed = sum(
            p.allocation.nbytes for p in service._placements.values()
        )
        assert placed == pool.allocated_bytes

    def test_invariants_hold_under_chaos(self):
        histories, futures = make_workload(n_sensors=24)
        service = self._build()
        registered = {}
        for sensor_id, history in histories.items():
            try:
                service.register(sensor_id, history)
            except Exception:
                continue  # an injected admission failure is part of the chaos
            registered[sensor_id] = history
        assert len(registered) >= len(histories) // 2
        capacities = [
            b.allocated_bytes + b.free_bytes for b in service.backends
        ]
        for step in range(6):
            batch = service.forecast_all()
            fleet = set(service.sensor_ids)
            # Every sensor is accounted for exactly once: a forecast or
            # an error, never both, never neither.
            assert set(batch) | set(batch.errors) == fleet
            assert not set(batch) & set(batch.errors)
            self._check_invariants(service, capacities)
            service.ingest_many(
                {sid: float(futures[sid][step]) for sid in service.sensor_ids}
            )
            self._check_invariants(service, capacities)

    def test_chaos_is_reproducible(self):
        """Two identical sequential chaos runs inject identical faults —
        the chaos suite is a regression test, not a flake source.  (Run
        at workers=1: with failover on, *when* a tripped backend
        evacuates depends on lane interleaving, so cross-run determinism
        is a sequential-mode guarantee.)"""
        histories, futures = make_workload(n_sensors=12)
        outcomes = []
        for _ in range(2):
            service = self._build(workers=1)
            for sensor_id, history in histories.items():
                try:
                    service.register(sensor_id, history)
                except Exception:
                    pass
            batch = service.forecast_all()
            outcomes.append((dict(batch), sorted(batch.errors)))
        assert outcomes[0][1] == outcomes[1][1]
