"""Documentation guards: docs must reference real modules and files."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md"]
    + list((ROOT / "docs").glob("*.md"))
)


class TestDocsExist:
    def test_required_documents_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
            assert (ROOT / name).exists(), name
        assert (ROOT / "docs").is_dir()
        assert len(list((ROOT / "docs").glob("*.md"))) >= 5


class TestModuleReferences:
    MODULE_PATTERN = re.compile(r"`(repro(?:\.[a-z_]+)+)`")

    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_referenced_modules_import(self, doc):
        import importlib

        text = doc.read_text()
        for match in set(self.MODULE_PATTERN.findall(text)):
            parts = match.split(".")
            # Try as module, else as attribute of the parent module.
            try:
                importlib.import_module(match)
                continue
            except ImportError:
                pass
            parent = importlib.import_module(".".join(parts[:-1]))
            assert hasattr(parent, parts[-1]), f"{doc.name}: {match}"


class TestFileReferences:
    FILE_PATTERN = re.compile(
        r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_./]+\.(?:py|md))`"
    )

    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_referenced_files_exist(self, doc):
        text = doc.read_text()
        for match in set(self.FILE_PATTERN.findall(text)):
            assert (ROOT / match).exists(), f"{doc.name}: {match}"

    def test_readme_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/([a-z_]+)\.py", text):
            assert (ROOT / "examples" / f"{match}.py").exists(), match
