"""Tests for exact-GP marginal-likelihood training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    GaussianProcessRegressor,
    SquaredExponentialKernel,
    fit_exact_gp,
    marginal_likelihood_objective,
)


def toy_problem(n=40, seed=0):
    rng = np.random.default_rng(seed)
    x = np.sort(rng.uniform(-3, 3, size=n))[:, None]
    y = np.sin(2.0 * x[:, 0]) + 0.1 * rng.normal(size=n)
    return x, y


class TestObjective:
    def test_value_matches_regressor(self):
        x, y = toy_problem(n=15, seed=1)
        kernel = SquaredExponentialKernel(1.2, 0.7, 0.2)
        value, _ = marginal_likelihood_objective(kernel.log_params, x, y)
        gp = GaussianProcessRegressor(kernel).fit(x, y)
        assert value == pytest.approx(-gp.log_marginal_likelihood(), rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(
        log_params=st.lists(
            st.floats(-1.0, 1.0, allow_nan=False), min_size=3, max_size=3
        ),
        seed=st.integers(0, 50),
    )
    def test_gradient_matches_finite_differences(self, log_params, seed):
        x, y = toy_problem(n=10, seed=seed)
        log_params = np.asarray(log_params)
        _, grad = marginal_likelihood_objective(log_params, x, y)
        eps = 1e-5
        for j in range(3):
            lp = log_params.copy()
            lp[j] += eps
            up, _ = marginal_likelihood_objective(lp, x, y)
            lp[j] -= 2 * eps
            down, _ = marginal_likelihood_objective(lp, x, y)
            assert grad[j] == pytest.approx(
                (up - down) / (2 * eps), rel=2e-3, abs=1e-5
            )


class TestFitExactGp:
    def test_training_improves_likelihood(self):
        x, y = toy_problem(seed=2)
        bad = SquaredExponentialKernel(0.3, 5.0, 1.0)
        untrained = GaussianProcessRegressor(bad).fit(x, y)
        trained = fit_exact_gp(x, y, kernel=bad, max_iters=60)
        assert (
            trained.log_marginal_likelihood()
            > untrained.log_marginal_likelihood() + 1.0
        )

    def test_recovers_noise_scale(self):
        rng = np.random.default_rng(3)
        x = np.sort(rng.uniform(-3, 3, size=120))[:, None]
        y = np.sin(x[:, 0]) + 0.25 * rng.normal(size=120)
        trained = fit_exact_gp(x, y, max_iters=80)
        assert trained.kernel.theta2 == pytest.approx(0.25, rel=0.5)

    def test_trained_gp_predicts_well(self):
        x, y = toy_problem(n=80, seed=4)
        trained = fit_exact_gp(x, y, max_iters=60)
        mean, _ = trained.predict(x)
        assert float(np.mean(np.abs(mean - y))) < 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exact_gp(np.zeros((3, 1)), np.zeros(4))
