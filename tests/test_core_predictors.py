"""Tests for the AR and GP semi-lazy predictors and config."""

import numpy as np
import pytest

from repro.core import (
    AggregationPredictor,
    GaussianPrediction,
    GaussianProcessPredictor,
    SMiLerConfig,
)


def knn_data(k=16, d=8, seed=0, noise=0.01):
    """Neighbours drawn around a smooth function of the segment mean."""
    rng = np.random.default_rng(seed)
    query = np.sin(np.linspace(0, 2, d))
    neighbours = query[None, :] + 0.1 * rng.normal(size=(k, d))
    targets = neighbours.mean(axis=1) + noise * rng.normal(size=k)
    return query, neighbours, targets


class TestGaussianPrediction:
    def test_log_density_matches_formula(self):
        pred = GaussianPrediction(1.0, 4.0)
        expected = -0.5 * np.log(2 * np.pi * 4.0) - (3.0 - 1.0) ** 2 / 8.0
        assert pred.log_density(3.0) == pytest.approx(expected)
        assert pred.density(3.0) == pytest.approx(np.exp(expected))

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianPrediction(np.nan, 1.0)
        with pytest.raises(ValueError):
            GaussianPrediction(0.0, 0.0)
        with pytest.raises(ValueError):
            GaussianPrediction(0.0, -1.0)


class TestAggregationPredictor:
    def test_mean_and_variance_are_moments(self):
        query, neighbours, targets = knn_data()
        pred = AggregationPredictor().predict(query, neighbours, targets)
        assert pred.mean == pytest.approx(float(targets.mean()))
        assert pred.variance == pytest.approx(float(np.var(targets)), abs=1e-9)

    def test_variance_floor(self):
        query, neighbours, _ = knn_data(k=4)
        targets = np.full(4, 2.5)
        pred = AggregationPredictor().predict(query, neighbours, targets)
        assert pred.mean == 2.5
        assert pred.variance == 1e-8

    def test_shape_validation(self):
        query, neighbours, targets = knn_data()
        ar = AggregationPredictor()
        with pytest.raises(ValueError):
            ar.predict(query, neighbours, targets[:-1])
        with pytest.raises(ValueError):
            ar.predict(query[:-1], neighbours, targets)
        with pytest.raises(ValueError):
            ar.predict(query, neighbours[:0], targets[:0])
        with pytest.raises(ValueError):
            AggregationPredictor(variance_floor=0.0)


class TestGaussianProcessPredictor:
    def test_accurate_on_smooth_relation(self):
        query, neighbours, targets = knn_data(k=24, noise=0.001)
        gp = GaussianProcessPredictor()
        pred = gp.predict(query, neighbours, targets)
        assert pred.mean == pytest.approx(float(query.mean()), abs=0.05)
        assert 0 < pred.variance < 1.0

    def test_beats_ar_on_structured_targets(self):
        """When targets depend on the segment, GP interpolation wins."""
        rng = np.random.default_rng(1)
        d, k = 6, 32
        neighbours = rng.normal(size=(k, d))
        targets = neighbours @ np.linspace(0.1, 0.6, d)
        query = rng.normal(size=d)
        truth = float(query @ np.linspace(0.1, 0.6, d))
        gp_err = abs(
            GaussianProcessPredictor().predict(query, neighbours, targets).mean
            - truth
        )
        ar_err = abs(
            AggregationPredictor().predict(query, neighbours, targets).mean
            - truth
        )
        assert gp_err < ar_err

    def test_warm_start_reuses_hyperparameters(self):
        query, neighbours, targets = knn_data(k=16)
        gp = GaussianProcessPredictor(initial_train_iters=20, online_train_iters=5)
        gp.predict(query, neighbours, targets)
        first_kernel = gp.kernel
        iters_after_first = gp.cg_iterations
        gp.predict(query, neighbours, targets + 0.001)
        assert gp.train_calls == 2
        # Online refinement is capped at the fixed five-step budget.
        assert gp.cg_iterations - iters_after_first <= 5
        assert gp.kernel is not None and first_kernel is not None

    def test_single_neighbour_fallback(self):
        gp = GaussianProcessPredictor()
        pred = gp.predict(np.zeros(4), np.ones((1, 4)), np.array([7.0]))
        assert pred.mean == 7.0
        assert pred.variance == 1.0

    def test_duplicate_neighbours_do_not_crash(self):
        gp = GaussianProcessPredictor()
        neighbours = np.tile(np.arange(4.0), (8, 1))
        targets = np.full(8, 1.5)
        pred = gp.predict(np.arange(4.0), neighbours, targets)
        assert np.isfinite(pred.mean)
        assert pred.variance > 0

    def test_reset(self):
        query, neighbours, targets = knn_data()
        gp = GaussianProcessPredictor()
        gp.predict(query, neighbours, targets)
        assert gp.kernel is not None
        gp.reset()
        assert gp.kernel is None

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessPredictor(initial_train_iters=-1)


class TestConfig:
    def test_paper_defaults(self):
        cfg = SMiLerConfig()
        assert cfg.elv == (32, 64, 96)
        assert cfg.ekv == (8, 16, 32)
        assert cfg.rho == 8 and cfg.omega == 16
        assert cfg.master_length == 96
        assert cfg.k_max == 32
        assert len(cfg.grid) == 9

    def test_single_mode_grid(self):
        cfg = SMiLerConfig(ensemble=False)
        assert cfg.grid == [(32, 64)]
        assert cfg.effective_elv() == (64,)

    def test_margin_is_max_horizon(self):
        assert SMiLerConfig(horizons=(1, 5, 30)).margin == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            SMiLerConfig(elv=())
        with pytest.raises(ValueError):
            SMiLerConfig(elv=(64, 32))
        with pytest.raises(ValueError):
            SMiLerConfig(elv=(8, 16), omega=16)
        with pytest.raises(ValueError):
            SMiLerConfig(horizons=(0,))
        with pytest.raises(ValueError):
            SMiLerConfig(predictor="svm")
        with pytest.raises(ValueError):
            SMiLerConfig(ekv=(-1,))
