"""Integration tests: one forecast() produces the documented span tree,
per-kernel counters, reuse counters and latency histograms — and costs
nothing when the switch is off."""

import time

import numpy as np
import pytest

from repro import PredictionService, SMiLerConfig, obs
from repro.backend import SimulatedGpuBackend


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def tiny_config(predictor: str = "gp") -> SMiLerConfig:
    return SMiLerConfig(
        elv=(16, 32), ekv=(4, 8), omega=16, horizons=(1, 3),
        predictor=predictor, initial_train_iters=2, online_train_iters=1,
    )


def make_service(predictor: str = "gp") -> PredictionService:
    # These tests assert simulated-time spans and kernel counters, so pin
    # the simulated backend regardless of the REPRO_BACKEND default.
    service = PredictionService(
        config=tiny_config(predictor), backends=SimulatedGpuBackend(),
        min_history=300,
    )
    rng = np.random.default_rng(7)
    history = np.sin(np.arange(400) * 0.1) + 0.05 * rng.standard_normal(400)
    service.register("s0", history)
    return service


class TestSpanTree:
    def test_forecast_produces_expected_span_levels(self):
        obs.enable()
        service = make_service()
        service.forecast("s0")
        root = service.trace_last_request()

        assert root is not None and root.name == "forecast"
        predict = root.find("predict")
        assert predict is not None
        search = predict.find("search")
        assert search is not None
        assert search.find("lower_bounds") is not None
        assert search.find("dtw_refine") is not None
        assert predict.find("gp_fit") is not None

        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        for span in walk(root):
            assert span.wall_s >= 0.0, span.name
            assert span.gpu_sim_s >= 0.0, span.name

    def test_root_attrs_identify_the_request(self):
        obs.enable()
        service = make_service()
        service.forecast("s0", horizon=3)
        root = service.trace_last_request()
        assert root.attrs["sensor_id"] == "s0"
        assert root.attrs["horizon"] == 3

    def test_gpu_time_attributed_to_search(self):
        obs.enable()
        service = make_service()
        service.forecast("s0")
        search = service.trace_last_request().find("search")
        assert search.gpu_sim_s > 0.0

    def test_no_trace_when_disabled(self):
        service = make_service()
        service.forecast("s0")
        assert service.trace_last_request() is None


class TestMetricsExport:
    def test_per_kernel_launch_counters(self):
        obs.enable()
        service = make_service()
        service.forecast("s0")
        text = obs.to_prometheus(obs.get_registry())
        assert 'smiler_gpu_kernel_launches_total{kernel="dtw_verify"}' in text
        assert 'smiler_gpu_kernel_launches_total{kernel="k_select"}' in text
        assert "# TYPE smiler_gpu_kernel_sim_seconds histogram" in text

    def test_window_reuse_counters_match_index_fields(self):
        obs.enable()
        service = make_service(predictor="ar")
        for value in np.sin(np.arange(5) * 0.3):
            service.ingest("s0", float(value))
        service.forecast("s0")

        wi = service._sensors["s0"].engine.window_index
        counter = obs.get_registry().get("smiler_window_index_rows_total")
        assert counter.value(outcome="built_full") == wi.rows_built_full
        assert counter.value(outcome="recomputed_lbeq") == wi.rows_recomputed_lbeq
        assert counter.value(outcome="reused") == wi.rows_reused

    def test_pruning_counters_track_search_accounting(self):
        obs.enable()
        service = make_service(predictor="ar")
        service.forecast("s0")
        registry = obs.get_registry()
        for d in (16, 32):
            total = registry.get("smiler_search_candidates_total").value(
                item_length=d
            )
            pruned = registry.get(
                "smiler_search_candidates_pruned_total"
            ).value(item_length=d)
            verified = registry.get(
                "smiler_search_candidates_verified_total"
            ).value(item_length=d)
            assert total > 0
            # pruned counts cascade kills, so total - pruned is the
            # unfiltered survivor count; verified can exceed it because
            # threshold seeds are verified even when their bound is
            # above tau (the fixed, seed-aware accounting).
            unfiltered = total - pruned
            assert unfiltered >= 0
            assert verified >= unfiltered

    def test_forecast_latency_histogram(self):
        obs.enable()
        service = make_service(predictor="ar")
        service.forecast("s0")
        service.forecast("s0")
        hist = obs.get_registry().get("smiler_forecast_latency_seconds")
        series = hist.series(sensor_id="s0")
        assert series.count == 2
        assert series.sum > 0.0

    def test_memory_gauge_follows_register_deregister(self):
        obs.enable()
        service = make_service(predictor="ar")
        gauge = obs.get_registry().get("smiler_gpu_memory_allocated_bytes")
        assert gauge.value() == service.backends[0].allocated_bytes > 0
        service.deregister("s0")
        assert gauge.value() == 0

    def test_service_metrics_snapshot(self):
        obs.enable()
        service = make_service(predictor="ar")
        service.forecast("s0")
        snapshot = service.metrics()
        assert "smiler_forecasts_total" in snapshot
        assert "smiler_gpu_kernel_launches_total" in snapshot

    def test_nothing_recorded_when_disabled(self):
        service = make_service(predictor="ar")
        service.forecast("s0")
        assert len(obs.get_registry()) == 0


class TestDisabledOverhead:
    def test_disabled_no_slower_than_enabled(self):
        """Instrumentation off: the hot path pays only flag checks.

        The disabled path must not cost more than the enabled path (which
        does strictly more work: spans, counters, histograms).  The hard
        zero-allocation guarantees live in test_obs_tracing; this is the
        tiny-preset timing comparison.
        """
        service = make_service(predictor="ar")
        service.forecast("s0")  # warm-up: first call builds predictor state

        def timed() -> float:
            t0 = time.perf_counter()
            for _ in range(30):
                service.forecast("s0")
            return time.perf_counter() - t0

        obs.disable()
        disabled_s = timed()
        obs.enable()
        enabled_s = timed()
        obs.disable()
        # Generous CI-safe bound: flag checks are orders of magnitude
        # below the forecast itself, so only gross regressions trip this.
        assert disabled_s < 3.0 * enabled_s + 0.05, (disabled_s, enabled_s)
