"""Tests for LOO predictive likelihood and its gradients (Eqns. 19-20)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    GaussianProcessRegressor,
    SquaredExponentialKernel,
    loo_log_likelihood,
    loo_objective,
    loo_quantities,
)


def toy_problem(n=20, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-3, 3, size=(n, 2))
    y = np.sin(x[:, 0]) * np.cos(x[:, 1]) + 0.1 * rng.normal(size=n)
    return x, y


class TestLooQuantities:
    def test_matches_explicit_leave_one_out(self):
        """The partitioned-inverse shortcut equals n separate GP fits."""
        x, y = toy_problem(n=12, seed=1)
        kernel = SquaredExponentialKernel(1.0, 1.5, 0.2)
        result = loo_quantities(kernel, x, y)
        for i in range(y.size):
            keep = np.arange(y.size) != i
            gp = GaussianProcessRegressor(kernel).fit(x[keep], y[keep])
            mean, var = gp.predict(x[i : i + 1], include_noise=True)
            assert result.means[i] == pytest.approx(mean[0], rel=1e-6, abs=1e-8)
            assert result.variances[i] == pytest.approx(var[0], rel=1e-6)

    def test_log_likelihood_is_sum_of_log_densities(self):
        x, y = toy_problem(n=10, seed=2)
        kernel = SquaredExponentialKernel()
        result = loo_quantities(kernel, x, y)
        expected = sum(
            -0.5 * np.log(2 * np.pi * v) - (yy - m) ** 2 / (2 * v)
            for yy, m, v in zip(y, result.means, result.variances)
        )
        assert result.log_likelihood == pytest.approx(expected)

    def test_good_kernel_scores_higher(self):
        x, y = toy_problem(n=40, seed=3)
        good = loo_log_likelihood(SquaredExponentialKernel(1.0, 1.5, 0.1), x, y)
        bad = loo_log_likelihood(SquaredExponentialKernel(1.0, 1e-3, 2.0), x, y)
        assert good > bad


class TestLooObjective:
    def test_value_is_negated_likelihood(self):
        x, y = toy_problem(n=15, seed=4)
        kernel = SquaredExponentialKernel(0.9, 1.1, 0.15)
        value, _ = loo_objective(kernel.log_params, x, y)
        assert value == pytest.approx(-loo_log_likelihood(kernel, x, y))

    @settings(max_examples=15, deadline=None)
    @given(
        log_params=st.lists(
            st.floats(-1.0, 1.0, allow_nan=False), min_size=3, max_size=3
        ),
        seed=st.integers(0, 50),
    )
    def test_gradient_matches_finite_differences(self, log_params, seed):
        x, y = toy_problem(n=10, seed=seed)
        log_params = np.asarray(log_params)
        _, grad = loo_objective(log_params, x, y)
        eps = 1e-5
        for j in range(3):
            lp = log_params.copy()
            lp[j] += eps
            up, _ = loo_objective(lp, x, y)
            lp[j] -= 2 * eps
            down, _ = loo_objective(lp, x, y)
            fd = (up - down) / (2 * eps)
            assert grad[j] == pytest.approx(fd, rel=2e-3, abs=1e-5)

    def test_descending_gradient_improves_objective(self):
        x, y = toy_problem(n=25, seed=6)
        log_params = np.array([0.5, -0.5, 0.5])
        value, grad = loo_objective(log_params, x, y)
        stepped, _ = loo_objective(log_params - 1e-3 * grad, x, y)
        assert stepped < value
