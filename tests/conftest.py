"""Shared test configuration.

Marker policy
-------------
Two speed tiers, declared in ``pyproject.toml``:

* ``slow`` — long-running integration tests: offline GP baselines,
  benchmark-scale experiment drivers, end-to-end ablation studies.
  Applied explicitly (``@pytest.mark.slow`` on a test, class, or via
  ``pytestmark`` on a module).
* ``fast`` — everything else.  Applied automatically by the collection
  hook below, so ``-m fast`` and ``-m "not slow"`` select the same set
  and no test is ever tier-less.

CI runs the fast tier on every push for quick signal
(``pytest -m "not slow"`` in the tier-1 matrix); pull requests
additionally run the slow tier, and the full-suite jobs (exec-matrix,
chaos) always run everything.  Locally, ``pytest -m fast`` is the quick
pre-commit loop; plain ``pytest`` runs both tiers.
"""

import pytest
from hypothesis import HealthCheck, settings

# Property tests exercise numerical kernels whose first call can be slow
# (NumPy warm-up); disable per-example deadlines suite-wide.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.fast)
