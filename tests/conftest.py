"""Shared test configuration."""

from hypothesis import HealthCheck, settings

# Property tests exercise numerical kernels whose first call can be slow
# (NumPy warm-up); disable per-example deadlines suite-wide.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
